//! # The alignment-serving daemon (`paris serve`)
//!
//! The seed reproduced PARIS as a batch CLI: parse two RDF files, align,
//! print, exit. This crate is the serving half of the system: a
//! long-lived HTTP/1.1 daemon that loads an aligned-pair snapshot
//! (computed once by `paris snapshot`) and answers alignment queries from
//! an [`Arc`]-shared, immutable, fully-indexed in-memory image —
//! startup in milliseconds, reads without write contention.
//!
//! Built entirely on `std::net` (the workspace takes no external
//! dependencies): a fixed pool of worker threads pulls accepted
//! connections from a channel and speaks the minimal HTTP/1.1 subset in
//! [`http`].
//!
//! ## Hot reload
//!
//! The served snapshot is **swappable without downtime**: each request
//! clones the current `Arc<LoadedSnapshot>` once and answers entirely
//! from that image, so `POST /reload` (or the `--watch` mtime re-check)
//! can load a new snapshot off the side and atomically swap the pointer
//! — in-flight requests finish against the old image, the old image is
//! freed when its last request drops, and `/stats` reports a bumped
//! `generation`. Loading happens *before* the swap: a corrupt or missing
//! file leaves the current snapshot serving.
//!
//! ## Endpoints
//!
//! | route | method | answer |
//! |---|---|---|
//! | `/healthz` | GET | liveness + uptime + snapshot generation |
//! | `/stats` | GET | KB + alignment statistics, generation, reload count |
//! | `/sameas?iri=…[&side=left\|right][&threshold=θ]` | GET | best match of an instance, with score |
//! | `/neighbors?iri=…[&side=…][&limit=n]` | GET | facts around an entity |
//! | `/align` | POST | enqueue a batch job over two single-KB snapshots |
//! | `/jobs/<id>` | GET | job status / outcome |
//! | `/reload` | POST | swap in a new snapshot (form field `path=` optional) |
//!
//! See `docs/HTTP_API.md` at the repository root for the full
//! request/response reference with curl examples.

pub mod http;
pub mod jobs;
pub mod json;

use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use paris_core::AlignedPairSnapshot;
use paris_kb::{EntityId, Kb, KbStats};

use http::{ParseError, Request, Response};
use jobs::{JobRequest, JobStore};

pub use jobs::{JobOutcome, JobState};

/// Server tuning knobs.
///
/// **Trust model:** the daemon has no authentication. `POST /align` and
/// `POST /reload` with an explicit `path=` make the server read (and for
/// jobs, write) server-local snapshot paths named by the client, so they
/// are only safe for trusted peers — keep the default loopback bind, or
/// disable them (`enable_jobs: false` / `paris serve --no-jobs`) before
/// exposing the read-only query routes more widely. With jobs disabled,
/// `POST /reload` still re-checks the *configured* snapshot path (the
/// client names no filesystem location), so operators keep zero-downtime
/// updates.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Whether `POST /align` (filesystem-touching batch jobs) and
    /// client-named `POST /reload` paths are served.
    pub enable_jobs: bool,
    /// The snapshot file the daemon was started from: the default source
    /// for `POST /reload` and the file the `--watch` thread re-checks.
    /// `None` disables both (e.g. tests that build snapshots in memory).
    pub snapshot_path: Option<PathBuf>,
    /// Poll `snapshot_path` for modification-time changes at this
    /// interval and hot-swap automatically — the daemon equivalent of a
    /// SIGHUP re-check (`std` offers no portable signal handling).
    pub watch_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".to_owned(),
            threads: 4,
            enable_jobs: true,
            snapshot_path: None,
            watch_interval: None,
        }
    }
}

/// One immutable serving image: a loaded snapshot plus the derived
/// values `/stats` would otherwise recompute per hit. Swapped wholesale
/// on reload; requests in flight keep their `Arc` to the old image.
struct LoadedSnapshot {
    snapshot: AlignedPairSnapshot,
    /// Assigned KB-1 instances, computed once at load time.
    aligned_instances: usize,
    /// Pre-rendered KB statistics.
    kb1_stats_json: String,
    kb2_stats_json: String,
    /// Monotonic snapshot generation: 1 for the image the server started
    /// with, bumped by every successful reload.
    generation: u64,
}

impl LoadedSnapshot {
    fn new(snapshot: AlignedPairSnapshot, generation: u64) -> Self {
        let aligned_instances = snapshot.alignment.instance_pairs(&snapshot.kb1).len();
        let kb1_stats_json = kb_stats_json(&snapshot.kb1);
        let kb2_stats_json = kb_stats_json(&snapshot.kb2);
        LoadedSnapshot {
            snapshot,
            aligned_instances,
            kb1_stats_json,
            kb2_stats_json,
            generation,
        }
    }
}

/// Shared serving state: the swappable snapshot image plus counters.
struct ServeState {
    /// The current image. Readers clone the `Arc` under a momentary read
    /// lock (never held across a request); reload takes the write lock
    /// only for the pointer swap itself.
    current: RwLock<Arc<LoadedSnapshot>>,
    /// Generation of the most recently installed image.
    generation: AtomicU64,
    /// Successful reloads since startup.
    reloads: AtomicU64,
    /// Default source for `POST /reload` and the watch thread.
    source: Option<PathBuf>,
    started: Instant,
    requests: AtomicU64,
    jobs: Arc<JobStore>,
    /// Whether `POST /align` is served (see [`ServerConfig::enable_jobs`]).
    jobs_enabled: bool,
}

impl ServeState {
    /// The current serving image (cheap: one `Arc` clone).
    fn current(&self) -> Arc<LoadedSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Atomically swaps in a freshly loaded snapshot, returning its
    /// generation. The load and the derived-value computation have
    /// already happened off the lock; in-flight requests keep serving the
    /// previous image until they finish. The generation is assigned
    /// *under* the write lock so concurrent installs (a `POST /reload`
    /// racing the watch thread) cannot swap out of order — generations
    /// observed through `/stats` are strictly increasing.
    fn install(&self, snapshot: AlignedPairSnapshot) -> u64 {
        let staged = LoadedSnapshot::new(snapshot, 0);
        let mut slot = self.current.write().expect("snapshot lock poisoned");
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        *slot = Arc::new(LoadedSnapshot {
            generation,
            ..staged
        });
        drop(slot);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        generation
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread (used by tests and
/// benches; production callers use [`Server::run`]).
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Worker threads
    /// finish their in-flight connection and exit.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds the listener and prepares the shared state.
    pub fn bind(snapshot: AlignedPairSnapshot, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                current: RwLock::new(Arc::new(LoadedSnapshot::new(snapshot, 1))),
                generation: AtomicU64::new(1),
                reloads: AtomicU64::new(0),
                source: config.snapshot_path.clone(),
                started: Instant::now(),
                requests: AtomicU64::new(0),
                jobs: Arc::new(JobStore::new()),
                jobs_enabled: config.enable_jobs,
            }),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves `:0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until shut down.
    ///
    /// Connections are handed to a fixed pool of worker threads over a
    /// channel; each worker serves its connection keep-alive style until
    /// the client closes.
    pub fn run(self) -> std::io::Result<()> {
        if let Some(interval) = self.config.watch_interval {
            spawn_watch_thread(
                Arc::clone(&self.state),
                Arc::clone(&self.shutdown),
                interval,
            );
        }
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.config.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("paris-serve-worker-{i}"))
                    .spawn(move || loop {
                        let conn = match rx.lock().expect("worker queue lock").recv() {
                            Ok(c) => c,
                            Err(_) => return, // acceptor gone: shut down
                        };
                        serve_connection(&state, conn);
                    })
                    .expect("spawning worker thread")
            })
            .collect();

        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    // If every worker died the channel is closed; stop.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Transient accept failures (aborted handshakes, fd
                // exhaustion under a connection burst) must not bring the
                // daemon down; back off briefly and keep serving.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Starts [`run`](Self::run) on a background thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::Builder::new()
            .name("paris-serve-acceptor".to_owned())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// The SIGHUP-style re-check: poll the source snapshot's modification
/// time and hot-swap when it changes. Runs as a daemon-adjacent thread
/// that exits with the accept loop. A vanished file (mid-replace) or a
/// file that fails to load leaves the current snapshot serving and is
/// retried next tick.
fn spawn_watch_thread(state: Arc<ServeState>, shutdown: Arc<AtomicBool>, interval: Duration) {
    let Some(path) = state.source.clone() else {
        return;
    };
    // Change signature: (mtime, length). Filesystem mtimes can be coarse
    // (a second on some systems), so two quick rewrites could share one;
    // the length disambiguates all but same-second same-size rewrites.
    let signature_of = |p: &std::path::Path| {
        std::fs::metadata(p)
            .ok()
            .and_then(|m| m.modified().ok().map(|t| (t, m.len())))
    };
    std::thread::Builder::new()
        .name("paris-serve-watch".to_owned())
        .spawn(move || {
            let mut last_seen = signature_of(&path);
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                let now = signature_of(&path);
                if now.is_some() && now != last_seen {
                    match AlignedPairSnapshot::load(&path) {
                        Ok(snapshot) => {
                            let generation = state.install(snapshot);
                            eprintln!(
                                "watch: reloaded {} (generation {generation})",
                                path.display()
                            );
                            last_seen = now;
                        }
                        Err(e) => {
                            // last_seen stays stale, so a half-written
                            // file is retried on the next tick.
                            eprintln!("watch: reload of {} failed: {e}", path.display());
                        }
                    }
                }
            }
        })
        .expect("spawning watch thread");
}

/// How long a worker waits for (the next) request on a connection before
/// reclaiming itself. Without this, `threads` idle connections would pin
/// the whole fixed pool forever.
const IDLE_CONNECTION_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

fn serve_connection(state: &ServeState, stream: TcpStream) {
    // Responses are written in one buffered flush; disabling Nagle keeps
    // keep-alive request/response turnarounds from hitting the delayed-ACK
    // stall (~40 ms per exchange on Linux).
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_CONNECTION_TIMEOUT));
    let peer_writable = stream.try_clone();
    let Ok(write_half) = peer_writable else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        match http::read_request(&mut reader) {
            Ok(request) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let keep_alive = !request.wants_close();
                let response = route(state, &request);
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Io(_)) => return,
            Err(ParseError::Malformed(msg)) => {
                let body = json::Object::new().str("error", &msg).build();
                let _ = Response::json(400, body).write_to(&mut writer, false);
                return;
            }
        }
    }
}

// ----------------------------------------------------------------------
// Routing
// ----------------------------------------------------------------------

fn route(state: &ServeState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/stats") => stats(state),
        ("GET", "/sameas") => sameas(&state.current(), req),
        ("GET", "/neighbors") => neighbors(&state.current(), req),
        ("POST", "/align") => submit_align(state, req),
        ("POST", "/reload") => reload(state, req),
        ("GET", path) if path.starts_with("/jobs/") => job_status(state, &path["/jobs/".len()..]),
        ("GET", _) => error(404, &format!("no such route {}", req.path)),
        (method, _) => error(405, &format!("method {method} not supported")),
    }
}

fn error(status: u16, message: &str) -> Response {
    Response::json(status, json::Object::new().str("error", message).build())
}

fn healthz(state: &ServeState) -> Response {
    Response::json(
        200,
        json::Object::new()
            .str("status", "ok")
            .num("uptime_seconds", state.started.elapsed().as_secs_f64())
            .int("requests", state.requests.load(Ordering::Relaxed))
            .int("generation", state.generation.load(Ordering::SeqCst))
            .build(),
    )
}

fn kb_stats_json(kb: &Kb) -> String {
    let s = KbStats::of(kb);
    json::Object::new()
        .str("name", &s.name)
        .int("instances", s.instances as u64)
        .int("classes", s.classes as u64)
        .int("relations", s.relations as u64)
        .int("facts", s.facts as u64)
        .int("literals", s.literals as u64)
        .build()
}

fn stats(state: &ServeState) -> Response {
    let image = state.current();
    let alignment = &image.snapshot.alignment;
    Response::json(
        200,
        json::Object::new()
            .raw("kb1", image.kb1_stats_json.clone())
            .raw("kb2", image.kb2_stats_json.clone())
            .int("aligned_instances", image.aligned_instances as u64)
            .int(
                "instance_equivalences",
                alignment.num_instance_pairs() as u64,
            )
            .int("literal_pairs", alignment.literal_pairs as u64)
            .int("iterations", alignment.iterations.len() as u64)
            .bool("converged", alignment.converged)
            .int("generation", image.generation)
            .int("reloads", state.reloads.load(Ordering::Relaxed))
            .int("jobs_submitted", state.jobs.submitted())
            .build(),
    )
}

/// `POST /reload`: load a snapshot off the request path and atomically
/// swap it in. With no body (or no `path=` field) the server re-checks
/// the snapshot file it was started from; an explicit `path=` names a
/// server-local file and is therefore gated by the same trust switch as
/// jobs (`--no-jobs` ⇒ 403). A failed load never disturbs the snapshot
/// currently serving.
fn reload(state: &ServeState, req: &Request) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return error(400, "body must be UTF-8 form data"),
    };
    let params = http::parse_query(body.trim());
    let explicit = params
        .iter()
        .find(|(k, _)| k == "path")
        .map(|(_, v)| v.clone())
        .filter(|v| !v.is_empty());

    let (path, explicit) = match explicit {
        Some(p) => {
            if !state.jobs_enabled {
                return error(
                    403,
                    "client-named reload paths are disabled on this server (--no-jobs); \
                     POST /reload with no path re-checks the configured snapshot",
                );
            }
            (PathBuf::from(p), true)
        }
        None => match &state.source {
            Some(p) => (p.clone(), false),
            None => {
                return error(
                    400,
                    "this server was not started from a snapshot file; \
                     POST /reload needs a 'path' form field",
                )
            }
        },
    };

    let t0 = Instant::now();
    match AlignedPairSnapshot::load(&path) {
        Ok(snapshot) => {
            let generation = state.install(snapshot);
            let image = state.current();
            Response::json(
                200,
                json::Object::new()
                    .int("generation", generation)
                    .int("aligned_instances", image.aligned_instances as u64)
                    .num("load_seconds", t0.elapsed().as_secs_f64())
                    .build(),
            )
        }
        // The old snapshot keeps serving; a client-named path that fails
        // is the client's error (400), the configured source failing is
        // the server's (500).
        Err(e) => error(
            if explicit { 400 } else { 500 },
            &format!("cannot load snapshot {}: {e}", path.display()),
        ),
    }
}

/// Which KB an `iri` query refers to.
enum Side {
    Left,
    Right,
}

fn parse_side(req: &Request) -> Result<Side, Response> {
    match req.query_param("side") {
        None | Some("left") => Ok(Side::Left),
        Some("right") => Ok(Side::Right),
        Some(other) => Err(error(
            400,
            &format!("side must be left or right, not '{other}'"),
        )),
    }
}

fn require_iri(req: &Request) -> Result<&str, Response> {
    req.query_param("iri")
        .filter(|s| !s.is_empty())
        .ok_or_else(|| error(400, "missing required query parameter 'iri'"))
}

fn sameas(image: &LoadedSnapshot, req: &Request) -> Response {
    let iri = match require_iri(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let side = match parse_side(req) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let threshold: f64 = match req.query_param("threshold").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(0.0),
        Err(_) => return error(400, "threshold must be a number"),
    };

    let snap = &image.snapshot;
    let (dst, best): (&Kb, Option<(EntityId, f64)>) = match side {
        Side::Left => {
            let Some(x) = snap.kb1.entity_by_iri(iri) else {
                return error(404, &format!("unknown IRI {iri} in {}", snap.kb1.name()));
            };
            (&snap.kb2, snap.alignment.best_match(x))
        }
        Side::Right => {
            let Some(x2) = snap.kb2.entity_by_iri(iri) else {
                return error(404, &format!("unknown IRI {iri} in {}", snap.kb2.name()));
            };
            (&snap.kb1, snap.alignment.best_match_rev(x2))
        }
    };
    match best.filter(|&(_, p)| p >= threshold) {
        Some((e, p)) => {
            let matched = dst
                .iri(e)
                .map(|i| i.as_str().to_owned())
                .unwrap_or_default();
            Response::json(
                200,
                json::Object::new()
                    .str("iri", iri)
                    .str("sameas", &matched)
                    .num("score", p)
                    .build(),
            )
        }
        None => Response::json(
            200,
            json::Object::new()
                .str("iri", iri)
                .raw("sameas", "null")
                .num("score", 0.0)
                .build(),
        ),
    }
}

fn neighbors(image: &LoadedSnapshot, req: &Request) -> Response {
    let iri = match require_iri(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let side = match parse_side(req) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let limit: usize = match req.query_param("limit").map(str::parse).transpose() {
        Ok(l) => l.unwrap_or(50),
        Err(_) => return error(400, "limit must be an integer"),
    };
    let kb: &Kb = match side {
        Side::Left => &image.snapshot.kb1,
        Side::Right => &image.snapshot.kb2,
    };
    let Some(e) = kb.entity_by_iri(iri) else {
        return error(404, &format!("unknown IRI {iri} in {}", kb.name()));
    };
    let facts = kb.facts(e);
    let rendered = facts.iter().take(limit).map(|&(r, y)| {
        json::Object::new()
            .str("relation", kb.relation_iri(r).as_str())
            .bool("inverse", r.is_inverse())
            .str("value", &kb.term(y).to_string())
            .num("functionality", kb.functionality(r))
            .build()
    });
    Response::json(
        200,
        json::Object::new()
            .str("iri", iri)
            .int("total_facts", facts.len() as u64)
            .raw("facts", json::array(rendered))
            .build(),
    )
}

fn submit_align(state: &ServeState, req: &Request) -> Response {
    if !state.jobs_enabled {
        return error(
            403,
            "alignment jobs are disabled on this server (--no-jobs)",
        );
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return error(400, "body must be UTF-8 form data"),
    };
    let params = http::parse_query(body.trim());
    let get = |name: &str| {
        params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .filter(|v| !v.is_empty())
    };
    let (Some(left), Some(right)) = (get("left"), get("right")) else {
        return error(
            400,
            "POST /align needs 'left' and 'right' snapshot paths (form-encoded)",
        );
    };
    let max_iterations = match get("max_iterations")
        .map(|v| v.parse::<usize>())
        .transpose()
    {
        Ok(v) => v,
        Err(_) => return error(400, "max_iterations must be an integer"),
    };
    let id = state.jobs.submit(JobRequest {
        left,
        right,
        out: get("out"),
        max_iterations,
    });
    Response::json(
        202,
        json::Object::new()
            .int("job", id)
            .str("poll", &format!("/jobs/{id}"))
            .build(),
    )
}

fn job_status(state: &ServeState, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return error(400, "job id must be an integer");
    };
    let Some(job) = state.jobs.get(id) else {
        return error(404, &format!("no job {id}"));
    };
    let mut obj = json::Object::new()
        .int("job", id)
        .str("status", job.label());
    match job {
        JobState::Done(outcome) => {
            obj = obj
                .int("aligned_instances", outcome.aligned_instances as u64)
                .int("iterations", outcome.iterations as u64)
                .bool("converged", outcome.converged)
                .num("seconds", outcome.seconds);
            if let Some(out) = &outcome.out_path {
                obj = obj.str("out", out);
            }
        }
        JobState::Failed(message) => obj = obj.str("error", &message),
        JobState::Queued | JobState::Running => {}
    }
    Response::json(200, obj.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_core::{Aligner, OwnedAlignment, ParisConfig};
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn tiny_snapshot() -> AlignedPairSnapshot {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..3 {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
        }
        let (kb1, kb2) = (a.build(), b.build());
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        AlignedPairSnapshot::new(kb1, kb2, owned)
    }

    fn state() -> ServeState {
        ServeState {
            current: RwLock::new(Arc::new(LoadedSnapshot::new(tiny_snapshot(), 1))),
            generation: AtomicU64::new(1),
            reloads: AtomicU64::new(0),
            source: None,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            jobs: Arc::new(JobStore::new()),
            jobs_enabled: true,
        }
    }

    fn get(path_and_query: &str) -> Request {
        let (path, q) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, http::parse_query(q)),
            None => (path_and_query, Vec::new()),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            query: q,
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        }
    }

    #[test]
    fn healthz_and_stats_respond() {
        let s = state();
        assert_eq!(route(&s, &get("/healthz")).status, 200);
        let stats = route(&s, &get("/stats"));
        assert_eq!(stats.status, 200);
        let body = String::from_utf8(stats.body).unwrap();
        assert!(body.contains("\"aligned_instances\":3"), "{body}");
    }

    #[test]
    fn sameas_finds_the_alignment() {
        let s = state();
        let r = route(&s, &get("/sameas?iri=http://a/p1"));
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("http://b/q1"), "{body}");

        let rev = route(&s, &get("/sameas?iri=http://b/q2&side=right"));
        let body = String::from_utf8(rev.body).unwrap();
        assert!(body.contains("http://a/p2"), "{body}");
    }

    #[test]
    fn sameas_threshold_suppresses_match() {
        let s = state();
        let r = route(&s, &get("/sameas?iri=http://a/p1&threshold=1.01"));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"sameas\":null"), "{body}");
    }

    #[test]
    fn unknown_iri_is_404() {
        let s = state();
        assert_eq!(route(&s, &get("/sameas?iri=http://a/nope")).status, 404);
        assert_eq!(route(&s, &get("/sameas")).status, 400);
        assert_eq!(
            route(&s, &get("/sameas?iri=http://a/p0&side=middle")).status,
            400
        );
    }

    #[test]
    fn neighbors_lists_facts() {
        let s = state();
        let r = route(&s, &get("/neighbors?iri=http://a/p0"));
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("http://a/email"), "{body}");
        assert!(body.contains("p0@x.org"), "{body}");
    }

    #[test]
    fn unknown_route_and_method() {
        let s = state();
        assert_eq!(route(&s, &get("/nope")).status, 404);
        let mut del = get("/stats");
        del.method = "DELETE".into();
        assert_eq!(route(&s, &del).status, 405);
    }

    #[test]
    fn align_requires_paths() {
        let s = state();
        let mut post = get("/align");
        post.method = "POST".into();
        post.body = b"left=".to_vec();
        assert_eq!(route(&s, &post).status, 400);
    }

    #[test]
    fn disabled_jobs_refuse_align() {
        let mut s = state();
        s.jobs_enabled = false;
        let mut post = get("/align");
        post.method = "POST".into();
        post.body = b"left=a.snap&right=b.snap".to_vec();
        let r = route(&s, &post);
        assert_eq!(r.status, 403);
        assert_eq!(s.jobs.submitted(), 0);
        // Read-only routes keep working.
        assert_eq!(route(&s, &get("/healthz")).status, 200);
    }

    #[test]
    fn job_status_validation() {
        let s = state();
        assert_eq!(route(&s, &get("/jobs/abc")).status, 400);
        assert_eq!(route(&s, &get("/jobs/7")).status, 404);
    }

    fn post_reload(body: &[u8]) -> Request {
        let mut req = get("/reload");
        req.method = "POST".into();
        req.body = body.to_vec();
        req
    }

    #[test]
    fn reload_without_source_needs_a_path() {
        let s = state();
        let r = route(&s, &post_reload(b""));
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("'path' form field"), "{body}");
    }

    #[test]
    fn reload_swaps_snapshot_and_bumps_generation() {
        let dir = std::env::temp_dir().join("paris_server_reload_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.snap");
        tiny_snapshot().save(&path).unwrap();

        let s = state();
        let r = route(
            &s,
            &post_reload(format!("path={}", path.display()).as_bytes()),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"generation\":2"), "{body}");

        let stats = String::from_utf8(route(&s, &get("/stats")).body).unwrap();
        assert!(stats.contains("\"generation\":2"), "{stats}");
        assert!(stats.contains("\"reloads\":1"), "{stats}");
        let health = String::from_utf8(route(&s, &get("/healthz")).body).unwrap();
        assert!(health.contains("\"generation\":2"), "{health}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_uses_configured_source_without_a_path() {
        let dir = std::env::temp_dir().join("paris_server_reload_source_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.snap");
        tiny_snapshot().save(&path).unwrap();

        let mut s = state();
        s.source = Some(path.clone());
        assert_eq!(route(&s, &post_reload(b"")).status, 200);
        assert_eq!(s.generation.load(Ordering::SeqCst), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_failure_keeps_current_snapshot() {
        let s = state();
        let r = route(&s, &post_reload(b"path=/definitely/not/here.snap"));
        assert_eq!(r.status, 400);
        assert_eq!(s.generation.load(Ordering::SeqCst), 1);
        // Queries still answer from the original image.
        assert_eq!(route(&s, &get("/sameas?iri=http://a/p1")).status, 200);
    }

    #[test]
    fn no_jobs_blocks_client_named_reload_paths_only() {
        let dir = std::env::temp_dir().join("paris_server_reload_nojobs_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.snap");
        tiny_snapshot().save(&path).unwrap();

        let mut s = state();
        s.jobs_enabled = false;
        s.source = Some(path.clone());
        // Explicit path: forbidden.
        let r = route(
            &s,
            &post_reload(format!("path={}", path.display()).as_bytes()),
        );
        assert_eq!(r.status, 403);
        // Re-checking the configured source: still allowed.
        assert_eq!(route(&s, &post_reload(b"")).status, 200);
        std::fs::remove_dir_all(&dir).ok();
    }
}
