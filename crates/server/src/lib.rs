//! # The alignment-serving daemon (`paris serve`)
//!
//! The seed reproduced PARIS as a batch CLI: parse two RDF files, align,
//! print, exit. This crate is the serving half of the system: a
//! long-lived HTTP/1.1 daemon answering alignment queries from immutable
//! in-memory images, built entirely on `std::net` (the workspace takes
//! no external dependencies): a fixed pool of worker threads pulls
//! accepted connections from a channel and speaks the minimal HTTP/1.1
//! subset in [`http`].
//!
//! ## The catalog
//!
//! One daemon serves **many alignment pairs**. The catalog maps pair
//! names to snapshot files (`paris serve --catalog DIR` scans a
//! directory; `paris serve FILE.snap` is a one-pair catalog) and routes
//! `/pairs/<name>/{sameas,neighbors,stats,reload,healthz}`; the bare
//! legacy routes alias the *default* pair (the one named `default`, or
//! the alphabetically first). Pairs load **lazily** on first hit:
//!
//! * **v1 snapshots** decode into owned images. Their heap weight is
//!   accounted against the `--max-resident` budget, and the
//!   least-recently-used decoded image is evicted (and transparently
//!   re-loaded on the next hit) when the budget overflows.
//! * **v2 snapshots** open as mmap-backed arenas ([`PairImage::Mapped`])
//!   read in place — the OS page cache owns the bytes, so they cost the
//!   budget nothing, are never evicted, and cold sections never enter
//!   this process's resident set at all.
//!
//! ## Hot reload, per pair
//!
//! Every pair carries its own monotonic **generation** (bumped by each
//! image install: first load, explicit reload, watch reload, re-load
//! after eviction). Each request clones one `Arc` to its pair's current
//! image and answers entirely from it, so `POST /pairs/<name>/reload`
//! (or the `--watch` mtime re-check, which also discovers added and
//! removed catalog files) swaps the pointer atomically — in-flight
//! requests finish on the old image, and a failed load leaves the old
//! image serving.
//!
//! ## Replication
//!
//! Any daemon is implicitly a **primary**: `GET /pairs/manifest` lists
//! every pair's name, format version, generation, byte length, and
//! content checksum, and `GET /pairs/<name>/snapshot` streams the raw
//! snapshot file (with a checksum `ETag`, so `If-None-Match` makes an
//! unchanged pair cost zero body bytes). A daemon started with
//! `--replica-of URL` is additionally a **replica**: a sync thread
//! polls the upstream manifest, mirrors changed pairs into the catalog
//! directory via `paris-replica`'s validated-transfer engine, and
//! drives the per-pair hot-reload path; `/healthz` then reports the
//! role, upstream, last-sync time, and per-pair generation lag. See
//! `docs/REPLICATION.md`.
//!
//! ## The `/v1` contract
//!
//! Every JSON answer wears one envelope: `{"data":…}` on success,
//! `{"error":{"code":…,"message":…}}` on failure (`code` is
//! machine-readable: `bad_request`, `forbidden`, `not_found`,
//! `method_not_allowed`, `internal`). The canonical routes live under
//! `/v1`:
//!
//! | route | method | answer |
//! |---|---|---|
//! | `/v1/healthz` | GET | liveness + version + role + default-pair generation |
//! | `/v1/pairs` | GET | the catalog: every pair, its state and generation |
//! | `/v1/pairs/manifest` | GET | replication manifest (checksums, generations) |
//! | `/v1/pairs/<name>/sameas?iri=…` | GET | best match of an instance |
//! | `/v1/pairs/<name>/neighbors?iri=…&limit=…&offset=…` | GET | facts around an entity, paginated |
//! | `/v1/pairs/<name>/explain?left=…&right=…` | GET | the stored Eq. 13 evidence for one candidate pair |
//! | `/v1/pairs/<name>/query` | POST | batch: up to [`MAX_BATCH_QUERIES`] mixed lookups, one image acquisition |
//! | `/v1/pairs/<name>/stats` | GET | KB + alignment statistics of one pair |
//! | `/v1/pairs/<name>/healthz` | GET | per-pair liveness + generation |
//! | `/v1/pairs/<name>/snapshot` | GET | the raw snapshot bytes (ETag/304, no envelope) |
//! | `/v1/pairs/<name>/reload` | POST | swap in that pair's snapshot file |
//! | `/v1/align` | POST | enqueue a batch job over two single-KB snapshots |
//! | `/v1/jobs/<id>` | GET | job status / outcome |
//!
//! Every pre-v1 route (`/sameas`, `/pairs/<name>/stats`, …) keeps
//! working as a **thin alias**: it delegates to the very same v1
//! handler (identical envelope, identical bytes) and additionally
//! carries one deprecation `Warning` header; the bare `/sameas`,
//! `/neighbors`, `/stats`, `/reload` aliases resolve the *default*
//! pair.
//!
//! Cacheable `GET`s (`stats`, `sameas`, `neighbors`, `explain`, the
//! manifest, snapshot transfer) carry a body-checksum `ETag` and honour
//! `If-None-Match` — a polling client pays headers only while the
//! answer is unchanged.
//!
//! See `docs/HTTP_API.md` at the repository root for the full
//! request/response reference with curl examples, and the
//! `paris-client` crate for the typed client (`ParisClient`) the
//! `paris query` CLI speaks.

#![forbid(unsafe_code)]

pub mod http;
pub mod jobs;
pub mod json;
mod metrics;
pub mod runs;

pub use metrics::LogFormat;
pub use runs::{RunHistory, RunRecord};

use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant, SystemTime};

use paris_core::{explain_stored, AlignedPairSnapshot, PairImage, PairSide, QualitySummary};
use paris_kb::snapshot_v2::checksum_v2;
use paris_kb::{snapshot, EntityKind, KbStats};
use paris_obs as obs;
use paris_replica::{valid_pair_name, ReplicationStatus, SyncEngine};

use http::{ParseError, Request, Response};
use jobs::{JobRequest, JobStore};
use metrics::{RequestLog, ServerMetrics};

pub use jobs::{JobOutcome, JobState};

/// The crate version reported by `/healthz` and `paris version`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Server tuning knobs.
///
/// **Trust model:** the daemon has no authentication. `POST /align` and
/// `POST /reload` with an explicit `path=` make the server read (and for
/// jobs, write) server-local snapshot paths named by the client, so they
/// are only safe for trusted peers — keep the default loopback bind, or
/// disable them (`enable_jobs: false` / `paris serve --no-jobs`) before
/// exposing the read-only query routes more widely. In catalog mode the
/// catalog *directory* is the trust boundary: every pair reloads only
/// from its own scanned file, client-named paths are rejected outright,
/// and dropping a file into the directory is what publishes it (the
/// `--watch` rescan picks it up).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Whether `POST /align` (filesystem-touching batch jobs) and
    /// client-named `POST /reload` paths are served.
    pub enable_jobs: bool,
    /// Single-pair mode: the snapshot file the daemon was started from —
    /// the default source for `POST /reload` and the `--watch` re-check.
    /// `None` disables both (e.g. tests that build snapshots in memory).
    pub snapshot_path: Option<PathBuf>,
    /// Catalog mode: serve every `*.snap` in this directory as a named
    /// pair (mutually exclusive with `snapshot_path`).
    pub catalog_dir: Option<PathBuf>,
    /// Budget (bytes) for *decoded* v1 images, LRU-evicted when
    /// exceeded. Mapped v2 arenas cost nothing against it. `None` means
    /// unbounded.
    pub max_resident_bytes: Option<u64>,
    /// Poll snapshot files for modification-time changes at this
    /// interval and hot-swap automatically — the daemon equivalent of a
    /// SIGHUP re-check (`std` offers no portable signal handling). In
    /// catalog mode the tick also rescans the directory for added and
    /// removed pairs.
    pub watch_interval: Option<Duration>,
    /// Replica mode: continuously mirror this upstream daemon's catalog
    /// (`http://host:port`) into `catalog_dir` and hot-reload changed
    /// pairs. Requires catalog mode; the directory may start empty.
    pub replica_of: Option<String>,
    /// How often a replica polls the upstream manifest.
    pub sync_interval: Duration,
    /// Structured per-request logging (one line per finished request,
    /// to stderr unless redirected via [`Server::set_log_output`]).
    /// `Off` by default — the CLI daemon turns it on.
    pub log_format: LogFormat,
    /// Master switch for the request-path telemetry (latency timing,
    /// counters, request ids, logging). On by default; turning it off
    /// exists for the `metrics_overhead` bench, which compares the two
    /// settings to bound the instrumentation cost.
    pub telemetry: bool,
    /// Capacity of the in-memory span ring buffer behind
    /// `GET /v1/debug/traces` (`paris serve --trace-buffer N`).
    /// `0` disables tracing entirely — span recording becomes a cheap
    /// early return and the debug routes answer `404`.
    pub trace_buffer: usize,
    /// Threshold (milliseconds) above which a finished request also
    /// emits one `slow_request` log line through the request logger
    /// (`paris serve --slow-ms MS`). `None` disables the slow log.
    pub slow_ms: Option<u64>,
    /// Append-only JSONL file recording every completed align job
    /// (`paris serve --run-history FILE`). Existing records are loaded
    /// at startup so `GET /v1/debug/runs` survives restarts, and each
    /// new run's assignment sketch is compared against the previous
    /// generation of the same pair to flag drift. `None` disables the
    /// run history (the route answers `404`).
    pub run_history: Option<PathBuf>,
    /// How many slowest root spans the tail sampler pins outside the
    /// ring (`paris serve --trace-pinned N`). `0` disables pinning.
    pub trace_pinned: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".to_owned(),
            threads: 4,
            enable_jobs: true,
            snapshot_path: None,
            catalog_dir: None,
            max_resident_bytes: None,
            watch_interval: None,
            replica_of: None,
            sync_interval: Duration::from_secs(1),
            log_format: LogFormat::Off,
            telemetry: true,
            trace_buffer: DEFAULT_TRACE_BUFFER,
            slow_ms: None,
            run_history: None,
            trace_pinned: obs::span::SLOW_TRACES,
        }
    }
}

/// Default capacity of the span ring buffer (spans, not traces). At
/// ~200 bytes a span this bounds steady-state trace memory to ~100 KiB
/// plus the pinned slow traces.
pub const DEFAULT_TRACE_BUFFER: usize = 512;

/// One immutable serving image of one pair: the loaded snapshot plus the
/// derived values `/stats` would otherwise recompute per hit. Swapped
/// wholesale on reload; requests in flight keep their `Arc`.
struct LoadedImage {
    image: PairImage,
    /// Assigned KB-1 instances, computed once at load time.
    aligned_instances: usize,
    /// Pre-rendered KB statistics.
    kb1_stats_json: String,
    kb2_stats_json: String,
    /// The pair's generation this image was installed as.
    generation: u64,
    /// Heap weight charged against `--max-resident`: the file size for a
    /// decoded v1 image (a close proxy for its decoded heap), zero for a
    /// mapped v2 arena (the page cache owns those bytes).
    resident_bytes: u64,
}

impl LoadedImage {
    fn new(image: PairImage, generation: u64, file_bytes: u64) -> Self {
        let aligned_instances = image.aligned_instances();
        let kb1_stats_json = kb_stats_json(&image.kb_stats(PairSide::Kb1));
        let kb2_stats_json = kb_stats_json(&image.kb_stats(PairSide::Kb2));
        let resident_bytes = if image.is_mapped() { 0 } else { file_bytes };
        LoadedImage {
            image,
            aligned_instances,
            kb1_stats_json,
            kb2_stats_json,
            generation,
            resident_bytes,
        }
    }
}

/// Filesystem change signature: (mtime, length). Mtimes can be coarse
/// (a second on some systems); the length disambiguates all but
/// same-second same-size rewrites.
fn signature_of(path: &Path) -> Option<(SystemTime, u64)> {
    std::fs::metadata(path)
        .ok()
        .and_then(|m| m.modified().ok().map(|t| (t, m.len())))
}

/// What the replication manifest advertises about one pair's backing
/// file, cached per file signature so repeated manifest polls do not
/// re-read unchanged snapshots.
#[derive(Clone, Copy, Debug)]
struct ContentInfo {
    /// File signature the cache entry is valid for.
    signature: (SystemTime, u64),
    /// `checksum_v2` of the whole file — the transfer `ETag`.
    checksum: u64,
    /// Snapshot format version (0 when the file is not a snapshot).
    version: u32,
    /// File length in bytes.
    bytes: u64,
}

/// One catalog entry: a named snapshot file and its swappable image.
struct PairState {
    name: String,
    /// Backing snapshot file. `None` only for images handed to
    /// [`Server::bind`] directly (tests/benches); such pairs cannot
    /// reload and are never evicted.
    path: Option<PathBuf>,
    /// The current image; `None` before the first hit or after eviction.
    slot: RwLock<Option<Arc<LoadedImage>>>,
    /// Serializes loads/reloads of this pair (readers never wait on it).
    load_lock: Mutex<()>,
    /// Monotonic per-pair generation: the number of images ever
    /// installed (first lazy load = 1).
    generation: AtomicU64,
    /// Successful explicit + watch reloads.
    reloads: AtomicU64,
    /// LRU tick of the last request that touched this pair.
    last_used: AtomicU64,
    /// Signature of `path` as of the last load from it.
    last_signature: Mutex<Option<(SystemTime, u64)>>,
    /// Manifest cache: checksum/version/length of the backing file.
    content_cache: Mutex<Option<ContentInfo>>,
}

impl PairState {
    fn unloaded(name: String, path: PathBuf) -> PairState {
        PairState {
            name,
            path: Some(path),
            slot: RwLock::new(None),
            load_lock: Mutex::new(()),
            generation: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            last_signature: Mutex::new(None),
            content_cache: Mutex::new(None),
        }
    }

    fn current(&self) -> Option<Arc<LoadedImage>> {
        self.slot.read().expect("pair slot poisoned").clone()
    }

    /// Opens the backing snapshot file and returns it together with its
    /// [`ContentInfo`]. The checksum is computed at most once per file
    /// signature; on a cache miss the file is read *through the returned
    /// handle* — in chunks, never buffered whole — and rewound, so the
    /// checksum, the advertised length, and the bytes a caller then
    /// streams all come from the same inode even if the path is
    /// atomically replaced mid-request.
    fn open_content(&self) -> Result<(std::fs::File, ContentInfo), String> {
        use std::io::{Read, Seek};
        let Some(path) = self.path.as_ref() else {
            return Err(format!("pair '{}' has no backing snapshot file", self.name));
        };
        let mut file = std::fs::File::open(path)
            .map_err(|e| format!("cannot open snapshot {}: {e}", path.display()))?;
        let meta = file
            .metadata()
            .map_err(|e| format!("cannot stat snapshot {}: {e}", path.display()))?;
        let signature = meta.modified().ok().map(|t| (t, meta.len()));
        // Holding the lock across the read also collapses concurrent
        // cache misses into one checksum pass.
        let mut cache = self.content_cache.lock().expect("content cache poisoned");
        if let (Some(info), Some(sig)) = (*cache, signature) {
            if info.signature == sig {
                return Ok((file, info));
            }
        }
        let mut head = [0u8; 12];
        let version = match file.read_exact(&mut head) {
            Ok(()) => snapshot::peek_version_bytes(&head).unwrap_or(0),
            Err(_) => 0, // shorter than the magic: not a snapshot
        };
        file.rewind()
            .map_err(|e| format!("cannot rewind snapshot {}: {e}", path.display()))?;
        let checksum = paris_kb::snapshot_v2::checksum_v2_stream(&mut file, meta.len())
            .map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
        file.rewind()
            .map_err(|e| format!("cannot rewind snapshot {}: {e}", path.display()))?;
        let info = ContentInfo {
            signature: signature.unwrap_or((SystemTime::UNIX_EPOCH, meta.len())),
            checksum,
            version,
            bytes: meta.len(),
        };
        if signature.is_some() {
            *cache = Some(info);
        }
        Ok((file, info))
    }
}

/// The pair catalog: names → states, plus the eviction machinery.
struct Catalog {
    pairs: RwLock<BTreeMap<String, Arc<PairState>>>,
    /// Name the bare legacy routes alias.
    default_name: RwLock<String>,
    /// Catalog directory (rescanned by `--watch`), `None` in single mode.
    dir: Option<PathBuf>,
    max_resident: Option<u64>,
    /// LRU clock.
    clock: AtomicU64,
    /// Telemetry: image requests answered from the resident slot.
    image_hits: Arc<obs::Counter>,
    /// Telemetry: images loaded from disk (first hit, reload, or re-load
    /// after eviction) — the cache-miss side of `image_hits`.
    image_loads: Arc<obs::Counter>,
    /// Telemetry: decoded images evicted under `--max-resident`.
    evictions: Arc<obs::Counter>,
}

impl Catalog {
    fn new(
        pairs: BTreeMap<String, Arc<PairState>>,
        default_name: String,
        dir: Option<PathBuf>,
        max_resident: Option<u64>,
    ) -> Catalog {
        Catalog {
            pairs: RwLock::new(pairs),
            default_name: RwLock::new(default_name),
            dir,
            max_resident,
            clock: AtomicU64::new(0),
            image_hits: Arc::default(),
            image_loads: Arc::default(),
            evictions: Arc::default(),
        }
    }

    fn pair(&self, name: &str) -> Option<Arc<PairState>> {
        self.pairs
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
    }

    fn default_pair(&self) -> Option<Arc<PairState>> {
        let name = self
            .default_name
            .read()
            .expect("catalog lock poisoned")
            .clone();
        self.pair(&name)
    }

    fn touch(&self, pair: &PairState) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        pair.last_used.store(tick, Ordering::Relaxed);
    }

    /// The pair's current image, loading it on first hit (or after an
    /// eviction). Returns the human-readable load error on failure.
    fn image_of(&self, pair: &Arc<PairState>) -> Result<Arc<LoadedImage>, String> {
        self.touch(pair);
        if let Some(img) = pair.current() {
            self.image_hits.inc();
            return Ok(img);
        }
        let _serialized = pair.load_lock.lock().expect("pair load lock poisoned");
        if let Some(img) = pair.current() {
            self.image_hits.inc();
            return Ok(img); // another thread won the race
        }
        let Some(path) = pair.path.clone() else {
            return Err(format!("pair '{}' has no backing snapshot file", pair.name));
        };
        // Sample the signature *before* loading: if the file is replaced
        // mid-load we serve the old bytes but record the pre-replacement
        // signature, so the next --watch tick sees the change and
        // reloads (an extra reload beats serving stale data forever).
        let signature = signature_of(&path);
        let loaded = self.load_from(pair, &path)?;
        *pair.last_signature.lock().expect("signature lock poisoned") = signature;
        drop(_serialized);
        self.enforce_budget(&pair.name);
        Ok(loaded)
    }

    /// Loads `path` and installs it as the pair's next generation.
    /// Callers must hold the pair's `load_lock`.
    fn load_from(&self, pair: &PairState, path: &Path) -> Result<Arc<LoadedImage>, String> {
        let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let image = PairImage::load(path)
            .map_err(|e| format!("cannot load snapshot {}: {e}", path.display()))?;
        let generation = pair.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let loaded = Arc::new(LoadedImage::new(image, generation, file_bytes));
        *pair.slot.write().expect("pair slot poisoned") = Some(Arc::clone(&loaded));
        self.image_loads.inc();
        Ok(loaded)
    }

    /// Reloads one pair from its backing file (or an explicit override
    /// in legacy single-pair mode), bumping generation and reload count.
    fn reload_pair(
        &self,
        pair: &Arc<PairState>,
        override_path: Option<&Path>,
    ) -> Result<Arc<LoadedImage>, String> {
        let _serialized = pair.load_lock.lock().expect("pair load lock poisoned");
        let loaded = match override_path {
            Some(p) => self.load_from(pair, p)?,
            None => {
                let Some(path) = pair.path.clone() else {
                    return Err(format!("pair '{}' has no backing snapshot file", pair.name));
                };
                // Pre-load signature, same reasoning as in image_of.
                let signature = signature_of(&path);
                let loaded = self.load_from(pair, &path)?;
                *pair.last_signature.lock().expect("signature lock poisoned") = signature;
                loaded
            }
        };
        pair.reloads.fetch_add(1, Ordering::Relaxed);
        drop(_serialized);
        self.touch(pair);
        self.enforce_budget(&pair.name);
        Ok(loaded)
    }

    /// Evicts least-recently-used *decoded* images until the resident
    /// total fits the budget. The pair named `keep` (the one just
    /// loaded) and all mapped/pathless images are exempt.
    fn enforce_budget(&self, keep: &str) {
        let Some(budget) = self.max_resident else {
            return;
        };
        loop {
            let mut total = 0u64;
            let mut lru: Option<(u64, Arc<PairState>)> = None;
            {
                let pairs = self.pairs.read().expect("catalog lock poisoned");
                for pair in pairs.values() {
                    let Some(img) = pair.current() else { continue };
                    if img.resident_bytes == 0 {
                        continue; // mapped: the page cache owns it
                    }
                    total += img.resident_bytes;
                    if pair.name != keep && pair.path.is_some() {
                        let used = pair.last_used.load(Ordering::Relaxed);
                        if lru.as_ref().is_none_or(|&(u, _)| used < u) {
                            lru = Some((used, Arc::clone(pair)));
                        }
                    }
                }
            }
            if total <= budget {
                return;
            }
            let Some((_, victim)) = lru else {
                return; // nothing evictable left
            };
            let evicted = victim
                .slot
                .write()
                .expect("pair slot poisoned")
                .take()
                .map(|img| img.resident_bytes)
                .unwrap_or(0);
            self.evictions.inc();
            eprintln!(
                "catalog: evicted decoded pair '{}' ({evicted} resident bytes) under --max-resident",
                victim.name
            );
        }
    }
}

/// Replica-role state: the upstream plus the sync engine's latest
/// health report (written by the sync thread, rendered by `/healthz`).
struct ReplicaState {
    upstream: String,
    status: Mutex<Option<ReplicationStatus>>,
}

/// Shared serving state: the catalog plus global counters.
struct ServeState {
    catalog: Catalog,
    started: Instant,
    requests: Arc<obs::Counter>,
    jobs: Arc<JobStore>,
    /// Whether `POST /align` is served (see [`ServerConfig::enable_jobs`]).
    jobs_enabled: bool,
    /// `Some` when this daemon replicates an upstream catalog.
    replica: Option<ReplicaState>,
    /// The request-path instrument set behind `GET /v1/metrics`.
    metrics: ServerMetrics,
    /// The structured request log, `None` when logging is off.
    log: Option<RequestLog>,
    /// See [`ServerConfig::telemetry`].
    telemetry: bool,
    /// The span ring buffer behind `GET /v1/debug/traces` (capacity 0
    /// when tracing is disabled).
    spans: Arc<obs::span::SpanStore>,
    /// See [`ServerConfig::slow_ms`].
    slow_ms: Option<u64>,
    /// The persisted run history behind `GET /v1/debug/runs`, `None`
    /// without `--run-history`.
    runs: Option<Arc<RunHistory>>,
}

impl ServeState {
    #[allow(clippy::too_many_arguments)]
    fn new(
        catalog: Catalog,
        jobs_enabled: bool,
        replica: Option<ReplicaState>,
        log_format: LogFormat,
        telemetry: bool,
        trace_buffer: usize,
        trace_pinned: usize,
        slow_ms: Option<u64>,
        runs: Option<Arc<RunHistory>>,
    ) -> ServeState {
        let metrics = ServerMetrics::new();
        let requests = metrics.registry.counter(
            "paris_requests_total",
            "HTTP requests received (all routes, counted before routing).",
            &[],
        );
        metrics.registry.register_counter(
            "paris_catalog_image_hits_total",
            "Pair image requests answered from the resident slot.",
            &[],
            &catalog.image_hits,
        );
        metrics.registry.register_counter(
            "paris_catalog_image_loads_total",
            "Pair images loaded from disk (first hit, reload, or re-load after eviction).",
            &[],
            &catalog.image_loads,
        );
        metrics.registry.register_counter(
            "paris_catalog_evictions_total",
            "Decoded pair images evicted under --max-resident.",
            &[],
            &catalog.evictions,
        );
        // The build-info gauge: constant 1, with the interesting facts in
        // the labels (the Prometheus `*_build_info` convention).
        metrics
            .registry
            .gauge(
                "paris_build_info",
                "Constant 1; version and supported snapshot/delta formats as labels.",
                &[
                    ("version", VERSION),
                    (
                        "snapshot_formats",
                        &snapshot::SUPPORTED_SNAPSHOT_VERSIONS
                            .map(|v| format!("v{v}"))
                            .join(","),
                    ),
                    (
                        "delta_format",
                        &format!("v{}", snapshot::DELTA_FORMAT_VERSION),
                    ),
                ],
            )
            .set(1);
        let spans = Arc::new(obs::span::SpanStore::with_pinned(
            trace_buffer,
            trace_pinned,
        ));
        metrics.registry.register_counter(
            "paris_trace_spans_recorded_total",
            "Spans recorded into the trace ring buffer.",
            &[],
            spans.recorded_counter(),
        );
        metrics.registry.register_counter(
            "paris_trace_spans_dropped_total",
            "Spans evicted from the trace ring (pinned slow-trace copies persist).",
            &[],
            spans.dropped_counter(),
        );
        ServeState {
            catalog,
            started: Instant::now(),
            requests,
            jobs: Arc::new(JobStore::with_observatory(Arc::clone(&spans), runs.clone())),
            jobs_enabled,
            replica,
            metrics,
            log: RequestLog::new(log_format),
            telemetry,
            spans,
            slow_ms,
            runs,
        }
    }

    /// Refreshes every sampled gauge from live state — called once per
    /// `/v1/metrics` scrape instead of being maintained per mutation.
    fn refresh_gauges(&self) {
        let reg = &self.metrics.registry;
        reg.gauge(
            "paris_uptime_seconds",
            "Seconds since the daemon started.",
            &[],
        )
        .set(self.started.elapsed().as_secs());
        reg.gauge(
            "paris_jobs_submitted",
            "Alignment jobs accepted since startup.",
            &[],
        )
        .set(self.jobs.submitted());
        let pairs: Vec<Arc<PairState>> = self
            .catalog
            .pairs
            .read()
            .expect("catalog lock poisoned")
            .values()
            .cloned()
            .collect();
        let mut loaded = 0u64;
        for pair in &pairs {
            let image = pair.current();
            if image.is_some() {
                loaded += 1;
            }
            let labels = &[("pair", pair.name.as_str())];
            reg.gauge(
                "paris_pair_generation",
                "Monotonic image generation of a pair.",
                labels,
            )
            .set(pair.generation.load(Ordering::SeqCst));
            reg.gauge(
                "paris_pair_reloads",
                "Successful explicit and watch reloads of a pair.",
                labels,
            )
            .set(pair.reloads.load(Ordering::Relaxed));
            reg.gauge(
                "paris_pair_loaded",
                "1 while the pair's image is resident, else 0.",
                labels,
            )
            .set(u64::from(image.is_some()));
            reg.gauge(
                "paris_pair_resident_bytes",
                "Heap bytes the pair's decoded image charges against --max-resident.",
                labels,
            )
            .set(image.map(|i| i.resident_bytes).unwrap_or(0));
        }
        reg.gauge("paris_pairs", "Pairs in the catalog.", &[])
            .set(pairs.len() as u64);
        reg.gauge("paris_pairs_loaded", "Pairs with a resident image.", &[])
            .set(loaded);
        if let Some(replica) = &self.replica {
            let status = replica
                .status
                .lock()
                .expect("replica status poisoned")
                .clone();
            if let Some(status) = status {
                for p in &status.pairs {
                    let labels = &[("pair", p.name.as_str())];
                    reg.gauge(
                        "paris_replication_lag",
                        "Generations this replica trails the primary by, per pair.",
                        labels,
                    )
                    .set(p.lag);
                    reg.gauge(
                        "paris_replication_failures",
                        "Consecutive transfer failures of a replicated pair.",
                        labels,
                    )
                    .set(p.failures);
                    reg.gauge(
                        "paris_replication_backing_off",
                        "1 while a replicated pair is inside its retry backoff window.",
                        labels,
                    )
                    .set(u64::from(p.backing_off));
                }
            }
        }
    }

    /// Records one finished request: counters, latency histogram,
    /// per-pair series, ETag-cache outcome, and the request-log line.
    fn observe(&self, req: &Request, response: &Response, id: &str, latency_us: u64) {
        let class = metrics::route_class(&req.path);
        self.metrics.record(class, response.status, latency_us);
        if response.status == 304 {
            self.metrics.etag_hits.inc();
        } else if response.etag.is_some() {
            self.metrics.etag_misses.inc();
        }
        let pair = metrics::pair_of(&req.path).filter(|name| self.catalog.pair(name).is_some());
        if let Some(name) = pair {
            self.metrics.pair_counter(name).inc();
        }
        if let Some(log) = &self.log {
            let bytes = match &response.stream {
                Some((_, len)) => *len,
                None => response.body.len() as u64,
            };
            log.write(
                id,
                &req.method,
                &req.path,
                pair,
                response.status,
                bytes,
                latency_us,
            );
        }
    }

    /// Emits one `--slow-ms` slow-request line — through the structured
    /// request logger when one is configured, else to stderr so the flag
    /// is useful without `--log-format`.
    fn log_slow(
        &self,
        id: &str,
        method: &str,
        path: &str,
        pair: Option<&str>,
        latency_us: u64,
        trace: Option<&str>,
    ) {
        match &self.log {
            Some(log) => log.write_slow(id, method, path, pair, latency_us, trace),
            None => eprintln!(
                "slow_request id={id} method={method} path={path} pair={} \
                 latency_us={latency_us} trace={}",
                pair.unwrap_or("-"),
                trace.unwrap_or("-")
            ),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread (used by tests and
/// benches; production callers use [`Server::run`]).
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Worker threads
    /// finish their in-flight connection and exit.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Lists the `*.snap` files of a catalog directory as `(name, path)`.
/// Files whose stem is not a [`valid_pair_name`] are skipped with a
/// warning — every name the catalog admits is thereby safe to embed in
/// URLs, JSON, and manifest output without escaping, and safe for a
/// replica to turn back into a filesystem path.
fn scan_catalog_dir(dir: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let is_snap = path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e.eq_ignore_ascii_case("snap"));
        if !path.is_file() || !is_snap {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if !valid_pair_name(name) {
            eprintln!(
                "catalog: ignoring {} — pair names may use ASCII letters, digits, \
                 '-', '_', '.' (no leading dot, not 'manifest')",
                path.display()
            );
            continue;
        }
        found.push((name.to_owned(), path.clone()));
    }
    found.sort();
    Ok(found)
}

/// The default pair of a catalog: `default` if present, else the
/// alphabetically first name.
fn pick_default(names: &BTreeMap<String, Arc<PairState>>) -> String {
    if names.contains_key("default") {
        "default".to_owned()
    } else {
        names.keys().next().cloned().unwrap_or_default()
    }
}

impl Server {
    fn bind_with_catalog(catalog: Catalog, config: ServerConfig) -> std::io::Result<Server> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        let replica = match &config.replica_of {
            Some(upstream) => {
                // Fail fast on an unusable upstream URL, and insist on
                // catalog mode — the sync engine installs into (and the
                // rescan publishes from) the catalog directory.
                paris_replica::Upstream::parse(upstream).map_err(invalid)?;
                if catalog.dir.is_none() {
                    return Err(invalid(
                        "--replica-of requires catalog mode (--catalog DIR)".to_owned(),
                    ));
                }
                Some(ReplicaState {
                    upstream: upstream.clone(),
                    status: Mutex::new(None),
                })
            }
            None => None,
        };
        let runs = match &config.run_history {
            Some(path) => Some(Arc::new(RunHistory::open(path)?)),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServeState::new(
                catalog,
                config.enable_jobs,
                replica,
                config.log_format,
                config.telemetry,
                config.trace_buffer,
                config.trace_pinned,
                config.slow_ms,
                runs,
            )),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Redirects the structured request log (stderr by default) — e.g.
    /// to a file, or to `std::io::sink()` in benches. A no-op while
    /// [`ServerConfig::log_format`] is `Off`.
    pub fn set_log_output(&self, w: Box<dyn std::io::Write + Send>) {
        if let Some(log) = &self.state.log {
            log.set_output(w);
        }
    }

    /// Binds a single-pair server around an already-decoded snapshot
    /// (the pre-catalog API, kept for tests, benches, and embedding).
    pub fn bind(snapshot: AlignedPairSnapshot, config: ServerConfig) -> std::io::Result<Server> {
        Server::bind_image(PairImage::Decoded(Box::new(snapshot)), config)
    }

    /// Binds a single-pair server around a loaded [`PairImage`] (decoded
    /// v1 or mapped v2). The pair is named after the snapshot file, or
    /// `default` when none is configured.
    pub fn bind_image(image: PairImage, config: ServerConfig) -> std::io::Result<Server> {
        let path = config.snapshot_path.clone();
        let name = path
            .as_deref()
            .and_then(|p| p.file_stem())
            .and_then(|s| s.to_str())
            .filter(|n| valid_pair_name(n))
            .unwrap_or("default")
            .to_owned();
        let file_bytes = path
            .as_deref()
            .and_then(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .unwrap_or(0);
        let pair = PairState {
            name: name.clone(),
            slot: RwLock::new(Some(Arc::new(LoadedImage::new(image, 1, file_bytes)))),
            load_lock: Mutex::new(()),
            generation: AtomicU64::new(1),
            reloads: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            last_signature: Mutex::new(path.as_deref().and_then(signature_of)),
            content_cache: Mutex::new(None),
            path,
        };
        let mut pairs = BTreeMap::new();
        pairs.insert(name.clone(), Arc::new(pair));
        let catalog = Catalog::new(pairs, name, None, config.max_resident_bytes);
        Server::bind_with_catalog(catalog, config)
    }

    /// Binds a multi-pair server over `config.catalog_dir`: every
    /// `NAME.snap` in the directory becomes the pair `NAME`, opened
    /// lazily on its first request.
    pub fn bind_catalog(config: ServerConfig) -> std::io::Result<Server> {
        let dir = config.catalog_dir.clone().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no catalog directory set")
        })?;
        if config.replica_of.is_some() {
            // A replica's mirror directory may not exist yet and may
            // legitimately start empty — the first sync populates it.
            std::fs::create_dir_all(&dir)?;
        }
        let found = scan_catalog_dir(&dir)?;
        if found.is_empty() && config.replica_of.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("no *.snap files in catalog directory {}", dir.display()),
            ));
        }
        let mut pairs = BTreeMap::new();
        for (name, path) in found {
            pairs.insert(name.clone(), Arc::new(PairState::unloaded(name, path)));
        }
        let default_name = pick_default(&pairs);
        let catalog = Catalog::new(pairs, default_name, Some(dir), config.max_resident_bytes);
        Server::bind_with_catalog(catalog, config)
    }

    /// The address actually bound (resolves `:0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Names of the pairs currently in the catalog (sorted).
    pub fn pair_names(&self) -> Vec<String> {
        self.state
            .catalog
            .pairs
            .read()
            .expect("catalog lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Runs the accept loop on the current thread until shut down.
    ///
    /// Connections are handed to a fixed pool of worker threads over a
    /// channel; each worker serves its connection keep-alive style until
    /// the client closes.
    pub fn run(self) -> std::io::Result<()> {
        if let Some(interval) = self.config.watch_interval {
            spawn_watch_thread(
                Arc::clone(&self.state),
                Arc::clone(&self.shutdown),
                interval,
            );
        }
        if let (Some(upstream), Some(dir)) = (
            self.config.replica_of.clone(),
            self.state.catalog.dir.clone(),
        ) {
            spawn_sync_thread(
                Arc::clone(&self.state),
                Arc::clone(&self.shutdown),
                upstream,
                dir,
                self.config.sync_interval,
            );
        }
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.config.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("paris-serve-worker-{i}"))
                    .spawn(move || loop {
                        let conn = match rx.lock().expect("worker queue lock").recv() {
                            Ok(c) => c,
                            Err(_) => return, // acceptor gone: shut down
                        };
                        serve_connection(&state, conn);
                    })
                    .expect("spawning worker thread")
            })
            .collect();

        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    // If every worker died the channel is closed; stop.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // Transient accept failures (aborted handshakes, fd
                // exhaustion under a connection burst) must not bring the
                // daemon down; back off briefly and keep serving.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Starts [`run`](Self::run) on a background thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::Builder::new()
            .name("paris-serve-acceptor".to_owned())
            .spawn(move || {
                let _ = self.run();
            })?;
        Ok(ServerHandle {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }
}

/// The SIGHUP-style re-check, per pair: poll every loaded pair's file
/// signature and hot-swap the ones that changed; in catalog mode, also
/// rescan the directory for added and removed snapshot files. A vanished
/// or unloadable file leaves the current image serving and is retried
/// next tick.
fn spawn_watch_thread(state: Arc<ServeState>, shutdown: Arc<AtomicBool>, interval: Duration) {
    std::thread::Builder::new()
        .name("paris-serve-watch".to_owned())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                let catalog = &state.catalog;
                if let Some(dir) = catalog.dir.clone() {
                    rescan_catalog(catalog, &dir);
                }
                let pairs: Vec<Arc<PairState>> = catalog
                    .pairs
                    .read()
                    .expect("catalog lock poisoned")
                    .values()
                    .cloned()
                    .collect();
                for pair in pairs {
                    // Only refresh pairs that are actually resident; an
                    // unloaded pair reads the fresh file on its next hit.
                    if pair.current().is_none() {
                        continue;
                    }
                    let Some(path) = pair.path.clone() else {
                        continue;
                    };
                    let now = signature_of(&path);
                    let last = *pair.last_signature.lock().expect("signature lock poisoned");
                    if now.is_none() || now == last {
                        continue;
                    }
                    match catalog.reload_pair(&pair, None) {
                        Ok(img) => eprintln!(
                            "watch: reloaded pair '{}' from {} (generation {})",
                            pair.name,
                            path.display(),
                            img.generation
                        ),
                        Err(e) => {
                            // last_signature stays stale, so a
                            // half-written file is retried next tick.
                            eprintln!("watch: reload of pair '{}' failed: {e}", pair.name)
                        }
                    }
                }
            }
        })
        .expect("spawning watch thread");
}

/// The replica poll loop: one `paris-replica` sync cycle per interval.
/// A cycle that changed the mirror directory is published the same way
/// `--watch` publishes operator changes — a catalog rescan (pairs
/// appear/vanish, the default is re-picked) — and every *loaded*
/// updated pair is hot-reloaded immediately, so convergence does not
/// wait for a separate watch tick. Unloaded pairs just read the fresh
/// file on their next hit. After every cycle the engine's health report
/// is published for `/healthz`.
fn spawn_sync_thread(
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    upstream: String,
    dir: PathBuf,
    interval: Duration,
) {
    std::thread::Builder::new()
        .name("paris-serve-sync".to_owned())
        .spawn(move || {
            let mut engine = match SyncEngine::new(&upstream, &dir) {
                Ok(engine) => engine,
                Err(e) => {
                    // bind_with_catalog validated the URL; this is an
                    // unusable mirror directory. The daemon keeps
                    // serving whatever it scanned.
                    eprintln!("replica: cannot start sync engine: {e}");
                    return;
                }
            };
            // Record each sync cycle as a span tree in this daemon's
            // store and propagate the trace to the primary.
            if state.spans.enabled() {
                engine.set_span_store(Arc::clone(&state.spans));
            }
            // Export the engine's transfer accounting through
            // `/v1/metrics`; the Arcs stay live with the engine.
            let sync_metrics = engine.metrics().clone();
            let reg = &state.metrics.registry;
            reg.register_counter(
                "paris_sync_attempts_total",
                "Replication sync cycles attempted.",
                &[],
                &sync_metrics.attempts,
            );
            reg.register_counter(
                "paris_sync_failures_total",
                "Replication failures (manifest fetches and per-pair transfers).",
                &[],
                &sync_metrics.failures,
            );
            reg.register_counter(
                "paris_sync_snapshot_bytes_total",
                "Snapshot bytes transferred from the primary.",
                &[],
                &sync_metrics.snapshot_bytes,
            );
            reg.register_counter(
                "paris_sync_manifest_bytes_total",
                "Manifest bytes transferred from the primary (304 polls cost zero).",
                &[],
                &sync_metrics.manifest_bytes,
            );
            reg.register_gauge(
                "paris_sync_pairs_backing_off",
                "Replicated pairs currently inside their retry backoff window.",
                &[],
                &sync_metrics.pairs_backing_off,
            );
            while !shutdown.load(Ordering::SeqCst) {
                match engine.sync_once() {
                    Ok(outcome) => {
                        if !outcome.updated.is_empty() || !outcome.removed.is_empty() {
                            rescan_catalog(&state.catalog, &dir);
                        }
                        for name in &outcome.removed {
                            eprintln!("replica: pair '{name}' removed (gone upstream)");
                        }
                        for name in &outcome.updated {
                            let Some(pair) = state.catalog.pair(name) else {
                                continue;
                            };
                            if pair.current().is_none() {
                                eprintln!("replica: synced new pair '{name}'");
                                continue;
                            }
                            match state.catalog.reload_pair(&pair, None) {
                                Ok(img) => eprintln!(
                                    "replica: synced and reloaded pair '{name}' \
                                     (generation {})",
                                    img.generation
                                ),
                                Err(e) => {
                                    eprintln!("replica: reload of synced pair '{name}' failed: {e}")
                                }
                            }
                        }
                    }
                    Err(e) => eprintln!("replica: sync against {upstream} failed: {e}"),
                }
                if let Some(replica) = &state.replica {
                    *replica.status.lock().expect("replica status poisoned") =
                        Some(engine.status());
                }
                // Sleep in slices so shutdown stays prompt under long
                // poll intervals.
                let mut slept = Duration::ZERO;
                while slept < interval && !shutdown.load(Ordering::SeqCst) {
                    let slice = (interval - slept).min(Duration::from_millis(50));
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })
        .expect("spawning sync thread");
}

/// One `--watch` tick of catalog-directory maintenance: new `*.snap`
/// files become unloaded pairs, vanished files drop their pairs, and the
/// default pair is re-picked if its file went away.
fn rescan_catalog(catalog: &Catalog, dir: &Path) {
    let Ok(found) = scan_catalog_dir(dir) else {
        return; // transient directory error: keep serving what we have
    };
    let names: std::collections::BTreeSet<&str> = found.iter().map(|(n, _)| n.as_str()).collect();
    let mut pairs = catalog.pairs.write().expect("catalog lock poisoned");
    for (name, path) in &found {
        if !pairs.contains_key(name) {
            eprintln!("watch: discovered pair '{name}' ({})", path.display());
            pairs.insert(
                name.clone(),
                Arc::new(PairState::unloaded(name.clone(), path.clone())),
            );
        }
    }
    let removed: Vec<String> = pairs
        .keys()
        .filter(|k| !names.contains(k.as_str()))
        .cloned()
        .collect();
    for name in removed {
        eprintln!("watch: pair '{name}' removed (snapshot file vanished)");
        pairs.remove(&name);
    }
    let mut default_name = catalog.default_name.write().expect("catalog lock poisoned");
    if !pairs.contains_key(&*default_name) {
        *default_name = pick_default(&pairs);
    }
}

/// How long a worker waits for (the next) request on a connection before
/// reclaiming itself. Without this, `threads` idle connections would pin
/// the whole fixed pool forever.
const IDLE_CONNECTION_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

fn serve_connection(state: &ServeState, stream: TcpStream) {
    // Responses are written in one buffered flush; disabling Nagle keeps
    // keep-alive request/response turnarounds from hitting the delayed-ACK
    // stall (~40 ms per exchange on Linux).
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_CONNECTION_TIMEOUT));
    let peer_writable = stream.try_clone();
    let Ok(write_half) = peer_writable else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        match http::read_request(&mut reader) {
            Ok(request) => {
                state.requests.inc();
                let keep_alive = !request.wants_close();
                let response = if state.telemetry {
                    // A `traceparent` header continues the caller's trace
                    // (the replica's sync cycle, a traced client); its
                    // absence roots a fresh one.
                    let span = state.spans.enabled().then(|| {
                        let parent = request
                            .header("traceparent")
                            .and_then(obs::span::SpanContext::parse_traceparent);
                        state
                            .spans
                            .begin(metrics::route_class(&request.path), parent)
                    });
                    // Time routing + handling only; the observation
                    // itself happens after the response is rendered, so
                    // a `/v1/metrics` body never counts its own request.
                    let t0 = Instant::now();
                    let response = route(state, &request);
                    let latency_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    let id = state.metrics.request_id(&request);
                    let response = with_request_id(response, &id);
                    state.observe(&request, &response, &id, latency_us);
                    let is_slow = state
                        .slow_ms
                        .is_some_and(|ms| latency_us >= ms.saturating_mul(1000));
                    let trace_hex = if is_slow {
                        span.as_ref().map(|s| s.trace.to_hex())
                    } else {
                        None
                    };
                    if let Some(mut span) = span {
                        span.attr_str("method", &request.method);
                        span.attr_str("path", &request.path);
                        span.attr_int("status", u64::from(response.status));
                        span.attr_int("latency_us", latency_us);
                        state.spans.finish(span);
                    }
                    if is_slow {
                        state.log_slow(
                            &id,
                            &request.method,
                            &request.path,
                            metrics::pair_of(&request.path),
                            latency_us,
                            trace_hex.as_deref(),
                        );
                    }
                    // `Server-Timing` lets browsers and HTTP tooling
                    // surface the handler latency without parsing our
                    // envelope; scoped to the canonical namespace.
                    let response = if request.path.starts_with("/v1") {
                        response.with_header(
                            "Server-Timing",
                            format!("app;dur={:.3}", latency_us as f64 / 1000.0),
                        )
                    } else {
                        response
                    };
                    response.with_header("X-Request-Id", id)
                } else {
                    route(state, &request)
                };
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Io(_)) => return,
            Err(ParseError::Malformed(msg)) => {
                let _ = error(400, &msg).write_to(&mut writer, false);
                return;
            }
        }
    }
}

// ----------------------------------------------------------------------
// Routing
// ----------------------------------------------------------------------

/// Cap on a `neighbors` page (`limit` is clamped to this) — huge
/// entities cannot blow up a response.
pub const NEIGHBORS_MAX_LIMIT: usize = 1000;
/// Default `neighbors` page size.
const NEIGHBORS_DEFAULT_LIMIT: usize = 50;
/// Cap on the lookups of one `POST /v1/pairs/<name>/query` batch.
pub const MAX_BATCH_QUERIES: usize = 256;
/// Cap on the statement pairs one `explain` may examine
/// (`facts(left) × facts(right)`) — two hub entities cannot pin a
/// worker thread or render an unbounded evidence array.
pub const EXPLAIN_MAX_STATEMENT_PAIRS: usize = 1 << 22;
/// The deprecation warning every pre-`/v1` route carries.
const DEPRECATION_WARNING: &str =
    "299 - \"deprecated API: use the versioned /v1 routes (see docs/HTTP_API.md)\"";

/// Routes on the *path first*: a known path with the wrong method gets a
/// `405` with an `Allow` header, an unknown path gets a JSON `404`
/// whatever the method.
///
/// The canonical namespace is `/v1/…` ([`route_v1`]); every pre-v1
/// route is a thin alias that delegates to the same handlers (identical
/// envelope, identical bodies) plus one deprecation `Warning` header.
fn route(state: &ServeState, req: &Request) -> Response {
    match req.path.strip_prefix("/v1") {
        Some(rest) if rest.is_empty() || rest.starts_with('/') => {
            let rest = if rest.is_empty() { "/" } else { rest };
            route_v1(state, req, rest)
        }
        _ => route_legacy(state, req).with_header("Warning", DEPRECATION_WARNING),
    }
}

/// The canonical `/v1` router, over the path with the prefix stripped.
fn route_v1(state: &ServeState, req: &Request, path: &str) -> Response {
    if let Some(rest) = path.strip_prefix("/pairs/") {
        // `manifest` is a reserved name (valid_pair_name refuses it for
        // pairs), so this route never shadows a catalog entry.
        if rest == "manifest" {
            return allow(req, "GET", |r| cacheable(r, manifest(state)));
        }
        if let Some((name, op)) = rest.split_once('/') {
            return route_pair_op(state, req, name, op);
        }
        return error(
            404,
            &format!(
                "no such route {} (did you mean /v1/pairs/{rest}/stats?)",
                req.path
            ),
        );
    }
    match path {
        "/pairs" => allow(req, "GET", |r| list_pairs(state, r)),
        "/healthz" => allow(req, "GET", |r| healthz(state, r)),
        "/metrics" => allow(req, "GET", |r| serve_metrics(state, r)),
        "/align" => allow(req, "POST", |r| submit_align(state, r)),
        p if p.starts_with("/jobs/") => {
            let id = p["/jobs/".len()..].to_owned();
            allow(req, "GET", move |_| job_status(state, &id))
        }
        "/debug/traces" => allow(req, "GET", |_| debug_traces(state)),
        p if p.starts_with("/debug/traces/") => {
            let id = p["/debug/traces/".len()..].to_owned();
            allow(req, "GET", move |_| debug_trace(state, &id))
        }
        "/debug/profile" => allow(req, "GET", |r| debug_profile(state, r)),
        "/debug/runs" => allow(req, "GET", |_| debug_runs(state)),
        _ => error(404, &format!("no such route {}", req.path)),
    }
}

/// The pre-v1 alias layer: the bare default-pair conveniences plus every
/// path shape that predates the `/v1` prefix, all delegating to the v1
/// handlers. [`route`] adds the deprecation warning on the way out.
fn route_legacy(state: &ServeState, req: &Request) -> Response {
    match req.path.as_str() {
        "/stats" => allow(req, "GET", |r| {
            cacheable(r, with_default_pair(state, r, pair_stats))
        }),
        "/sameas" => allow(req, "GET", |r| {
            cacheable(r, with_default_pair(state, r, sameas))
        }),
        "/neighbors" => allow(req, "GET", |r| {
            cacheable(r, with_default_pair(state, r, neighbors))
        }),
        // The legacy reload keeps its single-pair `path=` override
        // (gated by the jobs trust switch); the v1 routes do not take
        // client-named paths at all.
        "/reload" => allow(req, "POST", |r| reload_default(state, r)),
        path => route_v1(state, req, path),
    }
}

fn route_pair_op(state: &ServeState, req: &Request, name: &str, op: &str) -> Response {
    let method = match op {
        "sameas" | "neighbors" | "explain" | "stats" | "diagnostics" | "healthz" | "snapshot" => {
            "GET"
        }
        "reload" | "query" => "POST",
        _ => {
            return error(
                404,
                &format!(
                    "no such pair operation '{op}' \
                     (sameas, neighbors, explain, query, stats, diagnostics, healthz, \
                     snapshot, reload)"
                ),
            )
        }
    };
    allow(req, method, |r| {
        let Some(pair) = state.catalog.pair(name) else {
            return error(404, &format!("no such pair '{name}'"));
        };
        match op {
            "sameas" => cacheable(r, sameas(state, r, &pair)),
            "neighbors" => cacheable(r, neighbors(state, r, &pair)),
            "explain" => cacheable(r, explain(state, r, &pair)),
            "query" => batch_query(state, r, &pair),
            "stats" => cacheable(r, pair_stats(state, r, &pair)),
            "diagnostics" => cacheable(r, diagnostics(state, r, &pair)),
            "healthz" => pair_healthz(&pair),
            "snapshot" => pair_snapshot(r, &pair),
            "reload" => reload(state, r, &pair, false),
            _ => unreachable!("filtered above"),
        }
    })
}

/// Finishes a cacheable `GET`: a `200` grows a body-checksum `ETag`,
/// and an `If-None-Match` hit collapses it to a body-less `304`. The
/// checksum is over the rendered body, so any change a client could
/// observe — new generation, new alignment, different query answer —
/// changes the validator.
fn cacheable(req: &Request, response: Response) -> Response {
    if response.status != 200 || response.stream.is_some() {
        return response;
    }
    let etag = format!("\"{:016x}\"", checksum_v2(&response.body));
    if req.if_none_match_matches(&etag) {
        Response::not_modified(etag)
    } else {
        response.with_etag(etag)
    }
}

/// Runs `f` when the method matches, else a `405` with `Allow`.
fn allow(req: &Request, method: &'static str, f: impl FnOnce(&Request) -> Response) -> Response {
    if req.method == method {
        f(req)
    } else {
        error(
            405,
            &format!("method {} not allowed for {}", req.method, req.path),
        )
        .with_allow(method)
    }
}

fn with_default_pair(
    state: &ServeState,
    req: &Request,
    f: impl FnOnce(&ServeState, &Request, &Arc<PairState>) -> Response,
) -> Response {
    let Some(pair) = state.catalog.default_pair() else {
        return error(500, "the catalog has no default pair");
    };
    f(state, req, &pair)
}

// ----------------------------------------------------------------------
// The uniform response envelope
// ----------------------------------------------------------------------

/// Wraps rendered data in the success envelope: `{"data":…}`.
fn ok(data: String) -> Response {
    ok_status(200, data)
}

/// [`ok`] with a non-200 success status (`202` for accepted jobs).
fn ok_status(status: u16, data: String) -> Response {
    Response::json(status, format!("{{\"data\":{data}}}"))
}

/// The envelope's machine-readable code of an error status.
fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        403 => "forbidden",
        404 => "not_found",
        405 => "method_not_allowed",
        500 => "internal",
        _ => "error",
    }
}

/// A rendered `{"code":…,"message":…}` object — the `error` member of
/// the envelope, and the in-place error shape of one failed batch query.
fn error_object(status: u16, message: &str) -> String {
    json::Object::new()
        .str("code", error_code(status))
        .str("message", message)
        .build()
}

/// A structured JSON error in the uniform envelope:
/// `{"error":{"code":…,"message":…}}` — served identically on `/v1` and
/// legacy routes.
fn error(status: u16, message: &str) -> Response {
    Response::json(
        status,
        format!("{{\"error\":{}}}", error_object(status, message)),
    )
}

/// Echoes the request id *inside* a JSON error envelope —
/// `{"error":{…,"request_id":"…"}}` — so a client that only captured the
/// body can still quote the id from the `X-Request-Id` header. The
/// splice fires only on the exact envelope shape [`error`] renders;
/// success bodies, streams, and in-place batch-query error members
/// (inside a 200) are untouched.
fn with_request_id(mut response: Response, id: &str) -> Response {
    if response.status < 400 || response.stream.is_some() {
        return response;
    }
    if response.body.starts_with(b"{\"error\":{") && response.body.ends_with(b"}}") {
        response.body.truncate(response.body.len() - 2);
        response
            .body
            .extend_from_slice(format!(",\"request_id\":{}}}}}", json::string(id)).as_bytes());
    }
    response
}

/// Resolves a pair's image or renders the load failure as a 500.
#[allow(clippy::result_large_err)] // the Err *is* the response
fn image_or_error(state: &ServeState, pair: &Arc<PairState>) -> Result<Arc<LoadedImage>, Response> {
    state.catalog.image_of(pair).map_err(|e| error(500, &e))
}

fn healthz(state: &ServeState, _req: &Request) -> Response {
    let (pairs, loaded) = {
        let pairs = state.catalog.pairs.read().expect("catalog lock poisoned");
        let loaded = pairs.values().filter(|p| p.current().is_some()).count();
        (pairs.len(), loaded)
    };
    let default_generation = state
        .catalog
        .default_pair()
        .map(|p| p.generation.load(Ordering::SeqCst))
        .unwrap_or(0);
    let mut obj = json::Object::new()
        .str("status", "ok")
        .str("version", VERSION)
        .str(
            "role",
            if state.replica.is_some() {
                "replica"
            } else {
                "primary"
            },
        )
        .str(
            "snapshot_formats",
            &snapshot::SUPPORTED_SNAPSHOT_VERSIONS
                .map(|v| format!("v{v}"))
                .join(","),
        )
        .str(
            "delta_formats",
            &format!("v{}", snapshot::DELTA_FORMAT_VERSION),
        )
        .num("uptime_seconds", state.started.elapsed().as_secs_f64())
        .int("requests", state.requests.get())
        .int("generation", default_generation)
        .int("pairs", pairs as u64)
        .int("pairs_loaded", loaded as u64);
    if let Some(replica) = &state.replica {
        obj = obj.raw("replication", replication_json(replica));
    }
    ok(obj.build())
}

/// `GET /v1/metrics`: the whole instrument set — request counts and
/// latency histograms per route class, status classes, per-pair request
/// counts, ETag-cache and catalog-LRU outcomes, replication transfer
/// totals, and the sampled gauges (pair generations, resident bytes,
/// replication lag), refreshed at scrape time. Prometheus text
/// exposition by default; `?format=json` renders the same registry as
/// one JSON document inside the uniform envelope.
fn serve_metrics(state: &ServeState, req: &Request) -> Response {
    state.refresh_gauges();
    match req.query_param("format") {
        Some("json") => ok(state.metrics.registry.render_json()),
        None | Some("prometheus") | Some("text") => {
            let mut response = Response::json(200, state.metrics.registry.render_prometheus());
            response.content_type = "text/plain; version=0.0.4";
            response
        }
        Some(other) => error(
            400,
            &format!("unknown metrics format '{other}' (prometheus, json)"),
        ),
    }
}

/// The `"replication"` object of a replica's `/healthz`: upstream,
/// last-sync times, and per-pair generation lag against the primary.
fn replication_json(replica: &ReplicaState) -> String {
    let status = replica
        .status
        .lock()
        .expect("replica status poisoned")
        .clone();
    let mut obj = json::Object::new().str("upstream", &replica.upstream);
    let Some(status) = status else {
        // The sync thread has not completed a cycle yet.
        return obj.bool("synced", false).build();
    };
    let now = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    obj = obj
        .bool("synced", status.last_success_unix.is_some())
        .int("syncs", status.syncs);
    if let Some(t) = status.last_attempt_unix {
        obj = obj.int("last_attempt_unix", t);
    }
    if let Some(t) = status.last_success_unix {
        obj = obj
            .int("last_sync_unix", t)
            .int("last_sync_seconds_ago", now.saturating_sub(t));
    }
    if let Some(e) = &status.last_error {
        obj = obj.str("last_error", e);
    }
    let pairs = status.pairs.iter().map(|p| {
        let mut entry = json::Object::new()
            .str("name", &p.name)
            .int("remote_generation", p.remote_generation)
            .int("synced_generation", p.synced_generation)
            .int("lag", p.lag)
            .int("failures", p.failures)
            .bool("backing_off", p.backing_off);
        if let Some(e) = &p.last_error {
            entry = entry.str("last_error", e);
        }
        entry.build()
    });
    obj.raw("pairs", json::array(pairs)).build()
}

/// `GET /pairs/manifest`: the replication manifest — every file-backed
/// pair's name, snapshot format version, generation, byte length, and
/// content checksum. A pair whose file cannot be read right now is
/// listed *without* a checksum (replicas keep their current copy) —
/// only a pair absent from the manifest propagates as a deletion.
fn manifest(state: &ServeState) -> Response {
    let default_name = state
        .catalog
        .default_name
        .read()
        .expect("catalog lock poisoned")
        .clone();
    let pairs: Vec<Arc<PairState>> = state
        .catalog
        .pairs
        .read()
        .expect("catalog lock poisoned")
        .values()
        .cloned()
        .collect();
    let rendered = pairs.iter().filter(|p| p.path.is_some()).map(|pair| {
        let obj = json::Object::new()
            .str("name", &pair.name)
            .int("generation", pair.generation.load(Ordering::SeqCst));
        match pair.open_content() {
            Ok((_, info)) => obj
                .int("format", info.version as u64)
                .int("bytes", info.bytes)
                .str("checksum", &format!("{:016x}", info.checksum)),
            Err(e) => obj.int("format", 0).int("bytes", 0).str("error", &e),
        }
        .build()
    });
    ok(json::Object::new()
        .str("server_version", VERSION)
        .str("default", &default_name)
        .raw("pairs", json::array(rendered))
        .build())
}

/// `GET /pairs/<name>/snapshot`: streams the pair's raw snapshot file
/// with its content checksum as a strong `ETag` — `If-None-Match` turns
/// an unchanged pair into a body-less `304`, which is what lets replica
/// polls cost zero snapshot bytes. The bytes, length, and checksum all
/// come from one open handle, so an atomic snapshot replacement
/// mid-request still yields a self-consistent (old) transfer.
fn pair_snapshot(req: &Request, pair: &Arc<PairState>) -> Response {
    match pair.open_content() {
        Ok((file, info)) => {
            let etag = format!("\"{:016x}\"", info.checksum);
            if req.if_none_match_matches(&etag) {
                return Response::not_modified(etag);
            }
            Response::file_stream(file, info.bytes).with_etag(etag)
        }
        Err(e) => error(404, &e),
    }
}

fn pair_healthz(pair: &Arc<PairState>) -> Response {
    let image = pair.current();
    let mut obj = json::Object::new()
        .str("status", "ok")
        .str("pair", &pair.name)
        .bool("loaded", image.is_some())
        .int("generation", pair.generation.load(Ordering::SeqCst))
        .int("reloads", pair.reloads.load(Ordering::Relaxed));
    if let Some(img) = image {
        obj = obj
            .str(
                "format",
                if img.image.format_version() == 2 {
                    "v2"
                } else {
                    "v1"
                },
            )
            .bool("mapped", img.image.is_mapped());
    }
    ok(obj.build())
}

fn kb_stats_json(s: &KbStats) -> String {
    json::Object::new()
        .str("name", &s.name)
        .int("instances", s.instances as u64)
        .int("classes", s.classes as u64)
        .int("relations", s.relations as u64)
        .int("facts", s.facts as u64)
        .int("literals", s.literals as u64)
        .build()
}

fn pair_stats(state: &ServeState, _req: &Request, pair: &Arc<PairState>) -> Response {
    let image = match image_or_error(state, pair) {
        Ok(i) => i,
        Err(e) => return e,
    };
    ok(json::Object::new()
        .str("pair", &pair.name)
        .raw("kb1", image.kb1_stats_json.clone())
        .raw("kb2", image.kb2_stats_json.clone())
        .int("aligned_instances", image.aligned_instances as u64)
        .int(
            "instance_equivalences",
            image.image.num_instance_pairs() as u64,
        )
        .int("literal_pairs", image.image.literal_pairs() as u64)
        .int("iterations", image.image.iterations_len() as u64)
        .bool("converged", image.image.converged())
        .str(
            "format",
            if image.image.format_version() == 2 {
                "v2"
            } else {
                "v1"
            },
        )
        .bool("mapped", image.image.is_mapped())
        .int("resident_bytes", image.resident_bytes)
        .int("generation", image.generation)
        .int("reloads", pair.reloads.load(Ordering::Relaxed))
        .int("jobs_submitted", state.jobs.submitted())
        .build())
}

fn list_pairs(state: &ServeState, _req: &Request) -> Response {
    let default_name = state
        .catalog
        .default_name
        .read()
        .expect("catalog lock poisoned")
        .clone();
    let pairs: Vec<Arc<PairState>> = state
        .catalog
        .pairs
        .read()
        .expect("catalog lock poisoned")
        .values()
        .cloned()
        .collect();
    let rendered = pairs.iter().map(|pair| {
        let image = pair.current();
        let mut obj = json::Object::new()
            .str("name", &pair.name)
            .bool("loaded", image.is_some())
            .int("generation", pair.generation.load(Ordering::SeqCst))
            .int("reloads", pair.reloads.load(Ordering::Relaxed));
        if let Some(img) = &image {
            obj = obj
                .str(
                    "format",
                    if img.image.format_version() == 2 {
                        "v2"
                    } else {
                        "v1"
                    },
                )
                .bool("mapped", img.image.is_mapped())
                .int("resident_bytes", img.resident_bytes)
                .int("aligned_instances", img.aligned_instances as u64);
        }
        obj.build()
    });
    ok(json::Object::new()
        .str("default", &default_name)
        .raw("pairs", json::array(rendered))
        .build())
}

/// `POST /reload` (bare legacy route): reload the default pair. With no
/// `path=` field the pair's own snapshot file is re-read; an explicit
/// `path=` names a server-local file and is therefore gated by the same
/// trust switch as jobs (`--no-jobs` ⇒ 403) and rejected outright in
/// catalog mode (the directory is the trust boundary).
fn reload_default(state: &ServeState, req: &Request) -> Response {
    with_default_pair(state, req, |state, req, pair| {
        reload(state, req, pair, true)
    })
}

fn reload(
    state: &ServeState,
    req: &Request,
    pair: &Arc<PairState>,
    allow_path_field: bool,
) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return error(400, "body must be UTF-8 form data"),
    };
    let params = http::parse_query(body.trim());
    let explicit = params
        .iter()
        .find(|(k, _)| k == "path")
        .map(|(_, v)| v.clone())
        .filter(|v| !v.is_empty());

    let override_path = match explicit {
        Some(p) => {
            if !allow_path_field || state.catalog.dir.is_some() {
                return error(
                    400,
                    "client-named reload paths are not served in catalog mode; \
                     each pair reloads from its own catalog file",
                );
            }
            if !state.jobs_enabled {
                return error(
                    403,
                    "client-named reload paths are disabled on this server (--no-jobs); \
                     POST /reload with no path re-checks the configured snapshot",
                );
            }
            Some(PathBuf::from(p))
        }
        None => {
            if pair.path.is_none() {
                return error(
                    400,
                    "this server was not started from a snapshot file; \
                     POST /reload needs a 'path' form field",
                );
            }
            None
        }
    };

    let t0 = Instant::now();
    // A failed load never disturbs the image currently serving.
    match state.catalog.reload_pair(pair, override_path.as_deref()) {
        Ok(image) => ok(json::Object::new()
            .str("pair", &pair.name)
            .int("generation", image.generation)
            .int("aligned_instances", image.aligned_instances as u64)
            .num("load_seconds", t0.elapsed().as_secs_f64())
            .build()),
        // A client-named path that fails is the client's error (400);
        // the pair's own file failing is the server's (500).
        Err(e) => error(if override_path.is_some() { 400 } else { 500 }, &e),
    }
}

#[allow(clippy::result_large_err)] // the Err *is* the response
fn parse_side(req: &Request) -> Result<PairSide, Response> {
    match req.query_param("side") {
        None | Some("left") => Ok(PairSide::Kb1),
        Some("right") => Ok(PairSide::Kb2),
        Some(other) => Err(error(
            400,
            &format!("side must be left or right, not '{other}'"),
        )),
    }
}

#[allow(clippy::result_large_err)] // the Err *is* the response
fn require_iri(req: &Request) -> Result<&str, Response> {
    req.query_param("iri")
        .filter(|s| !s.is_empty())
        .ok_or_else(|| error(400, "missing required query parameter 'iri'"))
}

/// Renders the `sameas` data object of one lookup — shared by the GET
/// route and the batch endpoint — or `(status, message)` on failure.
fn sameas_data(
    img: &PairImage,
    pair_name: &str,
    iri: &str,
    side: PairSide,
    threshold: f64,
) -> Result<String, (u16, String)> {
    let Some(x) = img.entity_by_iri(side, iri) else {
        return Err((404, format!("unknown IRI {iri} in {}", img.kb_name(side))));
    };
    let dst = match side {
        PairSide::Kb1 => PairSide::Kb2,
        PairSide::Kb2 => PairSide::Kb1,
    };
    let obj = json::Object::new().str("pair", pair_name).str("iri", iri);
    Ok(
        match img
            .best_match_from(side, x)
            .filter(|&(_, p)| p >= threshold)
        {
            Some((e, p)) => {
                let matched = img.entity_iri(dst, e).unwrap_or_default();
                obj.str("sameas", &matched).num("score", p).build()
            }
            None => obj.raw("sameas", "null").num("score", 0.0).build(),
        },
    )
}

/// Renders one `neighbors` page — shared by the GET route and the batch
/// endpoint. `limit` is clamped to [`NEIGHBORS_MAX_LIMIT`]; `offset`
/// pages through entities with more facts than one response should
/// carry.
fn neighbors_data(
    img: &PairImage,
    pair_name: &str,
    iri: &str,
    side: PairSide,
    offset: usize,
    limit: usize,
) -> Result<String, (u16, String)> {
    let limit = limit.min(NEIGHBORS_MAX_LIMIT);
    let Some(e) = img.entity_by_iri(side, iri) else {
        return Err((404, format!("unknown IRI {iri} in {}", img.kb_name(side))));
    };
    let total = img.facts_len(side, e);
    let rendered = img.facts_page(side, e, offset, limit).into_iter().map(|f| {
        json::Object::new()
            .str("relation", &f.relation)
            .bool("inverse", f.inverse)
            .str("value", &f.value)
            .num("functionality", f.functionality)
            .build()
    });
    Ok(json::Object::new()
        .str("pair", pair_name)
        .str("iri", iri)
        .int("total_facts", total as u64)
        .int("offset", offset as u64)
        .int("limit", limit as u64)
        .raw("facts", json::array(rendered))
        .build())
}

fn data_or_error(result: Result<String, (u16, String)>) -> Response {
    match result {
        Ok(data) => ok(data),
        Err((status, message)) => error(status, &message),
    }
}

fn sameas(state: &ServeState, req: &Request, pair: &Arc<PairState>) -> Response {
    let iri = match require_iri(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let side = match parse_side(req) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let threshold: f64 = match req.query_param("threshold").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(0.0),
        Err(_) => return error(400, "threshold must be a number"),
    };
    let image = match image_or_error(state, pair) {
        Ok(i) => i,
        Err(e) => return e,
    };
    data_or_error(sameas_data(&image.image, &pair.name, iri, side, threshold))
}

fn neighbors(state: &ServeState, req: &Request, pair: &Arc<PairState>) -> Response {
    let iri = match require_iri(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let side = match parse_side(req) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let limit: usize = match req.query_param("limit").map(str::parse).transpose() {
        Ok(l) => l.unwrap_or(NEIGHBORS_DEFAULT_LIMIT),
        Err(_) => return error(400, "limit must be an integer"),
    };
    let offset: usize = match req.query_param("offset").map(str::parse).transpose() {
        Ok(o) => o.unwrap_or(0),
        Err(_) => return error(400, "offset must be an integer"),
    };
    let image = match image_or_error(state, pair) {
        Ok(i) => i,
        Err(e) => return e,
    };
    data_or_error(neighbors_data(
        &image.image,
        &pair.name,
        iri,
        side,
        offset,
        limit,
    ))
}

/// `GET /v1/pairs/<name>/explain?left=…&right=…`: *why* does the stored
/// model believe (or not believe) `left ≡ right`? Answers with the
/// Eq. 13 evidence read from the serving image — decoded v1 and mapped
/// v2 images produce byte-identical bodies — plus the assignment
/// decision exactly as `sameas` would serve it. The `score` is
/// `1 − ∏ factorᵢ` over the listed evidence, multiplied in listed
/// order, so a client re-folding the served factors reproduces it bit
/// for bit.
fn explain(state: &ServeState, req: &Request, pair: &Arc<PairState>) -> Response {
    let param = |name: &str| req.query_param(name).filter(|s| !s.is_empty());
    let (Some(left), Some(right)) = (param("left"), param("right")) else {
        return error(
            400,
            "explain needs 'left' (a KB-1 IRI) and 'right' (a KB-2 IRI)",
        );
    };
    let image = match image_or_error(state, pair) {
        Ok(i) => i,
        Err(e) => return e,
    };
    let img = &image.image;
    let Some(x) = img.entity_by_iri(PairSide::Kb1, left) else {
        return error(
            404,
            &format!("unknown IRI {left} in {}", img.kb_name(PairSide::Kb1)),
        );
    };
    let Some(x2) = img.entity_by_iri(PairSide::Kb2, right) else {
        return error(
            404,
            &format!("unknown IRI {right} in {}", img.kb_name(PairSide::Kb2)),
        );
    };
    for (iri, side, e) in [(left, PairSide::Kb1, x), (right, PairSide::Kb2, x2)] {
        if img.entity_kind(side, e) != EntityKind::Instance {
            return error(
                400,
                &format!("{iri} is not an instance (Eq. 13 explains instance pairs)"),
            );
        }
    }
    // Bound the Eq. 13 enumeration before starting it — two hub
    // entities must not pin a worker thread for minutes.
    let pairs = img.facts_len(PairSide::Kb1, x) * img.facts_len(PairSide::Kb2, x2);
    if pairs > EXPLAIN_MAX_STATEMENT_PAIRS {
        return error(
            400,
            &format!(
                "explaining this pair would examine {pairs} statement pairs \
                 (cap {EXPLAIN_MAX_STATEMENT_PAIRS}); these entities are too \
                 connected to explain synchronously"
            ),
        );
    }
    let ex = explain_stored(img, x, x2);
    let assigned = img
        .best_match_from(PairSide::Kb1, x)
        .is_some_and(|(e, _)| e == x2);
    // The assignment member is rendered by the same function as the
    // sameas route, so the two answers are bit-identical by construction.
    let assignment = sameas_data(img, &pair.name, left, PairSide::Kb1, 0.0)
        .expect("entity existence was checked above");
    let evidence = ex.evidence.iter().map(|ev| {
        json::Object::new()
            .str("relation_left", &ev.relation_1)
            .bool("inverse_left", ev.inverse_1)
            .str("relation_right", &ev.relation_2)
            .bool("inverse_right", ev.inverse_2)
            .str("neighbor_left", &ev.neighbor_1)
            .str("neighbor_right", &ev.neighbor_2)
            .num("neighbor_prob", ev.neighbor_prob)
            .num("inv_functionality_left", ev.inv_functionality_1)
            .num("inv_functionality_right", ev.inv_functionality_2)
            .num("subrel_right_in_left", ev.subrel_2in1)
            .num("subrel_left_in_right", ev.subrel_1in2)
            .num("factor", ev.factor)
            .num("contribution", ev.solo_score())
            .build()
    });
    ok(json::Object::new()
        .str("pair", &pair.name)
        .str("left", left)
        .str("right", right)
        .num("score", ex.score)
        .num("stored_score", ex.stored_prob)
        .bool("assigned", assigned)
        .raw("assignment", assignment)
        .int("evidence_count", ex.evidence.len() as u64)
        .raw("evidence", json::array(evidence))
        .build())
}

/// `POST /v1/pairs/<name>/query`: up to [`MAX_BATCH_QUERIES`] mixed
/// `sameas` / `neighbors` lookups in one round-trip, all answered from a
/// **single** `Arc` acquisition of the pair's image — no per-lookup
/// routing, locking, or HTTP overhead. Per-query failures come back in
/// place (`{"error":{code,message}}`), so one bad IRI does not fail its
/// siblings; the batch itself only errors on a malformed body.
fn batch_query(state: &ServeState, req: &Request, pair: &Arc<PairState>) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error(400, "body must be UTF-8 JSON");
    };
    let doc = match json::parse(body) {
        Ok(d) => d,
        Err(e) => return error(400, &format!("body is not valid JSON: {e}")),
    };
    let Some(queries) = doc.get("queries").and_then(json::Json::as_array) else {
        return error(400, "body must be {\"queries\":[{\"op\":…},…]}");
    };
    if queries.len() > MAX_BATCH_QUERIES {
        return error(
            400,
            &format!(
                "batch of {} lookups exceeds the cap of {MAX_BATCH_QUERIES}",
                queries.len()
            ),
        );
    }
    let image = match image_or_error(state, pair) {
        Ok(i) => i,
        Err(e) => return e,
    };
    let results = queries
        .iter()
        .map(|q| match batch_one(&image.image, &pair.name, q) {
            Ok(data) => data,
            Err((status, message)) => format!("{{\"error\":{}}}", error_object(status, &message)),
        });
    ok(json::Object::new()
        .str("pair", &pair.name)
        .int("generation", image.generation)
        .int("count", queries.len() as u64)
        .raw("results", json::array(results))
        .build())
}

/// One lookup of a batch body:
/// `{"op":"sameas"|"neighbors","iri":…[,"side"][,"threshold"][,"limit"][,"offset"]}`.
fn batch_one(img: &PairImage, pair_name: &str, q: &json::Json) -> Result<String, (u16, String)> {
    use json::Json;
    let str_field = |key: &str| q.get(key).and_then(Json::as_str);
    let iri = str_field("iri")
        .filter(|s| !s.is_empty())
        .ok_or_else(|| (400, "query needs an 'iri'".to_owned()))?;
    let side = match str_field("side") {
        None | Some("left") => PairSide::Kb1,
        Some("right") => PairSide::Kb2,
        Some(other) => return Err((400, format!("side must be left or right, not '{other}'"))),
    };
    match str_field("op") {
        Some("sameas") => {
            let threshold = match q.get("threshold") {
                None => 0.0,
                Some(t) => t
                    .as_f64()
                    .ok_or_else(|| (400, "threshold must be a number".to_owned()))?,
            };
            sameas_data(img, pair_name, iri, side, threshold)
        }
        Some("neighbors") => {
            let int_field = |key: &str, default: usize| match q.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| (400, format!("{key} must be a non-negative integer"))),
            };
            let limit = int_field("limit", NEIGHBORS_DEFAULT_LIMIT)?;
            let offset = int_field("offset", 0)?;
            neighbors_data(img, pair_name, iri, side, offset, limit)
        }
        Some(other) => Err((400, format!("unknown op '{other}' (sameas, neighbors)"))),
        None => Err((400, "query needs an 'op' (sameas or neighbors)".to_owned())),
    }
}

fn submit_align(state: &ServeState, req: &Request) -> Response {
    if !state.jobs_enabled {
        return error(
            403,
            "alignment jobs are disabled on this server (--no-jobs)",
        );
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return error(400, "body must be UTF-8 form data"),
    };
    let params = http::parse_query(body.trim());
    let get = |name: &str| {
        params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .filter(|v| !v.is_empty())
    };
    let (Some(left), Some(right)) = (get("left"), get("right")) else {
        return error(
            400,
            "POST /align needs 'left' and 'right' snapshot paths (form-encoded)",
        );
    };
    let max_iterations = match get("max_iterations")
        .map(|v| v.parse::<usize>())
        .transpose()
    {
        Ok(v) => v,
        Err(_) => return error(400, "max_iterations must be an integer"),
    };
    let id = state.jobs.submit(JobRequest {
        left,
        right,
        out: get("out"),
        max_iterations,
    });
    ok_status(
        202,
        json::Object::new()
            .int("job", id)
            .str("poll", &format!("/v1/jobs/{id}"))
            .build(),
    )
}

fn job_status(state: &ServeState, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return error(400, "job id must be an integer");
    };
    let Some(job) = state.jobs.get(id) else {
        return error(404, &format!("no job {id}"));
    };
    let mut obj = json::Object::new()
        .int("job", id)
        .str("status", job.label());
    if let Some(trace) = state.jobs.trace_of(id) {
        obj = obj.str("trace", &trace.to_hex());
    }
    match job {
        JobState::Done(outcome) => {
            obj = obj
                .int("aligned_instances", outcome.aligned_instances as u64)
                .int("iterations", outcome.iterations as u64)
                .bool("converged", outcome.converged)
                .num("seconds", outcome.seconds);
            if let Some(out) = &outcome.out_path {
                obj = obj.str("out", out);
            }
        }
        JobState::Failed(message) => obj = obj.str("error", &message),
        JobState::Running => {
            // Live fixpoint progress, straight from the job's span
            // collector: completed iterations and the most recently
            // finished pass (with its entity counts and dirty-set size).
            if let Some(spans) = state.jobs.live_spans(id) {
                let iterations = spans
                    .iter()
                    .filter(|s| s.name == "iteration" && s.end_ns > 0)
                    .count() as u64;
                let mut progress = json::Object::new()
                    .int("iterations_completed", iterations)
                    .int("spans", spans.len() as u64);
                if let Some(last) = spans.iter().rev().find(|s| s.end_ns > 0) {
                    progress = progress.raw("last_span", span_json(last));
                }
                obj = obj.raw("progress", progress.build());
            }
            // The numeric convergence series alongside the spans: one
            // point per completed iteration — churn, pair turnover, and
            // the sharpening score distribution.
            if let Some(series) = state.jobs.live_series(id) {
                let points = series.snapshot();
                obj = obj.raw(
                    "series",
                    json::Object::new()
                        .int("points", points.len() as u64)
                        .int("truncated", series.truncated())
                        .raw(
                            "iterations",
                            json::array(points.iter().map(iteration_point_json)),
                        )
                        .build(),
                );
            }
        }
        JobState::Queued => {}
    }
    ok(obj.build())
}

// ----------------------------------------------------------------------
// Trace debug routes
// ----------------------------------------------------------------------

/// Cap on the `recent` window of one `GET /v1/debug/traces` response.
const DEBUG_RECENT_SPANS: usize = 100;

/// Depth cap of the rendered span tree — bounds recursion no matter what
/// parent links a trace carries.
const SPAN_TREE_MAX_DEPTH: usize = 64;

/// One span as a flat JSON object (ids in hex, duration pre-computed).
fn span_json(span: &obs::span::Span) -> String {
    let mut obj = json::Object::new()
        .str("trace", &span.trace.to_hex())
        .str("span", &span.id.to_hex());
    if let Some(parent) = span.parent {
        obj = obj.str("parent", &parent.to_hex());
    }
    obj = obj
        .str("name", span.name)
        .int("start_ns", span.start_ns)
        .int("duration_ns", span.duration_ns());
    let mut attrs = json::Object::new();
    for (key, value) in &span.attrs {
        attrs = match value {
            obs::span::AttrValue::Int(v) => attrs.int(key, *v),
            obs::span::AttrValue::Float(v) => attrs.num(key, *v),
            obs::span::AttrValue::Str(v) => attrs.str(key, v),
        };
    }
    obj.raw("attrs", attrs.build()).build()
}

/// Renders one trace's spans (start-ordered) as a forest: spans whose
/// parent is absent from the set — locally parent-less, or continued
/// from a remote caller's `traceparent` — are roots; the rest nest under
/// their parent recursively.
fn span_tree_json(spans: &[obs::span::Span]) -> String {
    use std::collections::{HashMap, HashSet};
    let present: HashSet<u64> = spans.iter().map(|s| s.id.0).collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.parent {
            Some(p) if present.contains(&p.0) && p != span.id => {
                children.entry(p.0).or_default().push(i)
            }
            _ => roots.push(i),
        }
    }
    fn node(
        spans: &[obs::span::Span],
        children: &HashMap<u64, Vec<usize>>,
        i: usize,
        depth: usize,
    ) -> String {
        let span = &spans[i];
        let kids: &[usize] = children.get(&span.id.0).map(Vec::as_slice).unwrap_or(&[]);
        let rendered = if depth >= SPAN_TREE_MAX_DEPTH {
            json::array(std::iter::empty())
        } else {
            json::array(kids.iter().map(|&j| node(spans, children, j, depth + 1)))
        };
        // Splice the children array into the flat span object.
        let mut obj = span_json(span);
        obj.truncate(obj.len() - 1);
        obj.push_str(",\"children\":");
        obj.push_str(&rendered);
        obj.push('}');
        obj
    }
    json::array(roots.iter().map(|&i| node(spans, &children, i, 0)))
}

/// `GET /v1/debug/traces`: the recent span window (newest first) plus
/// the tail-sampled slowest traces.
fn debug_traces(state: &ServeState) -> Response {
    let spans = &state.spans;
    if !spans.enabled() {
        return error(404, "tracing is disabled (--trace-buffer 0)");
    }
    let slowest = json::array(spans.slowest().iter().map(|s| {
        json::Object::new()
            .str("trace", &s.trace.to_hex())
            .str("root", s.root_name)
            .int("duration_ns", s.root_duration_ns)
            .int("spans", s.spans as u64)
            .build()
    }));
    let recent = json::array(
        spans
            .recent(DEBUG_RECENT_SPANS)
            .iter()
            .map(span_json)
            .collect::<Vec<_>>(),
    );
    ok(json::Object::new()
        .int("capacity", spans.capacity() as u64)
        .int("recorded", spans.recorded())
        .int("dropped", spans.dropped())
        .raw("slowest", slowest)
        .raw("recent", recent)
        .build())
}

/// `GET /v1/debug/traces/<id>`: every retained span of one trace,
/// rendered as a parent-linked tree.
fn debug_trace(state: &ServeState, id: &str) -> Response {
    if !state.spans.enabled() {
        return error(404, "tracing is disabled (--trace-buffer 0)");
    }
    let Some(trace) = obs::span::TraceId::from_hex(id) else {
        return error(400, "trace id must be 32 hex digits");
    };
    let spans = state.spans.trace(trace);
    if spans.is_empty() {
        return error(404, &format!("no retained spans for trace {id}"));
    }
    ok(json::Object::new()
        .str("trace", &trace.to_hex())
        .int("spans", spans.len() as u64)
        .raw("roots", span_tree_json(&spans))
        .build())
}

// ----------------------------------------------------------------------
// Observatory routes
// ----------------------------------------------------------------------

/// A probability-score histogram, rendered back from per-mille samples
/// to probabilities.
fn score_histogram_json(snap: &obs::HistogramSnapshot) -> String {
    let scale = obs::series::SCORE_SCALE as f64;
    json::Object::new()
        .int("count", snap.count)
        .num("mean", snap.mean() / scale)
        .num("p50", snap.quantile(0.50) as f64 / scale)
        .num("p90", snap.quantile(0.90) as f64 / scale)
        .num("p99", snap.quantile(0.99) as f64 / scale)
        .num("max", snap.max as f64 / scale)
        .build()
}

/// One point of a live convergence series.
fn iteration_point_json(p: &obs::series::IterationStats) -> String {
    json::Object::new()
        .int("iteration", p.iteration as u64)
        .int("dirty", p.dirty)
        .int("changed", p.changed)
        .int("new_pairs", p.new_pairs)
        .int("dropped_pairs", p.dropped_pairs)
        .int("assigned", p.assigned)
        .raw("scores", score_histogram_json(&p.scores))
        .int("instance_us", p.instance_us)
        .int("subrelation_us", p.subrelation_us)
        .build()
}

/// `GET /v1/pairs/<name>/diagnostics`: the gold-standard-free quality
/// summary of the served image — coverage, score shape, relation and
/// class alignment counts.
fn diagnostics(state: &ServeState, _req: &Request, pair: &Arc<PairState>) -> Response {
    let image = match image_or_error(state, pair) {
        Ok(i) => i,
        Err(e) => return e,
    };
    let q = QualitySummary::of_image(&image.image);
    ok(json::Object::new()
        .str("pair", &pair.name)
        .int("generation", image.generation)
        .raw(
            "instances",
            json::Object::new()
                .int("kb1", q.instances_kb1 as u64)
                .int("kb2", q.instances_kb2 as u64)
                .int("assigned", q.assigned_instances as u64)
                .num("coverage", q.instance_coverage)
                .build(),
        )
        .raw("scores", score_histogram_json(&q.scores))
        .raw(
            "relations",
            json::Object::new()
                .int("kb1", q.relations_kb1 as u64)
                .int("kb2", q.relations_kb2 as u64)
                .int("aligned_1to2", q.aligned_relations_1to2 as u64)
                .int("aligned_2to1", q.aligned_relations_2to1 as u64)
                .num("threshold", q.relation_threshold)
                .build(),
        )
        .raw(
            "classes",
            json::Object::new()
                .int("kb1", q.classes_kb1 as u64)
                .int("kb2", q.classes_kb2 as u64)
                .build(),
        )
        .int("iterations", q.iterations as u64)
        .bool("converged", q.converged)
        .build())
}

/// One flame path with its nested children.
fn flame_node_json(node: &obs::flame::FlameNode) -> String {
    json::Object::new()
        .str("name", node.name)
        .int("count", node.count)
        .int("total_ns", node.total_ns)
        .int("self_ns", node.self_ns)
        .int("p50_us", node.p50_us)
        .int("p99_us", node.p99_us)
        .raw(
            "children",
            json::array(node.children.iter().map(flame_node_json)),
        )
        .build()
}

/// `GET /v1/debug/profile`: the span ring folded into a flame tree —
/// name paths with call counts, inclusive/self time, and per-path
/// latency quantiles. `?root=<name>` re-roots the profile on spans of
/// that name (e.g. `?root=iteration` to profile fixpoint passes only).
fn debug_profile(state: &ServeState, req: &Request) -> Response {
    if !state.spans.enabled() {
        return error(404, "tracing is disabled (--trace-buffer 0)");
    }
    let spans = state.spans.recent(state.spans.capacity());
    let root = req.query_param("root");
    let nodes = obs::flame::aggregate(&spans, root);
    let mut obj = json::Object::new().int("spans", spans.len() as u64);
    if let Some(name) = root {
        obj = obj.str("root", name);
    }
    ok(obj
        .int("total_root_ns", obs::flame::total_root_ns(&nodes))
        .int("total_self_ns", obs::flame::total_self_ns(&nodes))
        .raw("roots", json::array(nodes.iter().map(flame_node_json)))
        .build())
}

/// `GET /v1/debug/runs`: the persisted run history, oldest first —
/// every completed align job with its generation, agreement against the
/// previous generation of the same pair, and drift flag.
fn debug_runs(state: &ServeState) -> Response {
    let Some(runs) = &state.runs else {
        return error(
            404,
            "run history is disabled (start with --run-history FILE)",
        );
    };
    let records = runs.records();
    ok(json::Object::new()
        .str("file", &runs.path().to_string_lossy())
        .int("runs", records.len() as u64)
        .raw("records", json::array(records.iter().map(|r| r.api_json())))
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_core::{Aligner, MappedPairSnapshot, OwnedAlignment, ParisConfig};
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;

    fn snapshot_of(n: usize) -> AlignedPairSnapshot {
        let mut a = KbBuilder::new("left");
        let mut b = KbBuilder::new("right");
        for i in 0..n {
            a.add_literal_fact(
                format!("http://a/p{i}"),
                "http://a/email",
                Literal::plain(format!("p{i}@x.org")),
            );
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(format!("p{i}@x.org")),
            );
        }
        let (kb1, kb2) = (a.build(), b.build());
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        AlignedPairSnapshot::new(kb1, kb2, owned)
    }

    fn tiny_snapshot() -> AlignedPairSnapshot {
        snapshot_of(3)
    }

    /// A single preloaded pair (no backing file), like the old tests.
    fn state() -> ServeState {
        state_with_pair(tiny_snapshot(), None)
    }

    fn state_with_pair(snapshot: AlignedPairSnapshot, path: Option<PathBuf>) -> ServeState {
        let name = "default".to_owned();
        let pair = PairState {
            name: name.clone(),
            slot: RwLock::new(Some(Arc::new(LoadedImage::new(
                PairImage::Decoded(Box::new(snapshot)),
                1,
                0,
            )))),
            load_lock: Mutex::new(()),
            generation: AtomicU64::new(1),
            reloads: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            last_signature: Mutex::new(None),
            content_cache: Mutex::new(None),
            path,
        };
        let mut pairs = BTreeMap::new();
        pairs.insert(name.clone(), Arc::new(pair));
        ServeState::new(
            Catalog::new(pairs, name, None, None),
            true,
            None,
            LogFormat::Off,
            true,
            DEFAULT_TRACE_BUFFER,
            obs::span::SLOW_TRACES,
            None,
            None,
        )
    }

    /// A lazily-loaded catalog over on-disk snapshot files.
    fn catalog_state(entries: &[(&str, &Path)], max_resident: Option<u64>) -> ServeState {
        let mut pairs = BTreeMap::new();
        for (name, path) in entries {
            pairs.insert(
                name.to_string(),
                Arc::new(PairState::unloaded(name.to_string(), path.to_path_buf())),
            );
        }
        let default_name = pick_default(&pairs);
        ServeState::new(
            Catalog::new(pairs, default_name, None, max_resident),
            true,
            None,
            LogFormat::Off,
            true,
            DEFAULT_TRACE_BUFFER,
            obs::span::SLOW_TRACES,
            None,
            None,
        )
    }

    fn get(path_and_query: &str) -> Request {
        let (path, q) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, http::parse_query(q)),
            None => (path_and_query, Vec::new()),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            query: q,
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        }
    }

    #[test]
    fn metrics_endpoint_serves_both_formats() {
        let s = state();
        let text = route(&s, &get("/v1/metrics"));
        assert_eq!(text.status, 200);
        assert!(
            text.content_type.starts_with("text/plain"),
            "{}",
            text.content_type
        );
        let body = String::from_utf8(text.body).unwrap();
        assert!(
            body.contains("# TYPE paris_requests_total counter"),
            "{body}"
        );
        assert!(
            body.contains("# TYPE paris_route_latency_microseconds histogram"),
            "{body}"
        );
        assert!(
            body.contains("paris_pair_generation{pair=\"default\"} 1"),
            "{body}"
        );
        assert!(body.contains("paris_pairs 1"), "{body}");

        let json_body = route(&s, &get("/v1/metrics?format=json"));
        assert_eq!(json_body.status, 200);
        assert_eq!(json_body.content_type, "application/json");
        let body = String::from_utf8(json_body.body).unwrap();
        assert!(body.starts_with("{\"data\":{"), "{body}");
        assert!(body.contains("\"name\":\"paris_requests_total\""), "{body}");

        assert_eq!(route(&s, &get("/v1/metrics?format=xml")).status, 400);
        let mut post = get("/v1/metrics");
        post.method = "POST".into();
        assert_eq!(route(&s, &post).status, 405);
    }

    #[test]
    fn observe_records_route_pair_and_etag_series() {
        let s = state();
        let req = get("/v1/pairs/default/sameas?iri=http://a/p1");
        let response = cacheable(&req, route(&s, &req));
        assert!(response.etag.is_some());
        s.observe(&req, &response, "test-id", 123);
        let reg = &s.metrics.registry;
        assert_eq!(
            reg.counter_value("paris_route_requests_total", &[("route", "sameas")]),
            Some(1)
        );
        assert_eq!(
            reg.counter_value("paris_pair_requests_total", &[("pair", "default")]),
            Some(1)
        );
        assert_eq!(reg.counter_value("paris_etag_misses_total", &[]), Some(1));

        // Replaying with the served validator is an ETag hit (a 304).
        let mut conditional = get("/v1/pairs/default/sameas?iri=http://a/p1");
        conditional
            .headers
            .push(("if-none-match".to_owned(), response.etag.clone().unwrap()));
        let not_modified = cacheable(&conditional, route(&s, &conditional));
        assert_eq!(not_modified.status, 304);
        s.observe(&conditional, &not_modified, "test-id-2", 45);
        assert_eq!(reg.counter_value("paris_etag_hits_total", &[]), Some(1));

        // A request naming no pair records no pair series.
        let health = get("/v1/healthz");
        let response = route(&s, &health);
        s.observe(&health, &response, "test-id-3", 10);
        assert_eq!(
            reg.counter_value("paris_pair_requests_total", &[("pair", "default")]),
            Some(2) // the conditional replay counted; healthz did not
        );
    }

    #[test]
    fn healthz_and_stats_respond() {
        let s = state();
        let health = route(&s, &get("/healthz"));
        assert_eq!(health.status, 200);
        let body = String::from_utf8(health.body).unwrap();
        assert!(
            body.contains(&format!("\"version\":\"{VERSION}\"")),
            "{body}"
        );
        assert!(body.contains("\"snapshot_formats\":\"v1,v2\""), "{body}");
        let stats = route(&s, &get("/stats"));
        assert_eq!(stats.status, 200);
        let body = String::from_utf8(stats.body).unwrap();
        assert!(body.contains("\"aligned_instances\":3"), "{body}");
        assert!(body.contains("\"pair\":\"default\""), "{body}");
    }

    #[test]
    fn sameas_finds_the_alignment() {
        let s = state();
        let r = route(&s, &get("/sameas?iri=http://a/p1"));
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("http://b/q1"), "{body}");

        let rev = route(&s, &get("/sameas?iri=http://b/q2&side=right"));
        let body = String::from_utf8(rev.body).unwrap();
        assert!(body.contains("http://a/p2"), "{body}");

        // The /pairs/<name>/ route answers identically.
        let named = route(&s, &get("/pairs/default/sameas?iri=http://a/p1"));
        assert_eq!(named.status, 200);
        assert!(String::from_utf8(named.body)
            .unwrap()
            .contains("http://b/q1"));
    }

    #[test]
    fn sameas_threshold_suppresses_match() {
        let s = state();
        let r = route(&s, &get("/sameas?iri=http://a/p1&threshold=1.01"));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"sameas\":null"), "{body}");
    }

    #[test]
    fn unknown_iri_is_404() {
        let s = state();
        assert_eq!(route(&s, &get("/sameas?iri=http://a/nope")).status, 404);
        assert_eq!(route(&s, &get("/sameas")).status, 400);
        assert_eq!(
            route(&s, &get("/sameas?iri=http://a/p0&side=middle")).status,
            400
        );
    }

    #[test]
    fn neighbors_lists_facts() {
        let s = state();
        let r = route(&s, &get("/neighbors?iri=http://a/p0"));
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("http://a/email"), "{body}");
        assert!(body.contains("p0@x.org"), "{body}");
    }

    #[test]
    fn unknown_route_is_404_with_json_body_for_any_method() {
        let s = state();
        for method in ["GET", "POST", "DELETE", "PUT"] {
            let mut req = get("/nope");
            req.method = method.into();
            let r = route(&s, &req);
            assert_eq!(r.status, 404, "{method}");
            assert_eq!(r.content_type, "application/json");
            assert!(String::from_utf8(r.body).unwrap().contains("\"error\""));
        }
        assert_eq!(route(&s, &get("/pairs/default/bogus")).status, 404);
        assert_eq!(route(&s, &get("/pairs/default")).status, 404);
    }

    #[test]
    fn wrong_method_is_405_with_allow_header() {
        let s = state();
        for (path, allowed) in [
            ("/stats", "GET"),
            ("/healthz", "GET"),
            ("/sameas", "GET"),
            ("/pairs", "GET"),
            ("/pairs/default/stats", "GET"),
        ] {
            let mut req = get(path);
            req.method = "DELETE".into();
            let r = route(&s, &req);
            assert_eq!(r.status, 405, "{path}");
            assert_eq!(r.allow, Some(allowed), "{path}");
            assert_eq!(r.content_type, "application/json");
        }
        // POST-only routes advertise POST.
        let r = route(&s, &get("/reload"));
        assert_eq!(r.status, 405);
        assert_eq!(r.allow, Some("POST"));
        let r = route(&s, &get("/pairs/default/reload"));
        assert_eq!(r.status, 405);
        assert_eq!(r.allow, Some("POST"));
    }

    #[test]
    fn align_requires_paths() {
        let s = state();
        let mut post = get("/align");
        post.method = "POST".into();
        post.body = b"left=".to_vec();
        assert_eq!(route(&s, &post).status, 400);
    }

    #[test]
    fn disabled_jobs_refuse_align() {
        let mut s = state();
        s.jobs_enabled = false;
        let mut post = get("/align");
        post.method = "POST".into();
        post.body = b"left=a.snap&right=b.snap".to_vec();
        let r = route(&s, &post);
        assert_eq!(r.status, 403);
        assert_eq!(s.jobs.submitted(), 0);
        // Read-only routes keep working.
        assert_eq!(route(&s, &get("/healthz")).status, 200);
    }

    #[test]
    fn job_status_validation() {
        let s = state();
        assert_eq!(route(&s, &get("/jobs/abc")).status, 400);
        assert_eq!(route(&s, &get("/jobs/7")).status, 404);
    }

    fn post_reload(path: &str, body: &[u8]) -> Request {
        let mut req = get(path);
        req.method = "POST".into();
        req.body = body.to_vec();
        req
    }

    #[test]
    fn reload_without_source_needs_a_path() {
        let s = state();
        let r = route(&s, &post_reload("/reload", b""));
        assert_eq!(r.status, 400);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("'path' form field"), "{body}");
    }

    #[test]
    fn reload_swaps_snapshot_and_bumps_generation() {
        let dir = std::env::temp_dir().join("paris_server_reload_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.snap");
        tiny_snapshot().save(&path).unwrap();

        let s = state();
        let r = route(
            &s,
            &post_reload("/reload", format!("path={}", path.display()).as_bytes()),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"generation\":2"), "{body}");

        let stats = String::from_utf8(route(&s, &get("/stats")).body).unwrap();
        assert!(stats.contains("\"generation\":2"), "{stats}");
        assert!(stats.contains("\"reloads\":1"), "{stats}");
        let health = String::from_utf8(route(&s, &get("/healthz")).body).unwrap();
        assert!(health.contains("\"generation\":2"), "{health}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_uses_configured_source_without_a_path() {
        let dir = std::env::temp_dir().join("paris_server_reload_source_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.snap");
        tiny_snapshot().save(&path).unwrap();

        let s = state_with_pair(tiny_snapshot(), Some(path.clone()));
        assert_eq!(route(&s, &post_reload("/reload", b"")).status, 200);
        let pair = s.catalog.default_pair().unwrap();
        assert_eq!(pair.generation.load(Ordering::SeqCst), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_failure_keeps_current_snapshot() {
        let s = state();
        let r = route(
            &s,
            &post_reload("/reload", b"path=/definitely/not/here.snap"),
        );
        assert_eq!(r.status, 400);
        let pair = s.catalog.default_pair().unwrap();
        assert_eq!(pair.generation.load(Ordering::SeqCst), 1);
        // Queries still answer from the original image.
        assert_eq!(route(&s, &get("/sameas?iri=http://a/p1")).status, 200);
    }

    #[test]
    fn no_jobs_blocks_client_named_reload_paths_only() {
        let dir = std::env::temp_dir().join("paris_server_reload_nojobs_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.snap");
        tiny_snapshot().save(&path).unwrap();

        let mut s = state_with_pair(tiny_snapshot(), Some(path.clone()));
        s.jobs_enabled = false;
        // Explicit path: forbidden.
        let r = route(
            &s,
            &post_reload("/reload", format!("path={}", path.display()).as_bytes()),
        );
        assert_eq!(r.status, 403);
        // Re-checking the configured source: still allowed.
        assert_eq!(route(&s, &post_reload("/reload", b"")).status, 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn catalog_serves_pairs_lazily_with_independent_generations() {
        let dir = std::env::temp_dir().join("paris_server_catalog_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("alpha.snap");
        let b = dir.join("beta.snap");
        snapshot_of(2).save(&a).unwrap();
        MappedPairSnapshot::save_v2(&snapshot_of(4), &b).unwrap();

        let s = catalog_state(&[("alpha", &a), ("beta", &b)], None);
        // Nothing loaded yet.
        let listing = String::from_utf8(route(&s, &get("/pairs")).body).unwrap();
        assert!(listing.contains("\"default\":\"alpha\""), "{listing}");
        assert!(listing.contains("\"loaded\":false"), "{listing}");

        // First hits load lazily; v2 serves mapped.
        let r = route(&s, &get("/pairs/alpha/sameas?iri=http://a/p1"));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body));
        let r = route(&s, &get("/pairs/beta/sameas?iri=http://a/p3"));
        assert_eq!(r.status, 200);
        let beta_stats = String::from_utf8(route(&s, &get("/pairs/beta/stats")).body).unwrap();
        assert!(beta_stats.contains("\"format\":\"v2\""), "{beta_stats}");
        assert!(
            beta_stats.contains("\"aligned_instances\":4"),
            "{beta_stats}"
        );

        // Bare routes alias the default (alpha).
        let bare = String::from_utf8(route(&s, &get("/stats")).body).unwrap();
        assert!(bare.contains("\"pair\":\"alpha\""), "{bare}");

        // Per-pair reloads bump only their own generation.
        assert_eq!(
            route(&s, &post_reload("/pairs/beta/reload", b"")).status,
            200
        );
        assert_eq!(
            route(&s, &post_reload("/pairs/beta/reload", b"")).status,
            200
        );
        let alpha = s.catalog.pair("alpha").unwrap();
        let beta = s.catalog.pair("beta").unwrap();
        assert_eq!(alpha.generation.load(Ordering::SeqCst), 1);
        assert_eq!(beta.generation.load(Ordering::SeqCst), 3);
        assert_eq!(beta.reloads.load(Ordering::Relaxed), 2);

        // Unknown pair.
        assert_eq!(route(&s, &get("/pairs/nope/stats")).status, 404);
        // Catalog pairs reject client-named reload paths.
        let r = route(&s, &post_reload("/pairs/alpha/reload", b"path=/tmp/x.snap"));
        assert_eq!(r.status, 400);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_resident_evicts_lru_decoded_images_but_not_mapped() {
        let dir = std::env::temp_dir().join("paris_server_evict_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.snap");
        let b = dir.join("b.snap");
        let c = dir.join("c.snap");
        snapshot_of(2).save(&a).unwrap();
        snapshot_of(2).save(&b).unwrap();
        MappedPairSnapshot::save_v2(&snapshot_of(2), &c).unwrap();

        // Budget fits one decoded image at a time.
        let budget = std::fs::metadata(&a).unwrap().len() + 16;
        let s = catalog_state(&[("a", &a), ("b", &b), ("c", &c)], Some(budget));

        assert_eq!(
            route(&s, &get("/pairs/a/sameas?iri=http://a/p1")).status,
            200
        );
        assert!(s.catalog.pair("a").unwrap().current().is_some());

        // Loading b pushes the total over budget; a is the LRU victim.
        assert_eq!(
            route(&s, &get("/pairs/b/sameas?iri=http://a/p1")).status,
            200
        );
        assert!(
            s.catalog.pair("a").unwrap().current().is_none(),
            "a evicted"
        );
        assert!(s.catalog.pair("b").unwrap().current().is_some());

        // The mapped pair loads without evicting anything.
        assert_eq!(
            route(&s, &get("/pairs/c/sameas?iri=http://a/p1")).status,
            200
        );
        assert!(
            s.catalog.pair("b").unwrap().current().is_some(),
            "mapped load evicts nothing"
        );
        assert!(s.catalog.pair("c").unwrap().current().is_some());

        // An evicted pair transparently reloads on the next hit, with a
        // bumped generation (a fresh image was installed).
        assert_eq!(
            route(&s, &get("/pairs/a/sameas?iri=http://a/p1")).status,
            200
        );
        assert_eq!(
            s.catalog
                .pair("a")
                .unwrap()
                .generation
                .load(Ordering::SeqCst),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn get_with_inm(path: &str, etag: &str) -> Request {
        let mut req = get(path);
        req.headers
            .push(("if-none-match".to_owned(), etag.to_owned()));
        req
    }

    /// Extracts the quoted ETag value of a response.
    fn etag_of(r: &Response) -> String {
        r.etag.clone().expect("response should carry an ETag")
    }

    #[test]
    fn read_endpoints_carry_etags_and_honour_if_none_match() {
        let s = state();
        for path in [
            "/stats",
            "/sameas?iri=http://a/p1",
            "/neighbors?iri=http://a/p0",
            "/pairs/default/stats",
        ] {
            let first = route(&s, &get(path));
            assert_eq!(first.status, 200, "{path}");
            let etag = etag_of(&first);
            let second = route(&s, &get_with_inm(path, &etag));
            assert_eq!(second.status, 304, "{path}");
            assert!(second.body.is_empty(), "{path}: 304 must be body-less");
            assert_eq!(etag_of(&second), etag, "{path}");
            // A non-matching validator still gets the full body.
            let third = route(&s, &get_with_inm(path, "\"0000000000000000\""));
            assert_eq!(third.status, 200, "{path}");
            assert_eq!(third.body, first.body, "{path}");
        }
        // Errors are never cacheable.
        assert!(route(&s, &get("/sameas")).etag.is_none());
    }

    #[test]
    fn etag_changes_when_the_answer_changes() {
        let dir = std::env::temp_dir().join("paris_server_etag_swap_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.snap");
        snapshot_of(3).save(&path).unwrap();
        let s = state_with_pair(tiny_snapshot(), Some(path.clone()));
        let before = etag_of(&route(&s, &get("/stats")));
        snapshot_of(5).save(&path).unwrap();
        assert_eq!(route(&s, &post_reload("/reload", b"")).status, 200);
        let after = route(&s, &get_with_inm("/stats", &before));
        assert_eq!(after.status, 200, "stale validator must miss");
        assert_ne!(etag_of(&after), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_lists_file_backed_pairs_with_checksums() {
        let dir = std::env::temp_dir().join("paris_server_manifest_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("alpha.snap");
        let b = dir.join("beta.snap");
        snapshot_of(2).save(&a).unwrap();
        MappedPairSnapshot::save_v2(&snapshot_of(3), &b).unwrap();
        let s = catalog_state(&[("alpha", &a), ("beta", &b)], None);

        let r = route(&s, &get("/pairs/manifest"));
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body.clone()).unwrap();
        let sum_a = checksum_v2(&std::fs::read(&a).unwrap());
        let sum_b = checksum_v2(&std::fs::read(&b).unwrap());
        assert!(body.contains("\"name\":\"alpha\""), "{body}");
        assert!(
            body.contains(&format!("\"checksum\":\"{sum_a:016x}\"")),
            "{body}"
        );
        assert!(
            body.contains(&format!("\"checksum\":\"{sum_b:016x}\"")),
            "{body}"
        );
        assert!(body.contains("\"format\":1"), "{body}");
        assert!(body.contains("\"format\":2"), "{body}");
        // Not loaded yet: generation 0.
        assert!(body.contains("\"generation\":0"), "{body}");

        // The manifest itself is conditional.
        let etag = etag_of(&r);
        assert_eq!(
            route(&s, &get_with_inm("/pairs/manifest", &etag)).status,
            304
        );

        // A reload bumps the advertised generation (and the ETag).
        assert_eq!(
            route(&s, &post_reload("/pairs/alpha/reload", b"")).status,
            200
        );
        let r2 = route(&s, &get_with_inm("/pairs/manifest", &etag));
        assert_eq!(r2.status, 200, "generation bump must invalidate");
        assert!(String::from_utf8(r2.body)
            .unwrap()
            .contains("\"generation\":1"));

        // The replica-side parser accepts what the primary emits.
        let (entries, rejected) =
            paris_replica::sync::parse_manifest(&body).expect("manifest parses");
        assert!(rejected.is_empty(), "{rejected:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "alpha");
        assert_eq!(entries[0].checksum, Some(sum_a));
        assert_eq!(entries[1].format, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_route_streams_file_bytes_with_etag() {
        let dir = std::env::temp_dir().join("paris_server_snapstream_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("alpha.snap");
        snapshot_of(2).save(&a).unwrap();
        let file_bytes = std::fs::read(&a).unwrap();
        let s = catalog_state(&[("alpha", &a)], None);

        let r = route(&s, &get("/pairs/alpha/snapshot"));
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "application/octet-stream");
        let expected_etag = format!("\"{:016x}\"", checksum_v2(&file_bytes));
        assert_eq!(etag_of(&r), expected_etag);
        let (_, len) = r.stream.as_ref().expect("streams from the file");
        assert_eq!(*len, file_bytes.len() as u64);
        // The streamed wire bytes really are the file.
        let mut wire = Vec::new();
        r.write_to(&mut wire, false).unwrap();
        assert!(wire.ends_with(&file_bytes), "body is the raw snapshot");

        // Conditional fetch: unchanged pair costs zero body bytes.
        let r = route(&s, &get_with_inm("/pairs/alpha/snapshot", &expected_etag));
        assert_eq!(r.status, 304);
        assert!(r.stream.is_none() && r.body.is_empty());

        // Wrong method and unknown pair behave like the other pair ops.
        let mut del = get("/pairs/alpha/snapshot");
        del.method = "DELETE".into();
        assert_eq!(route(&s, &del).status, 405);
        assert_eq!(route(&s, &get("/pairs/nope/snapshot")).status, 404);
        // A pair with no backing file cannot be transferred.
        assert_eq!(route(&state(), &get("/pairs/default/snapshot")).status, 404);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_skips_unsafe_pair_names() {
        let dir = std::env::temp_dir().join("paris_server_scan_names_unit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "ok.snap",
            "also-ok.v2.snap",
            "bad name.snap",
            "manifest.snap",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        // A leading-dot file (hidden / temp-style).
        std::fs::write(dir.join(".partial.snap"), b"x").unwrap();
        let names: Vec<String> = scan_catalog_dir(&dir)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["also-ok.v2", "ok"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_resident_exact_limit_is_not_an_eviction() {
        let dir = std::env::temp_dir().join("paris_server_evict_exact_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.snap");
        let b = dir.join("b.snap");
        snapshot_of(2).save(&a).unwrap();
        snapshot_of(2).save(&b).unwrap();
        let (size_a, size_b) = (
            std::fs::metadata(&a).unwrap().len(),
            std::fs::metadata(&b).unwrap().len(),
        );

        // Budget exactly equal to both images: the total *fits*, nothing
        // may be evicted (the budget check is >, not >=).
        let s = catalog_state(&[("a", &a), ("b", &b)], Some(size_a + size_b));
        assert_eq!(
            route(&s, &get("/pairs/a/sameas?iri=http://a/p1")).status,
            200
        );
        assert_eq!(
            route(&s, &get("/pairs/b/sameas?iri=http://a/p1")).status,
            200
        );
        assert!(s.catalog.pair("a").unwrap().current().is_some());
        assert!(s.catalog.pair("b").unwrap().current().is_some());

        // One byte less, and the LRU pair goes.
        let s = catalog_state(&[("a", &a), ("b", &b)], Some(size_a + size_b - 1));
        assert_eq!(
            route(&s, &get("/pairs/a/sameas?iri=http://a/p1")).status,
            200
        );
        assert_eq!(
            route(&s, &get("/pairs/b/sameas?iri=http://a/p1")).status,
            200
        );
        assert!(
            s.catalog.pair("a").unwrap().current().is_none(),
            "a evicted"
        );
        assert!(s.catalog.pair("b").unwrap().current().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_resident_never_evicts_the_pair_just_served() {
        let dir = std::env::temp_dir().join("paris_server_evict_tiny_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.snap");
        snapshot_of(2).save(&a).unwrap();
        // A budget smaller than any single image: the pair answering the
        // current request is exempt, so requests still succeed.
        let s = catalog_state(&[("a", &a)], Some(1));
        for _ in 0..3 {
            assert_eq!(
                route(&s, &get("/pairs/a/sameas?iri=http://a/p1")).status,
                200
            );
        }
        assert!(s.catalog.pair("a").unwrap().current().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refault_after_evict_cycles_lru_correctly() {
        let dir = std::env::temp_dir().join("paris_server_evict_cycle_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.snap");
        let b = dir.join("b.snap");
        snapshot_of(2).save(&a).unwrap();
        snapshot_of(2).save(&b).unwrap();
        let budget = std::fs::metadata(&a).unwrap().len() + 16;
        let s = catalog_state(&[("a", &a), ("b", &b)], Some(budget));

        // a in, b in (a evicted), a refaults (b evicted), b refaults…
        // Each refault installs a fresh image and bumps the generation.
        for (hit, evicted) in [("a", ""), ("b", "a"), ("a", "b"), ("b", "a")] {
            assert_eq!(
                route(&s, &get(&format!("/pairs/{hit}/sameas?iri=http://a/p1"))).status,
                200
            );
            assert!(s.catalog.pair(hit).unwrap().current().is_some(), "{hit}");
            if !evicted.is_empty() {
                assert!(
                    s.catalog.pair(evicted).unwrap().current().is_none(),
                    "{evicted} should be the LRU victim after hitting {hit}"
                );
            }
        }
        assert_eq!(
            s.catalog
                .pair("a")
                .unwrap()
                .generation
                .load(Ordering::SeqCst),
            2
        );
        assert_eq!(
            s.catalog
                .pair("b")
                .unwrap()
                .generation
                .load(Ordering::SeqCst),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rescan_removing_the_loaded_default_pair_moves_the_default() {
        let dir = std::env::temp_dir().join("paris_server_rescan_default_unit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("alpha.snap");
        let b = dir.join("beta.snap");
        snapshot_of(2).save(&a).unwrap();
        snapshot_of(4).save(&b).unwrap();
        let s = catalog_state(&[("alpha", &a), ("beta", &b)], None);

        // alpha is the default and is *loaded* when its file vanishes.
        assert_eq!(route(&s, &get("/stats")).status, 200);
        assert!(s.catalog.pair("alpha").unwrap().current().is_some());
        std::fs::remove_file(&a).unwrap();
        rescan_catalog(&s.catalog, &dir);

        assert!(s.catalog.pair("alpha").is_none());
        assert_eq!(*s.catalog.default_name.read().unwrap(), "beta");
        // The removed pair 404s; bare routes now answer from beta.
        assert_eq!(route(&s, &get("/pairs/alpha/stats")).status, 404);
        let bare = route(&s, &get("/stats"));
        assert_eq!(bare.status, 200);
        assert!(String::from_utf8(bare.body)
            .unwrap()
            .contains("\"pair\":\"beta\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    // ------------------------------------------------------------------
    // The /v1 contract: envelope, aliases, batch, explain, pagination
    // ------------------------------------------------------------------

    fn post_json(path: &str, body: &str) -> Request {
        let mut req = get(path);
        req.method = "POST".into();
        req.body = body.as_bytes().to_vec();
        req
    }

    #[test]
    fn v1_and_legacy_routes_answer_identically_with_one_warning_header() {
        let s = state();
        for (legacy, v1) in [
            ("/healthz", "/v1/healthz"),
            ("/pairs", "/v1/pairs"),
            ("/stats", "/v1/pairs/default/stats"),
            (
                "/sameas?iri=http://a/p1",
                "/v1/pairs/default/sameas?iri=http://a/p1",
            ),
            (
                "/neighbors?iri=http://a/p0",
                "/v1/pairs/default/neighbors?iri=http://a/p0",
            ),
            ("/pairs/default/stats", "/v1/pairs/default/stats"),
        ] {
            let old = route(&s, &get(legacy));
            let new = route(&s, &get(v1));
            assert_eq!(old.status, 200, "{legacy}");
            assert_eq!(new.status, 200, "{v1}");
            // healthz bodies differ only in uptime; compare the rest.
            if !legacy.contains("healthz") {
                assert_eq!(old.body, new.body, "{legacy} vs {v1}");
            }
            // Exactly one deprecation warning, on the legacy spelling only.
            assert_eq!(
                old.extra_headers
                    .iter()
                    .filter(|(n, _)| *n == "Warning")
                    .count(),
                1,
                "{legacy}"
            );
            assert!(new.extra_headers.is_empty(), "{v1}");
        }
    }

    #[test]
    fn envelope_wraps_data_and_errors_on_both_namespaces() {
        let s = state();
        let ok = route(&s, &get("/v1/pairs/default/sameas?iri=http://a/p1"));
        let body = String::from_utf8(ok.body).unwrap();
        assert!(body.starts_with("{\"data\":{"), "{body}");

        for (req, status, code) in [
            (get("/v1/pairs/default/sameas"), 400, "bad_request"),
            (get("/v1/pairs/nope/stats"), 404, "not_found"),
            (get("/v1/nope"), 404, "not_found"),
            (get("/sameas"), 400, "bad_request"),
            (get("/nope"), 404, "not_found"),
            (
                post_reload("/v1/pairs/default/stats", b""),
                405,
                "method_not_allowed",
            ),
            (post_reload("/stats", b""), 405, "method_not_allowed"),
        ] {
            let r = route(&s, &req);
            assert_eq!(r.status, status, "{}", req.path);
            let body = String::from_utf8(r.body).unwrap();
            assert!(
                body.starts_with(&format!("{{\"error\":{{\"code\":\"{code}\"")),
                "{}: {body}",
                req.path
            );
        }
    }

    #[test]
    fn neighbors_paginates_with_a_hard_cap() {
        let s = state_with_pair(snapshot_of(1), None);
        // p0 has exactly one fact (the email literal).
        let one = |path: &str| {
            let r = route(&s, &get(path));
            assert_eq!(r.status, 200, "{path}");
            String::from_utf8(r.body).unwrap()
        };
        let full = one("/v1/pairs/default/neighbors?iri=http://a/p0");
        assert!(full.contains("\"total_facts\":1"), "{full}");
        assert!(full.contains("\"offset\":0"), "{full}");
        assert!(full.contains("p0@x.org"), "{full}");

        // An offset past the end yields an empty page, same totals.
        let past = one("/v1/pairs/default/neighbors?iri=http://a/p0&offset=5");
        assert!(past.contains("\"total_facts\":1"), "{past}");
        assert!(past.contains("\"facts\":[]"), "{past}");

        // The limit is clamped to the documented cap.
        let clamped = one("/v1/pairs/default/neighbors?iri=http://a/p0&limit=999999");
        assert!(
            clamped.contains(&format!("\"limit\":{NEIGHBORS_MAX_LIMIT}")),
            "{clamped}"
        );
        assert_eq!(
            route(
                &s,
                &get("/v1/pairs/default/neighbors?iri=http://a/p0&offset=x")
            )
            .status,
            400
        );
    }

    #[test]
    fn batch_answers_mixed_queries_from_one_image() {
        let s = state();
        let body = r#"{"queries":[
            {"op":"sameas","iri":"http://a/p1"},
            {"op":"neighbors","iri":"http://a/p0","limit":1},
            {"op":"sameas","iri":"http://a/nope"},
            {"op":"sameas","iri":"http://b/q2","side":"right"},
            {"op":"flarp","iri":"http://a/p1"}]}"#;
        let r = route(&s, &post_json("/v1/pairs/default/query", body));
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body));
        let text = String::from_utf8(r.body).unwrap();
        assert!(text.contains("\"count\":5"), "{text}");
        // Successful lookups answer in place…
        assert!(text.contains("http://b/q1"), "{text}");
        assert!(text.contains("http://a/p2"), "{text}");
        assert!(text.contains("\"total_facts\":1"), "{text}");
        // …and failures come back per-query without failing the batch.
        assert!(text.contains("\"code\":\"not_found\""), "{text}");
        assert!(text.contains("\"code\":\"bad_request\""), "{text}");

        // The batch answer equals the sequential answers, element-wise.
        let single = route(&s, &get("/v1/pairs/default/sameas?iri=http://a/p1"));
        let single = String::from_utf8(single.body).unwrap();
        let inner = single
            .strip_prefix("{\"data\":")
            .and_then(|s| s.strip_suffix('}'))
            .unwrap();
        assert!(text.contains(inner), "{text} should embed {inner}");
    }

    #[test]
    fn batch_rejects_malformed_bodies_and_oversized_batches() {
        let s = state();
        for body in ["", "not json", "{}", "{\"queries\":3}"] {
            let r = route(&s, &post_json("/v1/pairs/default/query", body));
            assert_eq!(r.status, 400, "{body:?}");
        }
        let many: Vec<String> = (0..MAX_BATCH_QUERIES + 1)
            .map(|_| "{\"op\":\"sameas\",\"iri\":\"http://a/p1\"}".to_owned())
            .collect();
        let r = route(
            &s,
            &post_json(
                "/v1/pairs/default/query",
                &format!("{{\"queries\":{}}}", json::array(many)),
            ),
        );
        assert_eq!(r.status, 400);
        assert!(
            String::from_utf8(r.body).unwrap().contains("cap"),
            "cap named"
        );
        // Wrong method gets a 405 with Allow.
        let r = route(&s, &get("/v1/pairs/default/query"));
        assert_eq!(r.status, 405);
        assert_eq!(r.allow, Some("POST"));
    }

    #[test]
    fn explain_reports_evidence_score_and_assignment() {
        let s = state();
        let r = route(
            &s,
            &get("/v1/pairs/default/explain?left=http://a/p1&right=http://b/q1"),
        );
        assert_eq!(r.status, 200, "{:?}", String::from_utf8(r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"assigned\":true"), "{body}");
        assert!(
            body.contains("\"relation_left\":\"http://a/email\""),
            "{body}"
        );
        assert!(body.contains("\"neighbor_left\":\"p1@x.org\""), "{body}");
        assert!(body.contains("\"evidence_count\":1"), "{body}");
        // The assignment member is byte-identical to the sameas answer.
        let sameas = route(&s, &get("/v1/pairs/default/sameas?iri=http://a/p1"));
        let sameas = String::from_utf8(sameas.body).unwrap();
        let inner = sameas
            .strip_prefix("{\"data\":")
            .and_then(|s| s.strip_suffix('}'))
            .unwrap();
        assert!(body.contains(inner), "{body} should embed {inner}");

        // A non-assigned candidate still explains (with weaker evidence).
        let weak = route(
            &s,
            &get("/v1/pairs/default/explain?left=http://a/p1&right=http://b/q2"),
        );
        assert_eq!(weak.status, 200);
        let weak = String::from_utf8(weak.body).unwrap();
        assert!(weak.contains("\"assigned\":false"), "{weak}");
        assert!(weak.contains("\"stored_score\":0"), "{weak}");

        // Parameter and lookup failures are structured.
        assert_eq!(route(&s, &get("/v1/pairs/default/explain")).status, 400);
        assert_eq!(
            route(
                &s,
                &get("/v1/pairs/default/explain?left=http://a/p1&right=x")
            )
            .status,
            404
        );
    }

    #[test]
    fn catalog_rescan_adds_and_removes_pairs() {
        let dir = std::env::temp_dir().join("paris_server_rescan_unit");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.snap");
        snapshot_of(2).save(&a).unwrap();

        let s = catalog_state(&[("a", &a)], None);
        // Pretend the state is catalog-backed for the rescan.
        let b = dir.join("b.snap");
        snapshot_of(2).save(&b).unwrap();
        rescan_catalog(&s.catalog, &dir);
        assert!(s.catalog.pair("b").is_some(), "new file discovered");

        std::fs::remove_file(&a).unwrap();
        rescan_catalog(&s.catalog, &dir);
        assert!(s.catalog.pair("a").is_none(), "vanished file dropped");
        // The default moved off the removed pair.
        assert_eq!(*s.catalog.default_name.read().unwrap(), "b".to_owned());
        std::fs::remove_dir_all(&dir).ok();
    }
}
