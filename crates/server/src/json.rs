//! Minimal JSON *emission* (the daemon never parses JSON — request inputs
//! arrive as query strings or form bodies, responses go out as JSON).

/// Escapes a string for inclusion in a JSON document, with quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/∞; clamp to null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Builder for a JSON object, keeping insertion order.
#[derive(Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Adds a pre-rendered JSON value.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = string(value);
        self.raw(key, rendered)
    }

    /// Adds a float field.
    pub fn num(self, key: &str, value: f64) -> Self {
        let rendered = number(value);
        self.raw(key, rendered)
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object.
    pub fn build(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// Renders a JSON array from pre-rendered values.
pub fn array(values: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("\u{1}"), r#""\u0001""#);
        assert_eq!(string("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_rendering() {
        let o = Object::new()
            .str("name", "x")
            .int("n", 3)
            .bool("ok", true)
            .num("p", 0.25);
        assert_eq!(o.build(), r#"{"name":"x","n":3,"ok":true,"p":0.25}"#);
    }

    #[test]
    fn array_rendering() {
        assert_eq!(array(vec!["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
