//! JSON for the daemon — a re-export of [`paris_client::json`], the
//! serving stack's one JSON implementation. The daemon renders every
//! response with the order-preserving [`Object`] builder and parses
//! exactly one input shape (the batch query body) with [`parse`].

pub use paris_client::json::*;
