//! Background alignment jobs.
//!
//! `POST /align` enqueues an alignment of two *single-KB* snapshot files;
//! the request returns immediately with a job id and the client polls
//! `GET /jobs/<id>`. Jobs run on a small capped pool of dedicated runner
//! threads (alignments are long-lived and must neither starve the
//! request workers nor multiply without bound), load both snapshots, run
//! PARIS, and optionally persist the result as an aligned-pair snapshot
//! ready for a future `paris serve`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use paris_core::{AlignedPairSnapshot, Aligner, AssignmentSketch, OwnedAlignment, ParisConfig};
use paris_kb::snapshot::load_kb;
use paris_obs::series::RunSeries;
use paris_obs::span::{Span, SpanCollector, SpanStore, TraceId};

use crate::runs::{RunHistory, RunOutcome};

/// Final statistics of a completed job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Assigned KB-1 instances in the final alignment.
    pub aligned_instances: usize,
    /// Iterations the run took.
    pub iterations: usize,
    /// Whether the run converged before the cap.
    pub converged: bool,
    /// Wall-clock seconds, including snapshot loading.
    pub seconds: f64,
    /// Where the aligned-pair snapshot was written, if requested.
    pub out_path: Option<String>,
}

/// Lifecycle of one job.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted, thread not yet running the alignment.
    Queued,
    /// Alignment in progress.
    Running,
    /// Finished successfully.
    Done(JobOutcome),
    /// Failed; the message is safe to return to the client.
    Failed(String),
}

impl JobState {
    /// Status label for the API.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Inputs of one alignment job.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Path to the left single-KB snapshot.
    pub left: String,
    /// Path to the right single-KB snapshot.
    pub right: String,
    /// Optional output path for the aligned-pair snapshot.
    pub out: Option<String>,
    /// Iteration cap override.
    pub max_iterations: Option<usize>,
}

/// Registry of all jobs submitted to this process.
///
/// Alignments are heavy (two full KBs in memory plus the fixed point), so
/// jobs do not get a thread each: they queue, and at most
/// [`MAX_CONCURRENT_JOBS`] lazily spawned runner threads drain the queue.
/// A flood of `POST /align` requests therefore costs queue entries, not
/// memory and cores.
pub struct JobStore {
    next_id: AtomicU64,
    states: Mutex<HashMap<u64, JobState>>,
    /// Terminal (done/failed) job ids, oldest first — evicted beyond
    /// [`MAX_RETAINED_JOBS`] so a long-lived daemon's memory stays bounded.
    terminal_order: Mutex<std::collections::VecDeque<u64>>,
    queue: Mutex<std::collections::VecDeque<(u64, JobRequest)>>,
    available: std::sync::Condvar,
    runners: AtomicU64,
    /// Where finished jobs drain their span trees (`None` in bare-store
    /// tests; the server hands in its `/v1/debug/traces` store).
    spans: Option<Arc<SpanStore>>,
    /// Live span collectors of *running* jobs, keyed by job id — what
    /// `GET /v1/jobs/<id>` renders as in-flight fixpoint progress.
    live: Mutex<HashMap<u64, Arc<SpanCollector>>>,
    /// Live per-iteration convergence series of *running* jobs, keyed
    /// by job id — the numeric companion to `live` (dirty counts,
    /// churn, score histograms per fixpoint iteration).
    live_series: Mutex<HashMap<u64, Arc<RunSeries>>>,
    /// Trace id of every job that has started, evicted with the job.
    trace_ids: Mutex<HashMap<u64, TraceId>>,
    /// Where finished jobs append their run record (`None` when the
    /// daemon runs without `--run-history`).
    runs: Option<Arc<RunHistory>>,
}

/// Upper bound on alignments running at once.
pub const MAX_CONCURRENT_JOBS: u64 = 2;

/// How many finished jobs stay pollable before the oldest are evicted.
pub const MAX_RETAINED_JOBS: usize = 256;

impl Default for JobStore {
    fn default() -> Self {
        JobStore {
            next_id: AtomicU64::new(0),
            states: Mutex::new(HashMap::new()),
            terminal_order: Mutex::new(std::collections::VecDeque::new()),
            queue: Mutex::new(std::collections::VecDeque::new()),
            available: std::sync::Condvar::new(),
            runners: AtomicU64::new(0),
            spans: None,
            live: Mutex::new(HashMap::new()),
            live_series: Mutex::new(HashMap::new()),
            trace_ids: Mutex::new(HashMap::new()),
            runs: None,
        }
    }
}

impl JobStore {
    /// An empty store.
    pub fn new() -> Self {
        JobStore::default()
    }

    /// An empty store that drains finished jobs' span trees into
    /// `spans` (a disabled store makes the drain a no-op).
    pub fn with_spans(spans: Arc<SpanStore>) -> Self {
        JobStore::with_observatory(spans, None)
    }

    /// [`with_spans`](Self::with_spans) plus an optional run history
    /// that finished jobs append their record to.
    pub fn with_observatory(spans: Arc<SpanStore>, runs: Option<Arc<RunHistory>>) -> Self {
        JobStore {
            spans: Some(spans),
            runs,
            ..JobStore::default()
        }
    }

    /// Enqueues a job; it runs as soon as a runner thread is free.
    pub fn submit(self: &Arc<Self>, request: JobRequest) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.states
            .lock()
            .expect("job lock")
            .insert(id, JobState::Queued);
        self.queue
            .lock()
            .expect("job queue lock")
            .push_back((id, request));
        self.available.notify_one();

        // Lazily grow the runner pool up to the cap. fetch_update retries
        // on contention, so two concurrent first submits spawn two
        // runners instead of racing one CAS and leaving the pool short.
        let grown = self
            .runners
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < MAX_CONCURRENT_JOBS).then_some(n + 1)
            });
        if let Ok(previous) = grown {
            let store = Arc::downgrade(self);
            std::thread::Builder::new()
                .name(format!("paris-align-runner-{previous}"))
                .spawn(move || runner_loop(store))
                .expect("spawning job runner thread");
        }
        id
    }

    /// Current state of a job.
    pub fn get(&self, id: u64) -> Option<JobState> {
        self.states.lock().expect("job lock").get(&id).cloned()
    }

    /// Number of jobs ever submitted.
    pub fn submitted(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Trace id of a job that has started running (survives completion
    /// until the job itself is evicted).
    pub fn trace_of(&self, id: u64) -> Option<TraceId> {
        self.trace_ids
            .lock()
            .map(|t| t.get(&id).copied())
            .unwrap_or_default()
    }

    /// Snapshot of a *running* job's spans (start-ordered), `None` once
    /// the job finished (its trace then lives in the span store).
    pub fn live_spans(&self, id: u64) -> Option<Vec<Span>> {
        let collector = self.live.lock().ok()?.get(&id).cloned()?;
        Some(collector.snapshot())
    }

    /// The per-iteration convergence series of a *running* job, `None`
    /// once the job finished (its summary then lives in the run
    /// history).
    pub fn live_series(&self, id: u64) -> Option<Arc<RunSeries>> {
        self.live_series.lock().ok()?.get(&id).cloned()
    }

    fn set(&self, id: u64, state: JobState) {
        let terminal = matches!(state, JobState::Done(_) | JobState::Failed(_));
        let mut states = self.states.lock().expect("job lock");
        states.insert(id, state);
        if terminal {
            let mut order = self.terminal_order.lock().expect("job order lock");
            order.push_back(id);
            while order.len() > MAX_RETAINED_JOBS {
                if let Some(evicted) = order.pop_front() {
                    states.remove(&evicted);
                    if let Ok(mut traces) = self.trace_ids.lock() {
                        traces.remove(&evicted);
                    }
                }
            }
        }
    }
}

/// Drains the job queue until the owning store is dropped.
fn runner_loop(store: std::sync::Weak<JobStore>) {
    loop {
        // Re-upgrade each round so runners die with the store.
        let Some(store) = store.upgrade() else { return };
        let next = {
            let mut queue = store.queue.lock().expect("job queue lock");
            match queue.pop_front() {
                Some(item) => Some(item),
                None => {
                    // Bounded wait, then drop the strong reference and
                    // re-check liveness from the top.
                    let (mut queue, _) = store
                        .available
                        .wait_timeout(queue, std::time::Duration::from_millis(500))
                        .expect("job queue lock");
                    queue.pop_front()
                }
            }
        };
        let Some((id, request)) = next else { continue };
        store.set(id, JobState::Running);
        // Every job is one trace: a root `align_job` span with
        // load/align/save children, buffered live (`GET /v1/jobs/<id>`
        // renders in-flight fixpoint progress from the collector) and
        // drained into the daemon's span store when the job finishes.
        let mut root = Span::begin("align_job", TraceId::random(), None);
        root.attr_int("job", id);
        let collector = Arc::new(SpanCollector::new(root.context()));
        if let Ok(mut traces) = store.trace_ids.lock() {
            traces.insert(id, root.trace);
        }
        if let Ok(mut live) = store.live.lock() {
            live.insert(id, Arc::clone(&collector));
        }
        let series = Arc::new(RunSeries::new());
        if let Ok(mut live) = store.live_series.lock() {
            live.insert(id, Arc::clone(&series));
        }
        let state = match run_job(&request, &collector, &series) {
            Ok((outcome, sketch)) => {
                if let Some(runs) = &store.runs {
                    runs.record(RunOutcome {
                        job: id,
                        pair: pair_name(&request.left, &request.right),
                        iterations: outcome.iterations as u64,
                        converged: outcome.converged,
                        aligned_instances: outcome.aligned_instances as u64,
                        seconds: outcome.seconds,
                        sketch,
                    });
                }
                JobState::Done(outcome)
            }
            Err(message) => JobState::Failed(message),
        };
        root.attr_str("status", state.label());
        collector.finish(root);
        if let Ok(mut live) = store.live.lock() {
            live.remove(&id);
        }
        if let Ok(mut live) = store.live_series.lock() {
            live.remove(&id);
        }
        if let Some(spans) = &store.spans {
            spans.absorb(&collector);
        }
        store.set(id, state);
    }
}

/// The pair name a job records its run under: the two snapshot file
/// stems joined with `+` — stable across daemon restarts and job ids,
/// which is what generation counting and drift comparison key on.
fn pair_name(left: &str, right: &str) -> String {
    let stem = |p: &str| {
        Path::new(p)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.to_owned())
    };
    format!("{}+{}", stem(left), stem(right))
}

fn run_job(
    request: &JobRequest,
    collector: &SpanCollector,
    series: &RunSeries,
) -> Result<(JobOutcome, AssignmentSketch), String> {
    let t0 = Instant::now();
    let mut load = collector.begin("load_snapshots");
    let kb1 = load_kb(&request.left).map_err(|e| format!("loading {}: {e}", request.left))?;
    let kb2 = load_kb(&request.right).map_err(|e| format!("loading {}: {e}", request.right))?;
    load.attr_int("entities_kb1", kb1.num_entities() as u64);
    load.attr_int("entities_kb2", kb2.num_entities() as u64);
    collector.finish(load);

    let mut config = ParisConfig::default();
    if let Some(cap) = request.max_iterations {
        config.max_iterations = cap.max(1);
    }
    // Trace every fixpoint iteration to the daemon's stderr as JSON
    // lines — a long batch job's progress (dirty set, churn, score
    // movement) is otherwise invisible until it finishes — record each
    // iteration's pass spans under the `align` span, and fill the live
    // per-iteration series `GET /v1/jobs/<id>` serves while we run.
    let mut align = collector.begin("align");
    let result = Aligner::new(&kb1, &kb2, config).run_observed(
        &paris_obs::trace::stderr_json(),
        collector,
        align.id,
        series,
    );
    let owned = OwnedAlignment::from_result(&result);
    let sketch = AssignmentSketch::of_result(&result);
    let outcome = JobOutcome {
        aligned_instances: result.instance_pairs().len(),
        iterations: result.iterations.len(),
        converged: result.converged(),
        seconds: t0.elapsed().as_secs_f64(),
        out_path: request.out.clone(),
    };
    drop(result);
    align.attr_int("iterations", outcome.iterations as u64);
    align.attr_int("aligned_instances", outcome.aligned_instances as u64);
    collector.finish(align);

    if let Some(out) = &request.out {
        let save = collector.begin("save_snapshot");
        let saved = AlignedPairSnapshot::new(kb1, kb2, owned)
            .save(out)
            .map_err(|e| format!("writing {out}: {e}"));
        collector.finish(save);
        saved?;
    }
    Ok((outcome, sketch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_kb::snapshot::save_kb;
    use paris_kb::KbBuilder;
    use paris_rdf::Literal;
    use std::time::Duration;

    fn tiny_kb(ns: &str) -> paris_kb::Kb {
        let mut b = KbBuilder::new(ns);
        for i in 0..4 {
            b.add_literal_fact(
                format!("http://{ns}/e{i}"),
                format!("http://{ns}/mail"),
                Literal::plain(format!("e{i}@x.org")),
            );
        }
        b.build()
    }

    fn wait_terminal(store: &Arc<JobStore>, id: u64) -> JobState {
        for _ in 0..600 {
            match store.get(id).expect("job exists") {
                JobState::Queued | JobState::Running => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                terminal => return terminal,
            }
        }
        panic!("job {id} did not finish");
    }

    #[test]
    fn job_aligns_two_kb_snapshots() {
        let dir = std::env::temp_dir().join("paris_jobs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let left = dir.join("left.snap");
        let right = dir.join("right.snap");
        let out = dir.join("pair.snap");
        save_kb(&tiny_kb("a"), &left).unwrap();
        save_kb(&tiny_kb("b"), &right).unwrap();

        let store = Arc::new(JobStore::new());
        let id = store.submit(JobRequest {
            left: left.to_string_lossy().into_owned(),
            right: right.to_string_lossy().into_owned(),
            out: Some(out.to_string_lossy().into_owned()),
            max_iterations: Some(3),
        });
        match wait_terminal(&store, id) {
            JobState::Done(outcome) => {
                assert_eq!(outcome.aligned_instances, 4);
                assert!(outcome.out_path.is_some());
            }
            other => panic!("unexpected state {other:?}"),
        }
        let pair = AlignedPairSnapshot::load(&out).unwrap();
        assert_eq!(pair.alignment.instance_pairs(&pair.kb1).len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flood_of_jobs_drains_through_capped_runners() {
        let dir = std::env::temp_dir().join("paris_jobs_flood_test");
        std::fs::create_dir_all(&dir).unwrap();
        let left = dir.join("left.snap");
        let right = dir.join("right.snap");
        save_kb(&tiny_kb("a"), &left).unwrap();
        save_kb(&tiny_kb("b"), &right).unwrap();

        let store = Arc::new(JobStore::new());
        let ids: Vec<u64> = (0..10)
            .map(|_| {
                store.submit(JobRequest {
                    left: left.to_string_lossy().into_owned(),
                    right: right.to_string_lossy().into_owned(),
                    out: None,
                    max_iterations: Some(2),
                })
            })
            .collect();
        // At most MAX_CONCURRENT_JOBS runner threads ever exist…
        assert!(store.runners.load(Ordering::Relaxed) <= MAX_CONCURRENT_JOBS);
        // …and every queued job still reaches a terminal state.
        for id in ids {
            match wait_terminal(&store, id) {
                JobState::Done(outcome) => assert_eq!(outcome.aligned_instances, 4),
                other => panic!("job {id}: unexpected state {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_fails_with_path_in_message() {
        let store = Arc::new(JobStore::new());
        let id = store.submit(JobRequest {
            left: "/nonexistent/left.snap".into(),
            right: "/nonexistent/right.snap".into(),
            out: None,
            max_iterations: None,
        });
        match wait_terminal(&store, id) {
            JobState::Failed(msg) => assert!(msg.contains("/nonexistent/left.snap"), "{msg}"),
            other => panic!("unexpected state {other:?}"),
        }
        assert_eq!(store.submitted(), 1);
        assert!(store.get(999).is_none());
    }
}
