//! Persisted run history — the durable half of the alignment
//! observatory.
//!
//! When the daemon is started with `paris serve --run-history FILE`,
//! every completed align job appends one JSON line to `FILE`: the pair
//! name, a monotonically increasing *generation* (per pair), the
//! outcome counters, and a bottom-k sketch of the final instance
//! assignment. On startup the file is read back, so `GET
//! /v1/debug/runs` keeps serving the full history across restarts.
//!
//! The sketch is what makes the history more than a log: each new run
//! is compared against the *previous generation of the same pair*, and
//! when the estimated assignment agreement falls below
//! [`DRIFT_AGREEMENT`] the record
//! is flagged `drift: true` — the alignment moved more than the
//! threshold between two runs that an operator probably expected to be
//! equivalent. Agreement is exact while assignments fit the sketch and
//! a bottom-k estimate (±1/√k) beyond; see
//! [`AssignmentSketch`].
//!
//! Sketch hashes are 64-bit and JSON numbers are doubles, so the
//! sketch is persisted as one fixed-width hex string (16 chars per
//! hash) — exact, compact, and order-preserving.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use paris_core::quality::DRIFT_AGREEMENT;
use paris_core::AssignmentSketch;

use crate::json::{self, Json};

/// One completed align job, as recorded in the history file.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Job id the run executed as (ids restart with the daemon, so
    /// `(pair, generation)` is the stable key, not this).
    pub job: u64,
    /// Pair name, derived from the input snapshot file stems.
    pub pair: String,
    /// 1-based count of recorded runs of this pair, including this one.
    pub generation: u64,
    /// Fixpoint iterations the run took.
    pub iterations: u64,
    /// Whether the run converged before its iteration cap.
    pub converged: bool,
    /// Assigned KB-1 instances in the final alignment.
    pub aligned_instances: u64,
    /// Wall-clock run time.
    pub seconds: f64,
    /// Estimated assignment agreement with the previous generation of
    /// the same pair; `None` for generation 1.
    pub agreement: Option<f64>,
    /// `true` when `agreement` fell below the drift threshold.
    pub drift: bool,
    /// Milliseconds since the Unix epoch when the run was recorded.
    pub recorded_unix_ms: u64,
    /// Bottom-k sketch of the final instance assignment.
    sketch: AssignmentSketch,
}

impl RunRecord {
    /// The record as served by `GET /v1/debug/runs` — everything but
    /// the raw sketch hashes (kilobytes per record that only matter for
    /// the *next* run's comparison).
    pub fn api_json(&self) -> String {
        let agreement = match self.agreement {
            Some(a) => json::number(a),
            None => "null".to_owned(),
        };
        json::Object::new()
            .int("job", self.job)
            .str("pair", &self.pair)
            .int("generation", self.generation)
            .int("iterations", self.iterations)
            .bool("converged", self.converged)
            .int("aligned_instances", self.aligned_instances)
            .num("seconds", self.seconds)
            .raw("agreement", agreement)
            .bool("drift", self.drift)
            .int("sketch_size", self.sketch.size())
            .int("recorded_unix_ms", self.recorded_unix_ms)
            .build()
    }

    /// The record as one history-file line: [`api_json`](Self::api_json)
    /// plus the sketch itself, hex-encoded.
    fn file_json(&self) -> String {
        let agreement = match self.agreement {
            Some(a) => json::number(a),
            None => "null".to_owned(),
        };
        let mut hex = String::with_capacity(self.sketch.hashes().len() * 16);
        for h in self.sketch.hashes() {
            hex.push_str(&format!("{h:016x}"));
        }
        json::Object::new()
            .int("job", self.job)
            .str("pair", &self.pair)
            .int("generation", self.generation)
            .int("iterations", self.iterations)
            .bool("converged", self.converged)
            .int("aligned_instances", self.aligned_instances)
            .num("seconds", self.seconds)
            .raw("agreement", agreement)
            .bool("drift", self.drift)
            .int("sketch_size", self.sketch.size())
            .str("sketch", &hex)
            .int("recorded_unix_ms", self.recorded_unix_ms)
            .build()
    }

    /// Parses one history-file line back into a record.
    fn from_line(line: &str) -> Option<RunRecord> {
        let v = json::parse(line).ok()?;
        let hex = v.get("sketch").and_then(Json::as_str)?;
        if hex.len() % 16 != 0 || !hex.is_ascii() {
            return None;
        }
        let mut hashes = Vec::with_capacity(hex.len() / 16);
        for chunk in hex.as_bytes().chunks(16) {
            let s = std::str::from_utf8(chunk).ok()?;
            hashes.push(u64::from_str_radix(s, 16).ok()?);
        }
        let size = v.get("sketch_size").and_then(Json::as_u64)?;
        Some(RunRecord {
            job: v.get("job").and_then(Json::as_u64)?,
            pair: v.get("pair").and_then(Json::as_str)?.to_owned(),
            generation: v.get("generation").and_then(Json::as_u64)?,
            iterations: v.get("iterations").and_then(Json::as_u64)?,
            converged: v.get("converged").and_then(Json::as_bool)?,
            aligned_instances: v.get("aligned_instances").and_then(Json::as_u64)?,
            seconds: v.get("seconds").and_then(Json::as_f64)?,
            agreement: v.get("agreement").and_then(Json::as_f64),
            drift: v.get("drift").and_then(Json::as_bool)?,
            recorded_unix_ms: v
                .get("recorded_unix_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            sketch: AssignmentSketch::from_parts(size, hashes),
        })
    }
}

/// The outcome fields a finished job contributes to its record (the
/// history computes generation, agreement, and drift itself).
pub struct RunOutcome {
    /// Job id.
    pub job: u64,
    /// Pair name.
    pub pair: String,
    /// Fixpoint iterations.
    pub iterations: u64,
    /// Whether the run converged.
    pub converged: bool,
    /// Assigned KB-1 instances.
    pub aligned_instances: u64,
    /// Wall-clock run time.
    pub seconds: f64,
    /// Sketch of the final instance assignment.
    pub sketch: AssignmentSketch,
}

/// Append-only run history: an in-memory record list mirrored to a
/// JSONL file, reloaded on open.
pub struct RunHistory {
    path: PathBuf,
    inner: Mutex<Inner>,
}

struct Inner {
    records: Vec<RunRecord>,
    file: File,
}

impl RunHistory {
    /// Opens (creating if absent) a history file and loads its records.
    /// Unparseable lines — e.g. a torn final line after a crash mid-
    /// append — are skipped rather than poisoning the whole file.
    pub fn open(path: &Path) -> std::io::Result<RunHistory> {
        let mut records = Vec::new();
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                if let Some(record) = RunRecord::from_line(&line) {
                    records.push(record);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RunHistory {
            path: path.to_owned(),
            inner: Mutex::new(Inner { records, file }),
        })
    }

    /// The file the history persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records one completed run: assigns its generation, compares its
    /// sketch against the previous generation of the same pair, appends
    /// the line to the file, and returns the finished record.
    pub fn record(&self, outcome: RunOutcome) -> RunRecord {
        // Generation numbering requires the append to happen under the
        // same lock that orders records — releasing it first could
        // audit:allow(no-lock-across-call): interleave two runs' lines
        let mut inner = self.inner.lock().expect("run history lock poisoned");
        let previous = inner.records.iter().rfind(|r| r.pair == outcome.pair);
        let generation = previous.map_or(1, |r| r.generation + 1);
        let agreement = previous.map(|r| r.sketch.agreement(&outcome.sketch));
        let drift = agreement.is_some_and(|a| a < DRIFT_AGREEMENT);
        let recorded_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let record = RunRecord {
            job: outcome.job,
            pair: outcome.pair,
            generation,
            iterations: outcome.iterations,
            converged: outcome.converged,
            aligned_instances: outcome.aligned_instances,
            seconds: outcome.seconds,
            agreement,
            drift,
            recorded_unix_ms,
            sketch: outcome.sketch,
        };
        // Best-effort append: a full disk loses persistence, not the
        // in-memory record (and not the serving thread).
        let line = record.file_json();
        let _ = writeln!(inner.file, "{line}");
        let _ = inner.file.flush();
        inner.records.push(record.clone());
        record
    }

    /// All records, oldest first.
    pub fn records(&self) -> Vec<RunRecord> {
        self.inner
            .lock()
            .expect("run history lock poisoned")
            .records
            .clone()
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("run history lock poisoned")
            .records
            .len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(pairs: &[(&str, &str)]) -> AssignmentSketch {
        AssignmentSketch::from_pairs(pairs.iter().copied())
    }

    fn outcome(job: u64, pair: &str, sketch: AssignmentSketch) -> RunOutcome {
        RunOutcome {
            job,
            pair: pair.to_owned(),
            iterations: 3,
            converged: true,
            aligned_instances: 10,
            seconds: 0.25,
            sketch,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paris-runs-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("history.jsonl")
    }

    #[test]
    fn generations_count_per_pair_and_survive_reopen() {
        let path = temp_path("generations");
        let _ = std::fs::remove_file(&path);
        let sketch = sketch_of(&[("a", "x"), ("b", "y")]);
        {
            let history = RunHistory::open(&path).unwrap();
            let first = history.record(outcome(1, "alpha", sketch.clone()));
            assert_eq!(first.generation, 1);
            assert_eq!(first.agreement, None);
            assert!(!first.drift);
            let other = history.record(outcome(2, "beta", sketch.clone()));
            assert_eq!(other.generation, 1, "generations count per pair");
        }
        // Reopen: records reload from the file, and the next run of
        // `alpha` continues its generation sequence with agreement 1.0.
        let history = RunHistory::open(&path).unwrap();
        assert_eq!(history.len(), 2);
        let again = history.record(outcome(7, "alpha", sketch));
        assert_eq!(again.generation, 2);
        assert_eq!(again.agreement, Some(1.0));
        assert!(!again.drift);
    }

    #[test]
    fn drift_flags_a_changed_assignment() {
        let path = temp_path("drift");
        let _ = std::fs::remove_file(&path);
        let history = RunHistory::open(&path).unwrap();
        let base: Vec<(String, String)> = (0..100)
            .map(|i| (format!("L{i}"), format!("R{i}")))
            .collect();
        let first = sketch_of(
            &base
                .iter()
                .map(|(l, r)| (l.as_str(), r.as_str()))
                .collect::<Vec<_>>(),
        );
        // Ten of a hundred assignments change: agreement 0.90 < 0.95.
        let moved: Vec<(String, String)> = base
            .iter()
            .enumerate()
            .map(|(i, (l, r))| {
                if i < 10 {
                    (l.clone(), format!("{r}-moved"))
                } else {
                    (l.clone(), r.clone())
                }
            })
            .collect();
        let second = sketch_of(
            &moved
                .iter()
                .map(|(l, r)| (l.as_str(), r.as_str()))
                .collect::<Vec<_>>(),
        );
        history.record(outcome(1, "alpha", first));
        let record = history.record(outcome(2, "alpha", second));
        assert!(record.agreement.unwrap() < DRIFT_AGREEMENT);
        assert!(record.drift);
    }

    #[test]
    fn torn_final_line_is_skipped_on_reload() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let history = RunHistory::open(&path).unwrap();
            history.record(outcome(1, "alpha", sketch_of(&[("a", "x")])));
        }
        // Simulate a crash mid-append: a partial line at the tail.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{{\"job\":9,\"pair\":\"al").unwrap();
        drop(file);
        let history = RunHistory::open(&path).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history.records()[0].pair, "alpha");
    }

    #[test]
    fn file_lines_round_trip_the_sketch_exactly() {
        let sketch = sketch_of(&[("a", "x"), ("b", "y"), ("c", "z")]);
        let record = RunRecord {
            job: 4,
            pair: "p".to_owned(),
            generation: 2,
            iterations: 5,
            converged: false,
            aligned_instances: 3,
            seconds: 1.5,
            agreement: Some(0.875),
            drift: true,
            recorded_unix_ms: 1_700_000_000_000,
            sketch: sketch.clone(),
        };
        let back = RunRecord::from_line(&record.file_json()).unwrap();
        assert_eq!(back.sketch, sketch);
        assert_eq!(back.generation, 2);
        assert_eq!(back.agreement, Some(0.875));
        assert!(back.drift);
        // The API rendering omits the sketch but keeps its size.
        let api = back.api_json();
        assert!(!api.contains("\"sketch\""));
        assert!(api.contains("\"sketch_size\":3"));
    }
}
