//! Relation-alignment evaluation (paper §6.1, §6.4).
//!
//! "For relation assignments, we performed a manual evaluation. Since
//! PARIS computes sub-relations, we evaluated the assignments in each
//! direction. … We consider only the maximally assigned relation." Our
//! generators know the true relation correspondences, so the "manual"
//! judgment is mechanized: a predicted inclusion `r ⊆ r′` is correct iff
//! the gold standard lists `(base(r), base(r′))` with the same direction
//! parity (an `inverted` gold entry expects `r` to align to `r′⁻¹`).

use paris_core::AlignmentResult;
use paris_datagen::{GoldStandard, RelationGold};
use paris_kb::{FxHashSet, Kb, RelationId};

use crate::metrics::Counts;

/// Outcome of evaluating one direction of relation alignment.
#[derive(Clone, Debug, Default)]
pub struct RelationEval {
    /// Standard counts: predictions judged against the gold.
    pub counts: Counts,
    /// The predicted top-1 alignments that were evaluated:
    /// `(sub display, sup display, score, correct)`.
    pub judged: Vec<(String, String, f64, bool)>,
}

impl RelationEval {
    /// Number of evaluated (maximally assigned) relations — the paper's
    /// "Num" column.
    pub fn num(&self) -> usize {
        self.judged.len()
    }
}

/// Gold key: `(sub base IRI, sup base IRI, parity)`.
fn gold_set(entries: &[RelationGold]) -> FxHashSet<(String, String, bool)> {
    entries
        .iter()
        .map(|g| {
            (
                g.sub.as_str().to_owned(),
                g.sup.as_str().to_owned(),
                g.inverted,
            )
        })
        .collect()
}

/// The set of base sub-relation IRIs the gold covers (only these are
/// judged; relations without a gold counterpart are skipped, like the
/// paper's "not all relations have a counterpart in the other ontology").
fn covered(entries: &[RelationGold]) -> FxHashSet<String> {
    entries.iter().map(|g| g.sub.as_str().to_owned()).collect()
}

fn eval_direction(
    src: &Kb,
    dst: &Kb,
    alignments: impl Iterator<Item = (RelationId, RelationId, f64)>,
    gold_entries: &[RelationGold],
) -> RelationEval {
    let gold = gold_set(gold_entries);
    let covered_subs = covered(gold_entries);

    // Top-1 per *forward* source relation (r and r⁻¹ carry mirrored
    // information; judging both would double-count).
    let mut best: paris_kb::FxHashMap<RelationId, (RelationId, f64)> =
        paris_kb::FxHashMap::default();
    for (r, r2, p) in alignments {
        let (key, target) = if r.is_inverse() {
            (r.inverse(), r2.inverse())
        } else {
            (r, r2)
        };
        let entry = best.entry(key).or_insert((target, p));
        if p > entry.1 {
            *entry = (target, p);
        }
    }

    let mut eval = RelationEval::default();
    let mut matched_gold: FxHashSet<(String, String, bool)> = FxHashSet::default();
    let mut sorted: Vec<_> = best.into_iter().collect();
    sorted.sort_by_key(|&(r, _)| r);
    for (r, (r2, p)) in sorted {
        let sub_iri = src.relation_iri(r).as_str().to_owned();
        if !covered_subs.contains(&sub_iri) {
            continue;
        }
        let sup_iri = dst.relation_iri(r2).as_str().to_owned();
        let key = (sub_iri, sup_iri, r2.is_inverse());
        let correct = gold.contains(&key);
        if correct {
            matched_gold.insert(key);
            eval.counts.true_positives += 1;
        } else {
            eval.counts.false_positives += 1;
        }
        eval.judged.push((
            src.relation_display(r),
            dst.relation_display(r2),
            p,
            correct,
        ));
    }
    // Recall: each distinct gold sub-relation counts once — several gold
    // rows may share a sub (created → author/composer/director); a correct
    // top-1 against any of them satisfies it.
    let matched_subs: FxHashSet<&str> = matched_gold.iter().map(|(s, _, _)| s.as_str()).collect();
    let all_subs: FxHashSet<&str> = gold_entries.iter().map(|g| g.sub.as_str()).collect();
    eval.counts.false_negatives = all_subs
        .iter()
        .filter(|s| !matched_subs.contains(**s))
        .count();
    eval.judged
        .sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    eval
}

/// Evaluates both directions of the relation alignment.
pub fn evaluate_relations(
    result: &AlignmentResult<'_>,
    gold: &GoldStandard,
) -> (RelationEval, RelationEval) {
    let one = eval_direction(
        result.kb1,
        result.kb2,
        result.subrelations.alignments_1to2(),
        &gold.relations_1to2,
    );
    let two = eval_direction(
        result.kb2,
        result.kb1,
        result.subrelations.alignments_2to1(),
        &gold.relations_2to1,
    );
    (one, two)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_core::{Aligner, ParisConfig};
    use paris_datagen::persons::{generate, PersonsConfig};

    #[test]
    fn clean_persons_relations_align_perfectly() {
        let pair = generate(&PersonsConfig {
            num_persons: 60,
            ..Default::default()
        });
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let (one, two) = evaluate_relations(&result, &pair.gold);
        assert_eq!(one.counts.precision(), 1.0, "{:?}", one.judged);
        assert_eq!(one.counts.recall(), 1.0, "{:?}", one.judged);
        assert_eq!(two.counts.precision(), 1.0, "{:?}", two.judged);
        assert!(one.num() >= 7, "all 7 relations judged: {}", one.num());
    }

    #[test]
    fn judged_list_is_sorted_by_score() {
        let pair = generate(&PersonsConfig {
            num_persons: 30,
            ..Default::default()
        });
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let (one, _) = evaluate_relations(&result, &pair.gold);
        for w in one.judged.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }
}
