//! Class-alignment evaluation and threshold curves (paper §6.4,
//! Figures 1–2).
//!
//! The paper samples class assignments above a probability threshold and
//! judges them manually; precision rises with the threshold (Figure 1)
//! while the number of aligned classes falls (Figure 2). Our generators
//! enumerate the true class inclusions, so judging is mechanical. As in
//! the paper, evaluation "excluded high-level classes": gold entries list
//! only meaningful targets, and predictions for source classes the gold
//! does not cover are skipped rather than counted as wrong.

use paris_core::{AlignmentResult, ClassScore};
use paris_datagen::GoldStandard;
use paris_kb::{EntityId, FxHashMap, FxHashSet, Kb};

use crate::metrics::Counts;

/// One point of the Figure-1/Figure-2 curves.
#[derive(Clone, Debug, PartialEq)]
pub struct ThresholdPoint {
    /// Probability threshold.
    pub threshold: f64,
    /// Precision of assignments scoring at least the threshold.
    pub precision: f64,
    /// Assignments at or above the threshold.
    pub assignments: usize,
    /// Distinct source classes with at least one assignment ≥ threshold.
    pub classes_with_assignment: usize,
}

fn gold_pairs(
    kb_sub: &Kb,
    kb_sup: &Kb,
    entries: &[(paris_rdf::Iri, paris_rdf::Iri)],
) -> (FxHashSet<(EntityId, EntityId)>, FxHashSet<EntityId>) {
    let mut pairs = FxHashSet::default();
    let mut covered = FxHashSet::default();
    for (sub, sup) in entries {
        if let (Some(c1), Some(c2)) = (
            kb_sub.entity_by_iri(sub.as_str()),
            kb_sup.entity_by_iri(sup.as_str()),
        ) {
            pairs.insert((c1, c2));
            covered.insert(c1);
        }
    }
    (pairs, covered)
}

fn judge(
    scores: &[ClassScore],
    pairs: &FxHashSet<(EntityId, EntityId)>,
    covered: &FxHashSet<EntityId>,
    threshold: f64,
) -> Counts {
    let mut counts = Counts::default();
    for s in scores {
        if s.prob < threshold || !covered.contains(&s.sub) {
            continue;
        }
        if pairs.contains(&(s.sub, s.sup)) {
            counts.true_positives += 1;
        } else {
            counts.false_positives += 1;
        }
    }
    // Recall basis: gold pairs never predicted above the threshold.
    let predicted: FxHashSet<(EntityId, EntityId)> = scores
        .iter()
        .filter(|s| s.prob >= threshold)
        .map(|s| (s.sub, s.sup))
        .collect();
    counts.false_negatives = pairs.iter().filter(|p| !predicted.contains(p)).count();
    counts
}

/// Evaluates the KB1 → KB2 class alignment at one threshold.
pub fn evaluate_classes_1to2(
    result: &AlignmentResult<'_>,
    gold: &GoldStandard,
    threshold: f64,
) -> Counts {
    let (pairs, covered) = gold_pairs(result.kb1, result.kb2, &gold.classes_1to2);
    judge(&result.classes.one_to_two, &pairs, &covered, threshold)
}

/// Evaluates the KB2 → KB1 class alignment at one threshold.
pub fn evaluate_classes_2to1(
    result: &AlignmentResult<'_>,
    gold: &GoldStandard,
    threshold: f64,
) -> Counts {
    let (pairs, covered) = gold_pairs(result.kb2, result.kb1, &gold.classes_2to1);
    judge(&result.classes.two_to_one, &pairs, &covered, threshold)
}

/// The Figure-1 + Figure-2 sweep: precision and class counts for each
/// threshold, KB1 → KB2.
pub fn threshold_curve(
    result: &AlignmentResult<'_>,
    gold: &GoldStandard,
    thresholds: &[f64],
) -> Vec<ThresholdPoint> {
    let (pairs, covered) = gold_pairs(result.kb1, result.kb2, &gold.classes_1to2);
    thresholds
        .iter()
        .map(|&t| {
            let counts = judge(&result.classes.one_to_two, &pairs, &covered, t);
            let mut classes: FxHashMap<EntityId, ()> = FxHashMap::default();
            let mut assignments = 0usize;
            for s in &result.classes.one_to_two {
                if s.prob >= t {
                    assignments += 1;
                    classes.insert(s.sub, ());
                }
            }
            ThresholdPoint {
                threshold: t,
                precision: counts.precision(),
                assignments,
                classes_with_assignment: classes.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_core::{Aligner, ParisConfig};
    use paris_datagen::persons::{generate, PersonsConfig};

    fn aligned_pair() -> (paris_datagen::DatasetPair, Counts, Counts) {
        let pair = generate(&PersonsConfig {
            num_persons: 50,
            ..Default::default()
        });
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let c12 = evaluate_classes_1to2(&result, &pair.gold, 0.4);
        let c21 = evaluate_classes_2to1(&result, &pair.gold, 0.4);
        (pair, c12, c21)
    }

    #[test]
    fn clean_persons_classes_align() {
        let (_, c12, c21) = aligned_pair();
        assert_eq!(c12.precision(), 1.0, "{c12:?}");
        assert_eq!(c12.recall(), 1.0, "{c12:?}");
        assert_eq!(c21.precision(), 1.0, "{c21:?}");
    }

    #[test]
    fn curve_is_monotone_in_counts() {
        let pair = generate(&PersonsConfig {
            num_persons: 50,
            ..Default::default()
        });
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let curve = threshold_curve(&result, &pair.gold, &[0.1, 0.3, 0.5, 0.7, 0.9]);
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(
                w[0].assignments >= w[1].assignments,
                "counts fall as threshold rises"
            );
            assert!(w[0].classes_with_assignment >= w[1].classes_with_assignment);
        }
    }

    #[test]
    fn impossible_threshold_yields_nothing() {
        let pair = generate(&PersonsConfig {
            num_persons: 20,
            ..Default::default()
        });
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let curve = threshold_curve(&result, &pair.gold, &[1.01]);
        assert_eq!(curve[0].assignments, 0);
        assert_eq!(curve[0].classes_with_assignment, 0);
    }
}
