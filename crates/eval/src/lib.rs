//! Evaluation harness for the PARIS reproduction (paper §6.1).
//!
//! Computes precision / recall / F-measure of instance, relation, and
//! class alignments against the generators' gold standards; produces the
//! per-iteration tables (Tables 3, 5) and the class-threshold curves
//! (Figures 1, 2).
//!
//! The paper evaluated relations and classes *manually*; here the
//! generators know the latent world, so the same judgments are mechanical
//! — see [`relations`] and [`classes`] for exactly how predictions are
//! judged.

#![forbid(unsafe_code)]

pub mod classes;
pub mod instances;
pub mod metrics;
pub mod relations;
pub mod report;

pub use classes::{evaluate_classes_1to2, evaluate_classes_2to1, threshold_curve, ThresholdPoint};
pub use instances::{evaluate_instances, evaluate_instances_min_facts};
pub use metrics::Counts;
pub use relations::{evaluate_relations, RelationEval};
pub use report::{alignment_list, iteration_table, IterationRow};
