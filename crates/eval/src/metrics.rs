//! Precision / recall / F-measure (paper §6.1).

/// Counted outcomes of comparing predictions against a gold standard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Predictions that match the gold standard.
    pub true_positives: usize,
    /// Predictions that contradict the gold standard.
    pub false_positives: usize,
    /// Gold pairs with no (correct) prediction.
    pub false_negatives: usize,
}

impl Counts {
    /// Creates counts directly.
    pub fn new(true_positives: usize, false_positives: usize, false_negatives: usize) -> Self {
        Counts {
            true_positives,
            false_positives,
            false_negatives,
        }
    }

    /// `tp / (tp + fp)`; defined as 1 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let predicted = self.true_positives + self.false_positives;
        if predicted == 0 {
            1.0
        } else {
            self.true_positives as f64 / predicted as f64
        }
    }

    /// `tp / (tp + fn)`; defined as 1 when the gold standard is empty.
    pub fn recall(&self) -> f64 {
        let gold = self.true_positives + self.false_negatives;
        if gold == 0 {
            1.0
        } else {
            self.true_positives as f64 / gold as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges two counts (e.g. both alignment directions, as the paper
    /// accumulates class and relation numbers "for both directions").
    #[must_use]
    pub fn merged(&self, other: &Counts) -> Counts {
        Counts {
            true_positives: self.true_positives + other.true_positives,
            false_positives: self.false_positives + other.false_positives,
            false_negatives: self.false_negatives + other.false_negatives,
        }
    }

    /// `"P=xx.x% R=xx.x% F=xx.x%"` for reports.
    pub fn summary(&self) -> String {
        format!(
            "P={:5.1}% R={:5.1}% F={:5.1}%",
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f1() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scores() {
        let c = Counts::new(10, 0, 0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn known_values() {
        let c = Counts::new(8, 2, 2);
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_values() {
        let c = Counts::new(6, 2, 6);
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Counts::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        let no_pred = Counts::new(0, 0, 5);
        assert_eq!(no_pred.precision(), 1.0);
        assert_eq!(no_pred.recall(), 0.0);
        assert_eq!(no_pred.f1(), 0.0);
        let all_wrong = Counts::new(0, 5, 5);
        assert_eq!(all_wrong.precision(), 0.0);
        assert_eq!(all_wrong.f1(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Counts::new(1, 2, 3);
        let b = Counts::new(10, 20, 30);
        assert_eq!(a.merged(&b), Counts::new(11, 22, 33));
    }

    #[test]
    fn summary_formats() {
        assert_eq!(Counts::new(1, 1, 1).summary(), "P= 50.0% R= 50.0% F= 50.0%");
    }
}
