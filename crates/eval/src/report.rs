//! Report formatting: the per-iteration tables of the paper (Tables 3
//! and 5) and generic aligned-column output for the bench binaries.

use paris_core::IterationStats;

use crate::metrics::Counts;

/// One row of a Table-3/Table-5-style per-iteration report.
#[derive(Clone, Debug)]
pub struct IterationRow {
    /// Which iteration (1-based).
    pub iteration: usize,
    /// Fraction of instances that changed maximal assignment.
    pub change: f64,
    /// Instance-pass wall-clock seconds.
    pub seconds: f64,
    /// Instance metrics after this iteration.
    pub instances: Counts,
}

/// Renders the per-iteration table the paper prints for yago–DBpedia and
/// yago–IMDb.
pub fn iteration_table(rows: &[IterationRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:>9} {:>9} {:>7} {:>7} {:>7}\n",
        "Iter", "Change", "Time(s)", "Prec", "Rec", "F"
    ));
    for row in rows {
        let change = if row.iteration == 1 {
            "-".to_owned()
        } else {
            format!("{:.1}%", row.change * 100.0)
        };
        out.push_str(&format!(
            "{:<5} {:>9} {:>9.2} {:>6.1}% {:>6.1}% {:>6.1}%\n",
            row.iteration,
            change,
            row.seconds,
            row.instances.precision() * 100.0,
            row.instances.recall() * 100.0,
            row.instances.f1() * 100.0,
        ));
    }
    out
}

/// Renders a simple two-column-plus-score list (the Table 4 format).
pub fn alignment_list(title: &str, rows: &[(String, String, f64)]) -> String {
    let mut out = format!("{title}\n");
    let width = rows
        .iter()
        .map(|(a, _, _)| a.len())
        .max()
        .unwrap_or(10)
        .max(10);
    for (sub, sup, p) in rows {
        out.push_str(&format!("  {sub:<width$} ⊆ {sup:<24} {p:.2}\n"));
    }
    out
}

/// Summarizes a finished run's iteration stats as debug lines.
pub fn stats_lines(stats: &[IterationStats]) -> String {
    let mut out = String::new();
    for s in stats {
        out.push_str(&format!(
            "iter {}: changed {:.1}% | {} equivalences | {} assigned | inst {:.2}s subrel {:.2}s\n",
            s.iteration,
            s.changed_fraction * 100.0,
            s.instance_equivalences,
            s.assigned_instances,
            s.instance_seconds,
            s.subrelation_seconds,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_table_formats() {
        let rows = vec![
            IterationRow {
                iteration: 1,
                change: 0.0,
                seconds: 1.5,
                instances: Counts::new(86, 14, 31),
            },
            IterationRow {
                iteration: 2,
                change: 0.124,
                seconds: 1.7,
                instances: Counts::new(89, 11, 27),
            },
        ];
        let table = iteration_table(&rows);
        assert!(table.contains("Iter"));
        assert!(table.contains("12.4%"), "{table}");
        assert!(table.lines().count() == 3);
        // First iteration shows "-" for change, like the paper.
        assert!(table.lines().nth(1).unwrap().contains('-'));
    }

    #[test]
    fn stats_lines_formats() {
        let stats = vec![IterationStats {
            iteration: 1,
            changed: 5,
            changed_fraction: 0.05,
            instance_equivalences: 123,
            assigned_instances: 100,
            subrelation_entries: 40,
            instance_seconds: 0.5,
            subrelation_seconds: 0.25,
        }];
        let s = stats_lines(&stats);
        assert!(s.contains("iter 1"));
        assert!(s.contains("5.0%"));
        assert!(s.contains("123 equivalences"));
    }

    #[test]
    fn alignment_list_formats() {
        let rows = vec![
            ("actedIn".to_owned(), "starring⁻".to_owned(), 0.95),
            ("graduatedFrom".to_owned(), "almaMater".to_owned(), 0.93),
        ];
        let s = alignment_list("yago ⊆ DBpedia", &rows);
        assert!(s.contains("actedIn"));
        assert!(s.contains("⊆"));
        assert!(s.contains("0.95"));
    }
}
