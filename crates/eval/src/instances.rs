//! Instance-alignment evaluation against a gold standard (paper §6.1).
//!
//! "We evaluate the instance equalities by comparing the computed final
//! maximal assignment to a gold standard, using the standard metrics of
//! precision, recall, and F-measure. For instances, we considered only the
//! assignment with the maximal score." Evaluation is restricted to
//! entities covered by the gold standard (predictions about entities the
//! gold says nothing about are neither rewarded nor punished — the OAEI
//! convention).

use paris_core::AlignmentResult;
use paris_datagen::GoldStandard;
use paris_kb::{EntityId, FxHashMap};

use crate::metrics::Counts;

/// Evaluates the final maximal instance assignment against `gold`.
///
/// Gold pairs whose IRIs are absent from the KBs (e.g. entities whose side
/// was dropped entirely) are skipped, mirroring how the paper computes
/// recall against the set of *shared* entities.
pub fn evaluate_instances(result: &AlignmentResult<'_>, gold: &GoldStandard) -> Counts {
    let mut expected: FxHashMap<EntityId, EntityId> = FxHashMap::default();
    for (iri1, iri2) in &gold.instances {
        if let (Some(e1), Some(e2)) = (
            result.kb1.entity_by_iri(iri1.as_str()),
            result.kb2.entity_by_iri(iri2.as_str()),
        ) {
            expected.insert(e1, e2);
        }
    }

    let assignment = result.instances.maximal_assignment();
    let mut counts = Counts::default();
    for (&e1, &e2_gold) in &expected {
        match assignment[e1.index()] {
            Some((e2, _)) if e2 == e2_gold => counts.true_positives += 1,
            Some(_) => {
                // A wrong assignment is both a false positive (precision)
                // and a miss of the gold pair (recall) — the OAEI
                // convention the paper's numbers follow (P and R move
                // independently in Tables 3 and 5).
                counts.false_positives += 1;
                counts.false_negatives += 1;
            }
            None => counts.false_negatives += 1,
        }
    }
    counts
}

/// Like [`evaluate_instances`], but only over gold entities with at least
/// `min_facts` statements in KB 1 — the paper's "entities with more than
/// 10 facts in DBpedia" slice, where precision and recall jump to
/// 97 % / 85 %.
pub fn evaluate_instances_min_facts(
    result: &AlignmentResult<'_>,
    gold: &GoldStandard,
    min_facts: usize,
) -> Counts {
    let mut counts = Counts::default();
    let assignment = result.instances.maximal_assignment();
    for (iri1, iri2) in &gold.instances {
        let (Some(e1), Some(e2_gold)) = (
            result.kb1.entity_by_iri(iri1.as_str()),
            result.kb2.entity_by_iri(iri2.as_str()),
        ) else {
            continue;
        };
        if result.kb1.facts(e1).len() < min_facts {
            continue;
        }
        match assignment[e1.index()] {
            Some((e2, _)) if e2 == e2_gold => counts.true_positives += 1,
            Some(_) => {
                counts.false_positives += 1;
                counts.false_negatives += 1;
            }
            None => counts.false_negatives += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_core::{Aligner, ParisConfig};
    use paris_datagen::persons::{generate, PersonsConfig};

    #[test]
    fn clean_persons_dataset_aligns_perfectly() {
        let pair = generate(&PersonsConfig {
            num_persons: 60,
            ..Default::default()
        });
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let counts = evaluate_instances(&result, &pair.gold);
        assert_eq!(counts.precision(), 1.0, "{counts:?}");
        assert_eq!(counts.recall(), 1.0, "{counts:?}");
    }

    #[test]
    fn min_facts_slice_is_subset() {
        let pair = generate(&PersonsConfig {
            num_persons: 40,
            ..Default::default()
        });
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let all = evaluate_instances(&result, &pair.gold);
        let sliced = evaluate_instances_min_facts(&result, &pair.gold, 5);
        let total = |c: &Counts| c.true_positives + c.false_positives + c.false_negatives;
        assert!(total(&sliced) < total(&all));
        assert!(total(&sliced) > 0, "persons have ≥5 facts");
    }

    #[test]
    fn unmatched_entities_count_as_false_negatives() {
        // Two KBs sharing no literal values: nothing can align, so every
        // gold pair is a false negative.
        use paris_kb::KbBuilder;
        use paris_rdf::{Iri, Literal};
        let mut b1 = KbBuilder::new("a");
        b1.add_literal_fact("http://a/x", "http://a/id", Literal::plain("AAA"));
        let mut b2 = KbBuilder::new("b");
        b2.add_literal_fact("http://b/u", "http://b/id", Literal::plain("BBB"));
        let (kb1, kb2) = (b1.build(), b2.build());
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
        let gold = paris_datagen::GoldStandard {
            instances: vec![(Iri::new("http://a/x"), Iri::new("http://b/u"))],
            ..Default::default()
        };
        let counts = evaluate_instances(&result, &gold);
        assert_eq!(counts.true_positives, 0);
        assert_eq!(counts.false_negatives, 1);
        assert_eq!(counts.recall(), 0.0);
        assert_eq!(
            counts.precision(),
            1.0,
            "no predictions → vacuous precision"
        );
    }
}
