//! RDF terms: IRIs, literals, and the [`Term`] sum type.
//!
//! The paper assumes a global set of resources `R`, literals `L`, and
//! properties `P` (§3). We model resources and properties as [`Iri`]s and
//! literals as [`Literal`]s carrying an optional datatype or language tag.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An IRI identifying a resource, class, or property.
///
/// Internally reference-counted so that terms can be shared cheaply between
/// triples and the knowledge-base interner.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates an IRI from any string-like value.
    ///
    /// No syntactic validation is performed beyond what the N-Triples
    /// parser enforces; PARIS treats IRIs as opaque identifiers.
    pub fn new(iri: impl Into<Arc<str>>) -> Self {
        Iri(iri.into())
    }

    /// Returns the IRI as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the local name: the suffix after the last `#`, `/`, or `:`.
    ///
    /// Useful for display; PARIS itself never interprets IRI structure.
    pub fn local_name(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/', ':']) {
            Some(i) => &s[i + 1..],
            None => s,
        }
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri::new(s)
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri::new(s)
    }
}

impl Borrow<str> for Iri {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Iri {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// The qualifier attached to a literal's lexical form.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum LiteralKind {
    /// A plain literal with no datatype or language tag
    /// (equivalently, `xsd:string` under RDF 1.1).
    #[default]
    Plain,
    /// A language-tagged string, e.g. `"London"@en`.
    LanguageTagged(Arc<str>),
    /// A typed literal, e.g. `"42"^^xsd:integer`.
    Typed(Iri),
}

/// An RDF literal: a lexical form plus an optional datatype / language tag.
///
/// PARIS §5.3 clamps literal-equivalence probabilities up front; the
/// default implementation *normalizes numeric values by removing datatype
/// information* and then compares for identity. The normalization lives in
/// `paris-literals`; this type just faithfully carries what was parsed.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    value: Arc<str>,
    kind: LiteralKind,
}

impl Literal {
    /// Creates a plain (untyped, untagged) literal.
    pub fn plain(value: impl Into<Arc<str>>) -> Self {
        Literal {
            value: value.into(),
            kind: LiteralKind::Plain,
        }
    }

    /// Creates a language-tagged literal such as `"London"@en`.
    pub fn lang_tagged(value: impl Into<Arc<str>>, lang: impl Into<Arc<str>>) -> Self {
        Literal {
            value: value.into(),
            kind: LiteralKind::LanguageTagged(lang.into()),
        }
    }

    /// Creates a datatyped literal such as `"42"^^xsd:integer`.
    pub fn typed(value: impl Into<Arc<str>>, datatype: impl Into<Iri>) -> Self {
        Literal {
            value: value.into(),
            kind: LiteralKind::Typed(datatype.into()),
        }
    }

    /// The lexical form.
    pub fn value(&self) -> &str {
        &self.value
    }

    /// The datatype / language qualifier.
    pub fn kind(&self) -> &LiteralKind {
        &self.kind
    }

    /// The language tag, if this is a language-tagged string.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::LanguageTagged(l) => Some(l),
            _ => None,
        }
    }

    /// The datatype IRI, if this is a typed literal.
    pub fn datatype(&self) -> Option<&Iri> {
        match &self.kind {
            LiteralKind::Typed(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LiteralKind::Plain => write!(f, "{:?}", self.value()),
            LiteralKind::LanguageTagged(l) => write!(f, "{:?}@{}", self.value(), l),
            LiteralKind::Typed(d) => write!(f, "{:?}^^{:?}", self.value(), d),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.value())
    }
}

/// A term in object position: either a resource or a literal.
///
/// The paper (§3) allows literals in subject position for inverse
/// statements — a "minor digression from the standard" — but that digression
/// is handled inside the knowledge-base store, which iterates facts in both
/// directions; parsed triples always have IRI subjects.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A resource (instance, class, or property) identified by IRI.
    Iri(Iri),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Returns the IRI if this term is a resource.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            Term::Literal(_) => None,
        }
    }

    /// Returns the literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            Term::Iri(_) => None,
        }
    }

    /// True iff this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Self {
        Term::Iri(i)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "{i}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_name_hash() {
        assert_eq!(Iri::new("http://ex.org/onto#Elvis").local_name(), "Elvis");
    }

    #[test]
    fn iri_local_name_slash() {
        assert_eq!(Iri::new("http://ex.org/Elvis").local_name(), "Elvis");
    }

    #[test]
    fn iri_local_name_opaque() {
        assert_eq!(Iri::new("urn:x").local_name(), "x");
        assert_eq!(Iri::new("plain").local_name(), "plain");
    }

    #[test]
    fn iri_equality_is_structural() {
        assert_eq!(Iri::new("http://a"), Iri::new(String::from("http://a")));
        assert_ne!(Iri::new("http://a"), Iri::new("http://b"));
    }

    #[test]
    fn literal_accessors() {
        let plain = Literal::plain("x");
        assert_eq!(plain.value(), "x");
        assert_eq!(plain.language(), None);
        assert_eq!(plain.datatype(), None);

        let lang = Literal::lang_tagged("London", "en");
        assert_eq!(lang.language(), Some("en"));
        assert_eq!(lang.datatype(), None);

        let typed = Literal::typed("42", "http://www.w3.org/2001/XMLSchema#integer");
        assert_eq!(typed.language(), None);
        assert_eq!(typed.datatype().unwrap().local_name(), "integer");
    }

    #[test]
    fn literal_kind_distinguishes_equality() {
        assert_ne!(Literal::plain("42"), Literal::typed("42", "http://t"));
        assert_ne!(
            Literal::lang_tagged("x", "en"),
            Literal::lang_tagged("x", "fr")
        );
        assert_eq!(Literal::plain("x"), Literal::plain("x"));
    }

    #[test]
    fn term_accessors() {
        let t: Term = Iri::new("http://a").into();
        assert!(t.as_iri().is_some());
        assert!(!t.is_literal());
        let l: Term = Literal::plain("v").into();
        assert!(l.is_literal());
        assert_eq!(l.as_literal().unwrap().value(), "v");
    }

    #[test]
    fn debug_formats() {
        let t = Term::Literal(Literal::lang_tagged("a", "en"));
        assert_eq!(format!("{t:?}"), "Literal(\"a\"@en)");
        assert_eq!(format!("{:?}", Iri::new("http://a")), "<http://a>");
    }
}
