//! RDF statements (triples).

use std::fmt;

use crate::term::{Iri, Term};

/// A statement `r(x, y)`: subject `x`, property `r`, object `y` (paper §3).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The subject resource (`x` in `r(x, y)`).
    pub subject: Iri,
    /// The property (`r`).
    pub predicate: Iri,
    /// The object (`y`): resource or literal.
    pub object: Term,
}

impl Triple {
    /// Creates a triple from its three components.
    pub fn new(
        subject: impl Into<Iri>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}, {})",
            self.predicate.local_name(),
            self.subject.local_name(),
            self.object
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn construction_and_display() {
        let t = Triple::new(
            "http://ex.org/Elvis",
            "http://ex.org/name",
            Literal::plain("Elvis"),
        );
        assert_eq!(t.subject.as_str(), "http://ex.org/Elvis");
        assert_eq!(format!("{t}"), "name(Elvis, Elvis)");
    }

    #[test]
    fn equality() {
        let a = Triple::new("http://s", "http://p", Iri::new("http://o"));
        let b = Triple::new("http://s", "http://p", Iri::new("http://o"));
        let c = Triple::new("http://s", "http://p", Literal::plain("http://o"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
