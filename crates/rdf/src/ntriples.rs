//! N-Triples / N-Quads parsing and serialization.
//!
//! [N-Triples](https://www.w3.org/TR/n-triples/) is the line-oriented RDF
//! syntax the paper's datasets ship in (yago and DBpedia dumps). The
//! [`Parser`] is an iterator over statements; the [`Writer`] serializes
//! triples back out with correct escaping, so parse → write → parse is the
//! identity (property-tested in this crate).
//!
//! Because every statement lives on its own line, parsing is embarrassingly
//! parallel: [`parse_chunked`] reads the input in bounded byte chunks, carves
//! each chunk at line boundaries, and fans the sub-ranges out to scoped
//! threads, while still delivering triples to the caller in input order.
//! This is the front end of `paris ingest`'s out-of-core pipeline.
//!
//! Deviations from the spec, both documented and deliberate:
//!
//! * Blank nodes (`_:label`) are accepted and skolemized into IRIs of the
//!   form `bnode://label`. PARIS has no special treatment for blank nodes —
//!   they are just resources without global identity — and skolemization
//!   preserves that semantics within a single document.
//! * `\u`/`\U` escapes are decoded in both IRIs and literals.
//! * In N-Quads mode the optional graph label is parsed and discarded: PARIS
//!   aligns the union graph of a dump, so provenance is irrelevant here.

use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write as IoWrite};
use std::path::Path;

use crate::error::RdfError;
use crate::term::{Iri, Literal, Term};
use crate::triple::Triple;

/// Streaming N-Triples parser: an `Iterator<Item = Result<Triple, RdfError>>`.
///
/// ```
/// use paris_rdf::ntriples::Parser;
/// let doc = "<http://s> <http://p> \"o\" . # comment\n";
/// let t = Parser::new(doc).next().unwrap().unwrap();
/// assert_eq!(t.predicate.as_str(), "http://p");
/// ```
pub struct Parser<'a> {
    input: &'a str,
    line: u64,
}

impl<'a> Parser<'a> {
    /// Creates a parser over an in-memory document.
    pub fn new(input: &'a str) -> Self {
        Parser { input, line: 0 }
    }

    /// Parses the whole document into a vector, failing on the first error.
    pub fn parse_all(input: &'a str) -> Result<Vec<Triple>, RdfError> {
        Parser::new(input).collect()
    }
}

impl Iterator for Parser<'_> {
    type Item = Result<Triple, RdfError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.input.is_empty() {
                return None;
            }
            let (raw_line, rest) = self.input.split_once('\n').unwrap_or((self.input, ""));
            self.input = rest;
            self.line += 1;
            let raw_line = raw_line.strip_suffix('\r').unwrap_or(raw_line);
            let mut cursor = Cursor::new(raw_line, self.line);
            match cursor.statement() {
                Ok(Some(triple)) => return Some(Ok(triple)),
                Ok(None) => continue, // blank / comment-only line
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Reads and parses an entire N-Triples file.
pub fn parse_file(path: impl AsRef<Path>) -> Result<Vec<Triple>, RdfError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    Parser::parse_all(&buf)
}

/// Reads and parses N-Triples from any reader, line by line.
pub fn parse_reader(reader: impl Read) -> Result<Vec<Triple>, RdfError> {
    let mut out = Vec::new();
    let mut line_no = 0u64;
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(out);
        }
        line_no += 1;
        let mut cursor = Cursor::new(line.trim_end_matches(['\n', '\r']), line_no);
        if let Some(t) = cursor.statement()? {
            out.push(t);
        }
    }
}

/// Parses one line as a statement. `quads` additionally accepts an optional
/// graph label (IRI or blank node) before the terminating `.`, which is
/// discarded. Returns `Ok(None)` for blank and comment-only lines. `line` is
/// the 1-based line number used in error messages.
pub fn parse_line(text: &str, line: u64, quads: bool) -> Result<Option<Triple>, RdfError> {
    let text = text.strip_suffix('\r').unwrap_or(text);
    let mut cursor = Cursor::new(text, line);
    cursor.quads = quads;
    cursor.statement()
}

/// Tuning knobs for [`parse_chunked`].
#[derive(Debug, Clone)]
pub struct ChunkOptions {
    /// Worker threads per chunk (clamped to ≥ 1). 1 parses inline.
    pub threads: usize,
    /// Target chunk size in bytes; chunks always end on a line boundary, so a
    /// single line longer than this still parses (the chunk grows to fit it).
    pub chunk_bytes: usize,
    /// Accept N-Quads: an optional graph label before the final `.`,
    /// discarded after validation.
    pub quads: bool,
}

impl Default for ChunkOptions {
    fn default() -> Self {
        ChunkOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            chunk_bytes: 4 << 20,
            quads: false,
        }
    }
}

/// Counters reported by [`parse_chunked`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Statements delivered to the sink.
    pub triples: u64,
    /// Input lines consumed (including blank/comment lines).
    pub lines: u64,
    /// Input bytes consumed.
    pub bytes: u64,
    /// Chunks processed.
    pub chunks: u64,
}

/// Streaming, line-parallel parser over any reader.
///
/// Reads the input in chunks of roughly `opts.chunk_bytes`, cut at line
/// boundaries. Each chunk is split into up to `opts.threads` sub-ranges
/// (again snapped to line boundaries) that parse concurrently on scoped
/// threads; the resulting triple batches are handed to `sink` sequentially,
/// **in input order**, on the calling thread. Memory use is bounded by the
/// chunk size (plus one over-long line), never by the document size.
///
/// Syntax errors carry the absolute 1-based line number, exactly as the
/// sequential [`Parser`] would report it.
pub fn parse_chunked<R: Read>(
    reader: R,
    opts: &ChunkOptions,
    mut sink: impl FnMut(Vec<Triple>) -> std::io::Result<()>,
) -> Result<ParseStats, RdfError> {
    let threads = opts.threads.max(1);
    let chunk_bytes = opts.chunk_bytes.max(4096);
    let mut reader = BufReader::new(reader);
    let mut carry: Vec<u8> = Vec::new();
    let mut next_line = 1u64; // 1-based line number of the chunk's first line
    let mut stats = ParseStats::default();
    let mut eof = false;
    while !eof {
        // Assemble one chunk: the carry from last time plus fresh bytes, then
        // trim back to the last newline so no line spans two chunks.
        let mut chunk = std::mem::take(&mut carry);
        while chunk.len() < chunk_bytes {
            let old = chunk.len();
            chunk.resize(chunk_bytes, 0);
            let n = reader.read(chunk.get_mut(old..).unwrap_or_default())?;
            chunk.truncate(old + n);
            if n == 0 {
                eof = true;
                break;
            }
        }
        if !eof {
            loop {
                if let Some(i) = chunk.iter().rposition(|&b| b == b'\n') {
                    carry = chunk.split_off(i + 1);
                    break;
                }
                // A single line longer than the chunk target: grow until its
                // newline (or EOF) shows up.
                let old = chunk.len();
                chunk.resize(old + (64 << 10), 0);
                let n = reader.read(chunk.get_mut(old..).unwrap_or_default())?;
                chunk.truncate(old + n);
                if n == 0 {
                    eof = true;
                    break;
                }
            }
        }
        if chunk.is_empty() {
            continue;
        }
        let text = match std::str::from_utf8(&chunk) {
            Ok(t) => t,
            Err(e) => {
                let line = next_line
                    + chunk
                        .get(..e.valid_up_to())
                        .unwrap_or_default()
                        .iter()
                        .filter(|&&b| b == b'\n')
                        .count() as u64;
                return Err(RdfError::syntax(line, "invalid UTF-8 in input"));
            }
        };
        let consumed = parse_chunk(text, next_line, threads, opts.quads, &mut stats, &mut sink)?;
        next_line += consumed;
        stats.bytes += chunk.len() as u64;
        stats.chunks += 1;
    }
    Ok(stats)
}

/// Parses one chunk (a whole number of lines), fanning sub-ranges out to
/// scoped threads; returns the number of lines consumed.
fn parse_chunk(
    text: &str,
    first_line: u64,
    threads: usize,
    quads: bool,
    stats: &mut ParseStats,
    sink: &mut impl FnMut(Vec<Triple>) -> std::io::Result<()>,
) -> Result<u64, RdfError> {
    // Sub-range boundaries: even byte splits snapped forward to the next
    // line start, deduplicated (tiny chunks collapse to fewer ranges).
    let mut bounds = vec![0usize];
    for i in 1..threads {
        let target = text.len() * i / threads;
        let after = text.as_bytes().get(target..).unwrap_or_default();
        let cut = match after.iter().position(|&b| b == b'\n') {
            Some(off) => target + off + 1,
            None => text.len(),
        };
        if cut > bounds.last().copied().unwrap_or(0) && cut < text.len() {
            bounds.push(cut);
        }
    }
    bounds.push(text.len());

    let results: Vec<RegionResult> = if bounds.len() == 2 {
        vec![parse_region(text, quads)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .windows(2)
                .map(|w| {
                    let (start, end) = match *w {
                        [a, b] => (a, b),
                        _ => (0, 0),
                    };
                    let region = text.get(start..end).unwrap_or("");
                    scope.spawn(move || parse_region(region, quads))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err((1, "parser worker panicked".to_string())))
                })
                .collect()
        })
    };

    // Deliver in input order; rebase each region's relative line numbers onto
    // the running absolute count so errors name the true 1-based line.
    let mut consumed = 0u64;
    for result in results {
        match result {
            Ok((triples, lines)) => {
                consumed += lines;
                stats.triples += triples.len() as u64;
                if !triples.is_empty() {
                    sink(triples)?;
                }
            }
            Err((rel_line, message)) => {
                return Err(RdfError::syntax(
                    first_line - 1 + consumed + rel_line,
                    message,
                ));
            }
        }
    }
    stats.lines += consumed;
    Ok(consumed)
}

/// One region's parse: the triples and line count, or a region-relative
/// (1-based) error line plus message.
type RegionResult = Result<(Vec<Triple>, u64), (u64, String)>;

/// Parses a whole-line region sequentially. Errors carry the line number
/// relative to the region start (1-based); the caller rebases them.
fn parse_region(text: &str, quads: bool) -> RegionResult {
    let mut out = Vec::new();
    let mut rest = text;
    let mut line = 0u64;
    while !rest.is_empty() {
        let (raw, tail) = rest.split_once('\n').unwrap_or((rest, ""));
        rest = tail;
        line += 1;
        match parse_line(raw, line, quads) {
            Ok(Some(t)) => out.push(t),
            Ok(None) => {}
            Err(RdfError::Syntax { line, message }) => return Err((line, message)),
            Err(e) => return Err((line, e.to_string())),
        }
    }
    Ok((out, line))
}

/// Convenience wrapper over [`parse_chunked`] collecting into a vector.
pub fn parse_chunked_collect<R: Read>(
    reader: R,
    opts: &ChunkOptions,
) -> Result<Vec<Triple>, RdfError> {
    let mut out = Vec::new();
    parse_chunked(reader, opts, |batch| {
        out.extend(batch);
        Ok(())
    })?;
    Ok(out)
}

/// Single-statement scanner over one line.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u64,
    quads: bool,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: u64) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
            line,
            quads: false,
        }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::syntax(self.line, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Parses one line: either a statement, or nothing (blank / comment).
    fn statement(&mut self) -> Result<Option<Triple>, RdfError> {
        self.skip_ws();
        match self.peek() {
            None | Some(b'#') => return Ok(None),
            _ => {}
        }
        let subject = self.subject()?;
        self.skip_ws();
        let predicate = self.iri_ref()?;
        self.skip_ws();
        let object = self.object()?;
        self.skip_ws();
        if self.quads && matches!(self.peek(), Some(b'<') | Some(b'_')) {
            // N-Quads graph label: parsed for validity, then discarded.
            match self.peek() {
                Some(b'<') => drop(self.iri_ref()?),
                _ => drop(self.blank_node()?),
            }
            self.skip_ws();
        }
        if self.bump() != Some(b'.') {
            return Err(self.err("expected '.' terminating the statement"));
        }
        self.skip_ws();
        match self.peek() {
            None | Some(b'#') => Ok(Some(Triple {
                subject,
                predicate,
                object,
            })),
            Some(c) => Err(self.err(format!("unexpected trailing character '{}'", c as char))),
        }
    }

    fn subject(&mut self) -> Result<Iri, RdfError> {
        match self.peek() {
            Some(b'<') => self.iri_ref(),
            Some(b'_') => self.blank_node(),
            _ => Err(self.err("expected IRI or blank node as subject")),
        }
    }

    fn object(&mut self) -> Result<Term, RdfError> {
        match self.peek() {
            Some(b'<') => Ok(Term::Iri(self.iri_ref()?)),
            Some(b'_') => Ok(Term::Iri(self.blank_node()?)),
            Some(b'"') => Ok(Term::Literal(self.literal()?)),
            _ => Err(self.err("expected IRI, blank node, or literal as object")),
        }
    }

    fn iri_ref(&mut self) -> Result<Iri, RdfError> {
        if self.bump() != Some(b'<') {
            return Err(self.err("expected '<' opening an IRI"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'>') => break,
                Some(b'\\') => out.push(self.unicode_escape()?),
                Some(c) if (0x21..=0x7e).contains(&c) && !b"<\"{}|^`".contains(&c) => {
                    out.push(c as char)
                }
                Some(c) if c >= 0x80 => {
                    // Re-sync to the UTF-8 char boundary and take the char.
                    let start = self.pos - 1;
                    let rest = self.bytes.get(start..).unwrap_or_default();
                    let s =
                        std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8 in IRI"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid UTF-8 in IRI"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
                Some(c) => {
                    return Err(self.err(format!("illegal character '{}' in IRI", c as char)))
                }
                None => return Err(self.err("unterminated IRI")),
            }
        }
        if out.is_empty() {
            return Err(self.err("empty IRI"));
        }
        Ok(Iri::new(out))
    }

    /// `\u` / `\U` escape inside an IRI (the only escapes IRIs permit).
    fn unicode_escape(&mut self) -> Result<char, RdfError> {
        let kind = self
            .bump()
            .ok_or_else(|| self.err("dangling '\\' in IRI"))?;
        let len = match kind {
            b'u' => 4,
            b'U' => 8,
            c => return Err(self.err(format!("illegal IRI escape '\\{}'", c as char))),
        };
        self.hex_char(len)
    }

    fn hex_char(&mut self, len: usize) -> Result<char, RdfError> {
        let window = self
            .bytes
            .get(self.pos..self.pos.saturating_add(len))
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let hex = std::str::from_utf8(window).map_err(|_| self.err("non-ASCII unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid hex in unicode escape"))?;
        self.pos += len;
        char::from_u32(code).ok_or_else(|| self.err("escape is not a valid code point"))
    }

    fn blank_node(&mut self) -> Result<Iri, RdfError> {
        // "_:" PN_LOCAL — we accept alphanumerics plus '-' '_' '.'
        self.pos += 1; // consume '_'
        if self.bump() != Some(b':') {
            return Err(self.err("expected ':' after '_' in blank node"));
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        let label = self.bytes.get(start..self.pos).unwrap_or_default();
        let label =
            std::str::from_utf8(label).map_err(|_| self.err("non-ASCII blank node label"))?;
        Ok(Iri::new(format!("bnode://{label}")))
    }

    fn literal(&mut self) -> Result<Literal, RdfError> {
        self.pos += 1; // consume '"'
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => value.push(self.string_escape()?),
                Some(c) if c < 0x80 => value.push(c as char),
                Some(_) => {
                    let start = self.pos - 1;
                    let rest = self.bytes.get(start..).unwrap_or_default();
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in literal"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid UTF-8 in literal"))?;
                    value.push(ch);
                    self.pos = start + ch.len_utf8();
                }
                None => return Err(self.err("unterminated string literal")),
            }
        }
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'-') {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(self.err("empty language tag"));
                }
                let lang = self.bytes.get(start..self.pos).unwrap_or_default();
                let lang =
                    std::str::from_utf8(lang).map_err(|_| self.err("non-ASCII language tag"))?;
                Ok(Literal::lang_tagged(value, lang))
            }
            Some(b'^') => {
                self.pos += 1;
                if self.bump() != Some(b'^') {
                    return Err(self.err("expected '^^' before datatype IRI"));
                }
                let dt = self.iri_ref()?;
                Ok(Literal::typed(value, dt))
            }
            _ => Ok(Literal::plain(value)),
        }
    }

    /// ECHAR or UCHAR inside a quoted literal.
    fn string_escape(&mut self) -> Result<char, RdfError> {
        match self.bump() {
            Some(b't') => Ok('\t'),
            Some(b'b') => Ok('\u{8}'),
            Some(b'n') => Ok('\n'),
            Some(b'r') => Ok('\r'),
            Some(b'f') => Ok('\u{c}'),
            Some(b'"') => Ok('"'),
            Some(b'\'') => Ok('\''),
            Some(b'\\') => Ok('\\'),
            Some(b'u') => self.hex_char(4),
            Some(b'U') => self.hex_char(8),
            Some(c) => Err(self.err(format!("illegal string escape '\\{}'", c as char))),
            None => Err(self.err("dangling '\\' in string literal")),
        }
    }
}

/// Serializes triples to N-Triples with spec-conformant escaping.
pub struct Writer<W: IoWrite> {
    sink: W,
}

impl<W: IoWrite> Writer<W> {
    /// Wraps an output sink.
    pub fn new(sink: W) -> Self {
        Writer { sink }
    }

    /// Writes one triple as a single `subject predicate object .` line.
    pub fn write_triple(&mut self, triple: &Triple) -> std::io::Result<()> {
        write_iri(&mut self.sink, &triple.subject)?;
        self.sink.write_all(b" ")?;
        write_iri(&mut self.sink, &triple.predicate)?;
        self.sink.write_all(b" ")?;
        match &triple.object {
            Term::Iri(iri) => write_iri(&mut self.sink, iri)?,
            Term::Literal(lit) => write_literal(&mut self.sink, lit)?,
        }
        self.sink.write_all(b" .\n")
    }

    /// Writes every triple from an iterator.
    pub fn write_all<'t>(
        &mut self,
        triples: impl IntoIterator<Item = &'t Triple>,
    ) -> std::io::Result<()> {
        for t in triples {
            self.write_triple(t)?;
        }
        Ok(())
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Serializes a slice of triples to an in-memory string.
pub fn to_string(triples: &[Triple]) -> String {
    let mut w = Writer::new(Vec::new());
    // A Vec sink never fails to write or flush; the writer emits UTF-8 only,
    // so the lossy conversion is exact.
    let _ = w.write_all(triples);
    let bytes = w.into_inner().unwrap_or_default();
    String::from_utf8_lossy(&bytes).into_owned()
}

fn write_iri(sink: &mut impl IoWrite, iri: &Iri) -> std::io::Result<()> {
    sink.write_all(b"<")?;
    for ch in iri.as_str().chars() {
        match ch {
            // Characters N-Triples forbids raw inside <>: escape as \u.
            '\u{0}'..='\u{20}' | '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' => {
                write!(sink, "\\u{:04X}", ch as u32)?
            }
            _ => write!(sink, "{ch}")?,
        }
    }
    sink.write_all(b">")
}

fn write_literal(sink: &mut impl IoWrite, lit: &Literal) -> std::io::Result<()> {
    sink.write_all(b"\"")?;
    for ch in lit.value().chars() {
        match ch {
            '"' => sink.write_all(b"\\\"")?,
            '\\' => sink.write_all(b"\\\\")?,
            '\n' => sink.write_all(b"\\n")?,
            '\r' => sink.write_all(b"\\r")?,
            '\t' => sink.write_all(b"\\t")?,
            '\u{0}'..='\u{1f}' | '\u{7f}' => write!(sink, "\\u{:04X}", ch as u32)?,
            _ => write!(sink, "{ch}")?,
        }
    }
    sink.write_all(b"\"")?;
    match lit.kind() {
        crate::term::LiteralKind::Plain => Ok(()),
        crate::term::LiteralKind::LanguageTagged(lang) => write!(sink, "@{lang}"),
        crate::term::LiteralKind::Typed(dt) => {
            sink.write_all(b"^^")?;
            write_iri(sink, dt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(s: &str) -> Triple {
        let mut p = Parser::new(s);
        let t = p.next().expect("one statement").expect("valid");
        assert!(p.next().is_none(), "exactly one statement expected");
        t
    }

    #[test]
    fn basic_resource_triple() {
        let t = parse_one("<http://s> <http://p> <http://o> .");
        assert_eq!(t.subject.as_str(), "http://s");
        assert_eq!(t.predicate.as_str(), "http://p");
        assert_eq!(t.object.as_iri().unwrap().as_str(), "http://o");
    }

    #[test]
    fn plain_literal() {
        let t = parse_one(r#"<http://s> <http://p> "hello world" ."#);
        assert_eq!(t.object.as_literal().unwrap().value(), "hello world");
    }

    #[test]
    fn lang_tagged_literal() {
        let t = parse_one(r#"<http://s> <http://p> "London"@en-GB ."#);
        let lit = t.object.as_literal().unwrap();
        assert_eq!(lit.value(), "London");
        assert_eq!(lit.language(), Some("en-GB"));
    }

    #[test]
    fn typed_literal() {
        let t = parse_one(
            r#"<http://s> <http://p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        );
        let lit = t.object.as_literal().unwrap();
        assert_eq!(lit.value(), "42");
        assert_eq!(lit.datatype().unwrap().local_name(), "integer");
    }

    #[test]
    fn string_escapes() {
        let t = parse_one(r#"<http://s> <http://p> "a\tb\nc\"d\\eéf" ."#);
        assert_eq!(
            t.object.as_literal().unwrap().value(),
            "a\tb\nc\"d\\e\u{e9}f"
        );
    }

    #[test]
    fn long_unicode_escape() {
        let t = parse_one(r#"<http://s> <http://p> "\U0001F600" ."#);
        assert_eq!(t.object.as_literal().unwrap().value(), "\u{1F600}");
    }

    #[test]
    fn iri_unicode_escape() {
        let t = parse_one(r#"<http://s/é> <http://p> <http://o> ."#);
        assert_eq!(t.subject.as_str(), "http://s/\u{e9}");
    }

    #[test]
    fn raw_utf8_passthrough() {
        let t = parse_one("<http://s/é> <http://p> \"naïve café\" .");
        assert_eq!(t.subject.as_str(), "http://s/é");
        assert_eq!(t.object.as_literal().unwrap().value(), "naïve café");
    }

    #[test]
    fn blank_nodes_are_skolemized() {
        let t = parse_one("_:a1 <http://p> _:b-2 .");
        assert_eq!(t.subject.as_str(), "bnode://a1");
        assert_eq!(t.object.as_iri().unwrap().as_str(), "bnode://b-2");
    }

    #[test]
    fn comments_and_blank_lines() {
        let doc = "\n# header\n  \n<http://s> <http://p> <http://o> . # trailing\n#tail\n";
        let ts = Parser::parse_all(doc).unwrap();
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn error_reports_line_number() {
        let doc = "<http://s> <http://p> <http://o> .\n<http://s> <http://p> garbage .\n";
        let err = Parser::parse_all(doc).unwrap_err();
        match err {
            RdfError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other}"),
        }
    }

    #[test]
    fn missing_dot_is_an_error() {
        assert!(Parser::parse_all("<http://s> <http://p> <http://o>").is_err());
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        assert!(Parser::parse_all(r#"<http://s> <http://p> "oops ."#).is_err());
    }

    #[test]
    fn unterminated_iri_is_an_error() {
        assert!(Parser::parse_all("<http://s <http://p> <http://o> .").is_err());
    }

    #[test]
    fn empty_iri_is_an_error() {
        assert!(Parser::parse_all("<> <http://p> <http://o> .").is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(Parser::parse_all("<http://s> <http://p> <http://o> . junk").is_err());
    }

    #[test]
    fn literal_subject_is_an_error() {
        assert!(Parser::parse_all(r#""lit" <http://p> <http://o> ."#).is_err());
    }

    #[test]
    fn writer_round_trip() {
        let doc = concat!(
            "<http://s> <http://p> <http://o> .\n",
            "<http://s> <http://name> \"a\\tb \\\"quoted\\\" \\\\slash\" .\n",
            "<http://s> <http://label> \"Lond\\u00f3n\"@es .\n",
            "<http://s> <http://num> \"3.14\"^^<http://www.w3.org/2001/XMLSchema#decimal> .\n",
        );
        let triples = Parser::parse_all(doc).unwrap();
        let serialized = to_string(&triples);
        let reparsed = Parser::parse_all(&serialized).unwrap();
        assert_eq!(triples, reparsed);
    }

    #[test]
    fn parse_reader_matches_parser() {
        let doc = "<http://s> <http://p> <http://o> .\n# c\n<http://s2> <http://p> \"x\" .\n";
        let a = Parser::parse_all(doc).unwrap();
        let b = parse_reader(doc.as_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn crlf_line_endings() {
        let doc = "<http://s> <http://p> <http://o> .\r\n<http://s2> <http://p> <http://o> .\r\n";
        let b = parse_reader(doc.as_bytes()).unwrap();
        assert_eq!(b.len(), 2);
    }
}
