//! RDF data model and serialization substrate for the PARIS reproduction.
//!
//! PARIS (§3 of the paper) operates on RDFS ontologies: sets of triples
//! `⟨subject, property, object⟩` where subjects are resources, properties are
//! binary predicates, and objects are resources or literals. This crate
//! provides:
//!
//! * the term model ([`Iri`], [`Literal`], [`Term`]) and [`Triple`],
//! * a spec-faithful [N-Triples](https://www.w3.org/TR/n-triples/) parser
//!   ([`ntriples::Parser`]) and writer ([`ntriples::Writer`]),
//! * the handful of RDF/RDFS vocabulary IRIs PARIS interprets
//!   ([`vocab`]: `rdf:type`, `rdfs:subClassOf`, `rdfs:subPropertyOf`,
//!   `rdfs:label`),
//! * prefix handling for compact IRIs ([`namespace::Namespaces`]).
//!
//! The paper's implementation used the Jena framework to load ontologies;
//! this crate is the from-scratch Rust equivalent of that substrate.
//!
//! # Example
//!
//! ```
//! use paris_rdf::{ntriples::Parser, Term};
//!
//! let doc = r#"
//! <http://ex.org/Elvis> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/singer> .
//! <http://ex.org/Elvis> <http://ex.org/name> "Elvis Presley" .
//! "#;
//! let triples: Vec<_> = Parser::new(doc).collect::<Result<_, _>>().unwrap();
//! assert_eq!(triples.len(), 2);
//! assert!(matches!(triples[1].object, Term::Literal(_)));
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod namespace;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod vocab;

pub use error::RdfError;
pub use namespace::Namespaces;
pub use term::{Iri, Literal, Term};
pub use triple::Triple;
