//! Prefix → namespace mapping for compact IRI notation.
//!
//! The synthetic datasets and the examples use compact IRIs like
//! `y:actedIn` or `dbp:starring`; [`Namespaces`] expands them to full IRIs
//! and abbreviates full IRIs back for display (as in the paper's Table 4).

use std::collections::BTreeMap;

use crate::term::Iri;

/// A bidirectional prefix table.
///
/// Longest-namespace match wins when abbreviating, so overlapping
/// namespaces (`http://ex.org/` and `http://ex.org/onto/`) behave sanely.
#[derive(Clone, Debug, Default)]
pub struct Namespaces {
    by_prefix: BTreeMap<String, String>,
}

impl Namespaces {
    /// An empty prefix table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table pre-loaded with `rdf:`, `rdfs:`, and `xsd:`.
    pub fn with_well_known() -> Self {
        let mut ns = Self::new();
        ns.insert("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
        ns.insert("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
        ns.insert("xsd", "http://www.w3.org/2001/XMLSchema#");
        ns
    }

    /// Registers (or replaces) a prefix.
    pub fn insert(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.by_prefix.insert(prefix.into(), namespace.into());
    }

    /// Expands a compact IRI (`prefix:local`) to a full [`Iri`].
    ///
    /// Returns `None` if the prefix is unregistered or the input has no
    /// colon.
    pub fn expand(&self, compact: &str) -> Option<Iri> {
        let (prefix, local) = compact.split_once(':')?;
        let ns = self.by_prefix.get(prefix)?;
        Some(Iri::new(format!("{ns}{local}")))
    }

    /// Abbreviates a full IRI to `prefix:local` if a registered namespace
    /// is a prefix of it; otherwise returns the full IRI string.
    pub fn abbreviate(&self, iri: &Iri) -> String {
        let s = iri.as_str();
        let best = self
            .by_prefix
            .iter()
            .filter(|(_, ns)| s.starts_with(ns.as_str()))
            .max_by_key(|(_, ns)| ns.len());
        match best {
            Some((prefix, ns)) => format!("{prefix}:{}", &s[ns.len()..]),
            None => s.to_owned(),
        }
    }

    /// Iterates over `(prefix, namespace)` pairs in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.by_prefix.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_round_trip() {
        let mut ns = Namespaces::with_well_known();
        ns.insert("y", "http://yago-knowledge.org/resource/");
        let iri = ns.expand("y:actedIn").unwrap();
        assert_eq!(iri.as_str(), "http://yago-knowledge.org/resource/actedIn");
        assert_eq!(ns.abbreviate(&iri), "y:actedIn");
    }

    #[test]
    fn expand_unknown_prefix() {
        let ns = Namespaces::new();
        assert!(ns.expand("y:foo").is_none());
        assert!(ns.expand("nocolon").is_none());
    }

    #[test]
    fn abbreviate_prefers_longest_namespace() {
        let mut ns = Namespaces::new();
        ns.insert("a", "http://ex.org/");
        ns.insert("b", "http://ex.org/onto/");
        assert_eq!(ns.abbreviate(&Iri::new("http://ex.org/onto/X")), "b:X");
        assert_eq!(ns.abbreviate(&Iri::new("http://ex.org/X")), "a:X");
    }

    #[test]
    fn abbreviate_falls_back_to_full_iri() {
        let ns = Namespaces::new();
        assert_eq!(ns.abbreviate(&Iri::new("http://other/X")), "http://other/X");
    }

    #[test]
    fn well_known_prefixes() {
        let ns = Namespaces::with_well_known();
        assert_eq!(
            ns.expand("rdf:type").unwrap().as_str(),
            crate::vocab::RDF_TYPE
        );
        assert_eq!(ns.iter().count(), 3);
    }
}
