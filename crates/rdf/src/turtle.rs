//! Turtle parsing (the practical subset real KB dumps use).
//!
//! The paper's ontologies ship as [Turtle](https://www.w3.org/TR/turtle/)
//! as often as N-Triples (DBpedia's dumps in particular). This is a
//! recursive-descent parser for the subset those dumps exercise:
//!
//! * `@prefix` / `@base` directives (and their SPARQL-style spellings),
//! * predicate lists (`;`), object lists (`,`), the `a` keyword,
//! * prefixed names and relative IRIs (resolved against the base),
//! * all literal forms: quoted strings (`"…"`, `'…'`, and their long
//!   triple-quoted variants), language tags, datatypes, and the bare
//!   numeric / boolean shorthands,
//! * blank-node labels (`_:x`, skolemized like the N-Triples parser) and
//!   anonymous blank nodes `[ … ]` with property lists.
//!
//! RDF collections (`( … )`) are rejected with a clear error — none of
//! the targeted dumps use them, and silently mis-parsing would be worse.

use crate::error::RdfError;
use crate::term::{Iri, Literal, Term};
use crate::triple::Triple;
use crate::vocab;

/// Parses a complete Turtle document.
pub fn parse_turtle(input: &str) -> Result<Vec<Triple>, RdfError> {
    let mut parser = TurtleParser::new(input);
    parser.document()?;
    Ok(parser.triples)
}

/// Reads and parses a Turtle file.
pub fn parse_turtle_file(path: impl AsRef<std::path::Path>) -> Result<Vec<Triple>, RdfError> {
    let text = std::fs::read_to_string(path)?;
    parse_turtle(&text)
}

struct TurtleParser {
    chars: Vec<char>,
    pos: usize,
    line: u64,
    base: Option<String>,
    prefixes: std::collections::HashMap<String, String>,
    /// Counter for anonymous blank nodes.
    anon: u64,
    triples: Vec<Triple>,
}

impl TurtleParser {
    fn new(input: &str) -> Self {
        TurtleParser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            base: None,
            prefixes: std::collections::HashMap::new(),
            anon: 0,
            triples: Vec::new(),
        }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, c: char) -> Result<(), RdfError> {
        self.skip_ws();
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn starts_with_keyword(&self, kw: &str) -> bool {
        let kw_chars: Vec<char> = kw.chars().collect();
        if self.chars.len() < self.pos + kw_chars.len() {
            return false;
        }
        self.chars[self.pos..self.pos + kw_chars.len()]
            .iter()
            .zip(&kw_chars)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    fn consume_keyword(&mut self, kw: &str) {
        for _ in kw.chars() {
            self.bump();
        }
    }

    // ------------------------------------------------------------------

    fn document(&mut self) -> Result<(), RdfError> {
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Ok(());
            }
            if self.starts_with_keyword("@prefix") {
                self.consume_keyword("@prefix");
                self.prefix_directive(true)?;
            } else if self.starts_with_keyword("@base") {
                self.consume_keyword("@base");
                self.base_directive(true)?;
            } else if self.starts_with_keyword("PREFIX") {
                self.consume_keyword("PREFIX");
                self.prefix_directive(false)?;
            } else if self.starts_with_keyword("BASE") {
                self.consume_keyword("BASE");
                self.base_directive(false)?;
            } else {
                self.statement()?;
            }
        }
    }

    fn prefix_directive(&mut self, dotted: bool) -> Result<(), RdfError> {
        self.skip_ws();
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.err("expected ':' in prefix declaration"));
            }
            prefix.push(c);
            self.bump();
        }
        self.expect(':')?;
        self.skip_ws();
        let iri = self.iriref()?;
        self.prefixes.insert(prefix, iri);
        if dotted {
            self.expect('.')?;
        }
        Ok(())
    }

    fn base_directive(&mut self, dotted: bool) -> Result<(), RdfError> {
        self.skip_ws();
        let iri = self.iriref()?;
        self.base = Some(iri);
        if dotted {
            self.expect('.')?;
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<(), RdfError> {
        let subject = self.subject()?;
        self.predicate_object_list(&subject)?;
        self.expect('.')
    }

    fn subject(&mut self) -> Result<Iri, RdfError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Iri::new(self.iriref()?)),
            Some('_') => self.blank_label(),
            Some('[') => self.anonymous_blank(),
            Some('(') => Err(self.err("RDF collections '( … )' are not supported")),
            Some(_) => Ok(self.prefixed_name()?),
            None => Err(self.err("unexpected end of input, expected subject")),
        }
    }

    fn predicate_object_list(&mut self, subject: &Iri) -> Result<(), RdfError> {
        loop {
            let predicate = self.verb()?;
            loop {
                let object = self.object()?;
                self.triples.push(Triple {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                self.skip_ws();
                if self.peek() == Some(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            if self.peek() == Some(';') {
                self.bump();
                self.skip_ws();
                // trailing ';' before '.' or ']' is legal
                match self.peek() {
                    Some('.') | Some(']') | None => return Ok(()),
                    _ => continue,
                }
            }
            return Ok(());
        }
    }

    fn verb(&mut self) -> Result<Iri, RdfError> {
        self.skip_ws();
        // 'a' keyword: must be followed by whitespace or '<'
        if self.peek() == Some('a') {
            let next = self.chars.get(self.pos + 1).copied();
            if next.is_none_or(|c| c.is_whitespace() || c == '<') {
                self.bump();
                return Ok(Iri::new(vocab::RDF_TYPE));
            }
        }
        match self.peek() {
            Some('<') => Ok(Iri::new(self.iriref()?)),
            Some(_) => self.prefixed_name(),
            None => Err(self.err("unexpected end of input, expected predicate")),
        }
    }

    fn object(&mut self) -> Result<Term, RdfError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::Iri(Iri::new(self.iriref()?))),
            Some('_') => Ok(Term::Iri(self.blank_label()?)),
            Some('[') => Ok(Term::Iri(self.anonymous_blank()?)),
            Some('(') => Err(self.err("RDF collections '( … )' are not supported")),
            Some('"') | Some('\'') => Ok(Term::Literal(self.string_literal()?)),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => {
                Ok(Term::Literal(self.numeric_literal()?))
            }
            Some('t') | Some('f')
                if self.starts_with_keyword("true") || self.starts_with_keyword("false") =>
            {
                let value = if self.starts_with_keyword("true") {
                    "true"
                } else {
                    "false"
                };
                self.consume_keyword(value);
                Ok(Term::Literal(Literal::typed(
                    value,
                    "http://www.w3.org/2001/XMLSchema#boolean",
                )))
            }
            Some(_) => Ok(Term::Iri(self.prefixed_name()?)),
            None => Err(self.err("unexpected end of input, expected object")),
        }
    }

    // ------------------------------------------------------------------
    // terminals

    fn iriref(&mut self) -> Result<String, RdfError> {
        self.skip_ws();
        if self.bump() != Some('<') {
            return Err(self.err("expected '<'"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('>') => break,
                Some('\\') => match self.bump() {
                    Some('u') => out.push(self.hex_char(4)?),
                    Some('U') => out.push(self.hex_char(8)?),
                    other => {
                        return Err(self.err(format!("illegal IRI escape {other:?}")));
                    }
                },
                Some(c) if c.is_whitespace() => return Err(self.err("whitespace in IRI")),
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
        // Resolve relative IRIs against the base (simple concatenation —
        // enough for dump-style data where relative IRIs are fragments).
        if !out.contains(':') {
            if let Some(base) = &self.base {
                return Ok(format!("{base}{out}"));
            }
        }
        Ok(out)
    }

    fn hex_char(&mut self, len: usize) -> Result<char, RdfError> {
        let mut code = 0u32;
        for _ in 0..len {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated unicode escape"))?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex in unicode escape"))?;
            code = code * 16 + digit;
        }
        char::from_u32(code).ok_or_else(|| self.err("escape is not a valid code point"))
    }

    fn prefixed_name(&mut self) -> Result<Iri, RdfError> {
        self.skip_ws();
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c == ':' {
                break;
            }
            if !(c.is_alphanumeric() || c == '_' || c == '-' || c == '.') {
                return Err(self.err(format!("unexpected character '{c}' in prefixed name")));
            }
            prefix.push(c);
            self.bump();
        }
        if self.bump() != Some(':') {
            return Err(self.err("expected ':' in prefixed name"));
        }
        let namespace = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.err(format!("undeclared prefix '{prefix}:'")))?
            .clone();
        let mut local = String::new();
        while let Some(c) = self.peek() {
            // PN_LOCAL approximation; '.' is allowed mid-name but a
            // trailing '.' terminates the statement instead.
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '%' {
                local.push(c);
                self.bump();
            } else if c == '.' {
                match self.chars.get(self.pos + 1) {
                    Some(n) if n.is_alphanumeric() || *n == '_' => {
                        local.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if c == '\\' {
                // PN_LOCAL_ESC: backslash-escaped punctuation
                self.bump();
                match self.bump() {
                    Some(esc) => local.push(esc),
                    None => return Err(self.err("dangling '\\' in prefixed name")),
                }
            } else {
                break;
            }
        }
        Ok(Iri::new(format!("{namespace}{local}")))
    }

    fn blank_label(&mut self) -> Result<Iri, RdfError> {
        self.bump(); // '_'
        if self.bump() != Some(':') {
            return Err(self.err("expected ':' after '_'"));
        }
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                label.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if label.is_empty() {
            return Err(self.err("empty blank node label"));
        }
        Ok(Iri::new(format!("bnode://{label}")))
    }

    fn anonymous_blank(&mut self) -> Result<Iri, RdfError> {
        self.bump(); // '['
        self.anon += 1;
        let node = Iri::new(format!("bnode://anon{}", self.anon));
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(node);
        }
        self.predicate_object_list(&node)?;
        self.expect(']')?;
        Ok(node)
    }

    fn string_literal(&mut self) -> Result<Literal, RdfError> {
        let quote = self.bump().expect("caller checked quote");
        // Long string?
        let long = self.peek() == Some(quote) && self.chars.get(self.pos + 1) == Some(&quote);
        if long {
            self.bump();
            self.bump();
        }
        let mut value = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string literal"));
            };
            if c == quote {
                if !long {
                    break;
                }
                if self.peek() == Some(quote) && self.chars.get(self.pos + 1) == Some(&quote) {
                    self.bump();
                    self.bump();
                    break;
                }
                value.push(c);
                continue;
            }
            if c == '\\' {
                match self.bump() {
                    Some('t') => value.push('\t'),
                    Some('b') => value.push('\u{8}'),
                    Some('n') => value.push('\n'),
                    Some('r') => value.push('\r'),
                    Some('f') => value.push('\u{c}'),
                    Some('"') => value.push('"'),
                    Some('\'') => value.push('\''),
                    Some('\\') => value.push('\\'),
                    Some('u') => value.push(self.hex_char(4)?),
                    Some('U') => value.push(self.hex_char(8)?),
                    other => return Err(self.err(format!("illegal string escape {other:?}"))),
                }
                continue;
            }
            if !long && (c == '\n' || c == '\r') {
                return Err(self.err("newline in single-quoted string"));
            }
            value.push(c);
        }
        // Qualifier?
        match self.peek() {
            Some('@') => {
                self.bump();
                let mut lang = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        lang.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if lang.is_empty() {
                    return Err(self.err("empty language tag"));
                }
                Ok(Literal::lang_tagged(value, lang))
            }
            Some('^') => {
                self.bump();
                if self.bump() != Some('^') {
                    return Err(self.err("expected '^^'"));
                }
                self.skip_ws();
                let dt = match self.peek() {
                    Some('<') => Iri::new(self.iriref()?),
                    _ => self.prefixed_name()?,
                };
                Ok(Literal::typed(value, dt))
            }
            _ => Ok(Literal::plain(value)),
        }
    }

    fn numeric_literal(&mut self) -> Result<Literal, RdfError> {
        let mut text = String::new();
        let mut has_dot = false;
        let mut has_exp = false;
        if matches!(self.peek(), Some('+') | Some('-')) {
            text.push(self.bump().expect("peeked"));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && !has_dot && !has_exp {
                // A '.' only belongs to the number if a digit follows —
                // otherwise it terminates the statement.
                match self.chars.get(self.pos + 1) {
                    Some(n) if n.is_ascii_digit() => {
                        has_dot = true;
                        text.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if (c == 'e' || c == 'E') && !has_exp {
                has_exp = true;
                text.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("peeked"));
                }
            } else {
                break;
            }
        }
        if text.is_empty() || text.chars().all(|c| c == '+' || c == '-') {
            return Err(self.err("malformed numeric literal"));
        }
        let datatype = if has_exp {
            vocab::XSD_DOUBLE
        } else if has_dot {
            vocab::XSD_DECIMAL
        } else {
            vocab::XSD_INTEGER
        };
        Ok(Literal::typed(text, datatype))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(doc: &str) -> Vec<Triple> {
        parse_turtle(doc).expect("valid turtle")
    }

    #[test]
    fn basic_statement_with_prefixes() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:elvis ex:bornIn ex:tupelo .
"#;
        let ts = parse(doc);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].subject.as_str(), "http://ex.org/elvis");
        assert_eq!(ts[0].predicate.as_str(), "http://ex.org/bornIn");
    }

    #[test]
    fn sparql_style_prefix() {
        let doc = "PREFIX ex: <http://ex.org/>\nex:a ex:b ex:c .";
        assert_eq!(parse(doc).len(), 1);
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let doc = "@prefix ex: <http://ex.org/> .\nex:elvis a ex:Singer .";
        let ts = parse(doc);
        assert_eq!(ts[0].predicate.as_str(), vocab::RDF_TYPE);
    }

    #[test]
    fn predicate_and_object_lists() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:elvis a ex:Singer, ex:Actor ;
    ex:name "Elvis" ;
    ex:knows ex:carl, ex:bob .
"#;
        let ts = parse(doc);
        assert_eq!(ts.len(), 5);
        assert!(ts
            .iter()
            .all(|t| t.subject.as_str() == "http://ex.org/elvis"));
    }

    #[test]
    fn literal_forms() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:x ex:plain "hello" ;
     ex:lang "hallo"@de ;
     ex:typed "42"^^xsd:integer ;
     ex:int 42 ;
     ex:dec 3.25 ;
     ex:dbl 1.0e6 ;
     ex:neg -7 ;
     ex:yes true .
"#;
        let ts = parse(doc);
        assert_eq!(ts.len(), 8);
        let lit = |i: usize| ts[i].object.as_literal().expect("literal");
        assert_eq!(lit(0).value(), "hello");
        assert_eq!(lit(1).language(), Some("de"));
        assert_eq!(lit(2).datatype().unwrap().local_name(), "integer");
        assert_eq!(lit(3).value(), "42");
        assert_eq!(lit(3).datatype().unwrap().local_name(), "integer");
        assert_eq!(lit(4).datatype().unwrap().local_name(), "decimal");
        assert_eq!(lit(5).datatype().unwrap().local_name(), "double");
        assert_eq!(lit(6).value(), "-7");
        assert_eq!(lit(7).value(), "true");
    }

    #[test]
    fn single_quoted_and_long_strings() {
        let doc = "@prefix ex: <http://e/> .\nex:x ex:a 'single' ; ex:b \"\"\"multi\nline \"quoted\" text\"\"\" .";
        let ts = parse(doc);
        assert_eq!(ts[0].object.as_literal().unwrap().value(), "single");
        assert_eq!(
            ts[1].object.as_literal().unwrap().value(),
            "multi\nline \"quoted\" text"
        );
    }

    #[test]
    fn base_resolution() {
        let doc = "@base <http://base.org/> .\n<rel> <p> <other> .";
        let ts = parse(doc);
        assert_eq!(ts[0].subject.as_str(), "http://base.org/rel");
        assert_eq!(
            ts[0].object.as_iri().unwrap().as_str(),
            "http://base.org/other"
        );
        // absolute IRIs are untouched — 'p'? 'p' has no colon → resolved too
        assert_eq!(ts[0].predicate.as_str(), "http://base.org/p");
    }

    #[test]
    fn blank_nodes() {
        let doc =
            "@prefix ex: <http://e/> .\n_:a ex:p _:b .\nex:x ex:q [] .\nex:y ex:r [ ex:s ex:z ] .";
        let ts = parse(doc);
        assert_eq!(ts[0].subject.as_str(), "bnode://a");
        assert!(ts[1]
            .object
            .as_iri()
            .unwrap()
            .as_str()
            .starts_with("bnode://anon"));
        // the bracketed property list emits its own triple
        assert_eq!(ts.len(), 4);
        let inner = ts
            .iter()
            .find(|t| t.predicate.as_str() == "http://e/s")
            .unwrap();
        assert!(inner.subject.as_str().starts_with("bnode://anon"));
    }

    #[test]
    fn comments_are_skipped() {
        let doc = "# header\n@prefix ex: <http://e/> . # trailing\nex:a ex:b ex:c . # done";
        assert_eq!(parse(doc).len(), 1);
    }

    #[test]
    fn dot_in_local_names() {
        let doc = "@prefix ex: <http://e/> .\nex:v1.2 ex:p ex:x .";
        let ts = parse(doc);
        assert_eq!(ts[0].subject.as_str(), "http://e/v1.2");
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let doc = "@prefix ex: <http://e/> .\nex:a ex:b ( ex:c ) .";
        match parse_turtle(doc) {
            Err(RdfError::Syntax { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("collections"));
            }
            other => panic!("expected collection error, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        assert!(parse_turtle("nope:a nope:b nope:c .").is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_turtle("@prefix e: <http://e/> .\ne:a e:b \"oops .").is_err());
    }

    #[test]
    fn turtle_agrees_with_ntriples_on_shared_subset() {
        use crate::ntriples::Parser;
        let nt = r#"<http://e/a> <http://e/p> "x"@en .
<http://e/a> <http://e/q> <http://e/b> .
"#;
        // Same content in Turtle:
        let ttl = r#"@prefix e: <http://e/> .
e:a e:p "x"@en ; e:q e:b .
"#;
        let from_nt = Parser::parse_all(nt).unwrap();
        let from_ttl = parse(ttl);
        assert_eq!(from_nt, from_ttl);
    }

    #[test]
    fn ntriples_documents_parse_as_turtle() {
        // N-Triples is a subset of Turtle; our parser must accept it.
        let nt = "<http://e/a> <http://e/p> \"val\" .\n<http://e/b> <http://e/q> <http://e/c> .\n";
        assert_eq!(parse(nt).len(), 2);
    }

    #[test]
    fn schema_vocabulary_parses() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Singer rdfs:subClassOf ex:Person .
ex:elvis a ex:Singer ; ex:name "Elvis Presley" .
"#;
        let triples = parse(doc);
        assert_eq!(triples.len(), 3);
        assert!(triples
            .iter()
            .any(|t| t.predicate.as_str() == vocab::RDFS_SUBCLASS_OF));
    }

    #[test]
    fn round_trip_through_ntriples_writer() {
        let ttl = r#"@prefix e: <http://e/> .
e:a e:p "hello\nworld" ; e:q 3.25 ; a e:C .
"#;
        let triples = parse(ttl);
        let nt = crate::ntriples::to_string(&triples);
        let reparsed = crate::ntriples::Parser::parse_all(&nt).unwrap();
        assert_eq!(triples, reparsed);
    }
}
