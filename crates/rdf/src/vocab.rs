//! The RDF/RDFS vocabulary terms that PARIS interprets.
//!
//! PARIS is vocabulary-agnostic except for four properties (§3):
//! `rdf:type` (instance-to-class membership), `rdfs:subClassOf` and
//! `rdfs:subPropertyOf` (used to compute the deductive closure), and
//! `rdfs:label` (used by the baseline aligner and shown in Table 4 as an
//! alignment target, e.g. `dbp:birthName ⊆ rdfs:label`).

use crate::term::Iri;

/// `rdf:type` — connects an instance to a class.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `rdfs:subClassOf` — class `c` is a subclass of class `d`.
pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";

/// `rdfs:subPropertyOf` — relation `r` is a sub-relation of `s`.
pub const RDFS_SUBPROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";

/// `rdfs:label` — human-readable name of a resource.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

/// `owl:sameAs` — links two resources denoting the same real-world object.
/// PARIS's instance alignments are published as `sameAs` statements, the
/// Semantic Web's interlinking vocabulary (paper §1).
pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";

/// `xsd:string` datatype IRI.
pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";

/// `xsd:integer` datatype IRI.
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// `xsd:decimal` datatype IRI.
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";

/// `xsd:double` datatype IRI.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";

/// `xsd:date` datatype IRI.
pub const XSD_DATE: &str = "http://www.w3.org/2001/XMLSchema#date";

/// Returns `rdf:type` as an [`Iri`].
pub fn rdf_type() -> Iri {
    Iri::new(RDF_TYPE)
}

/// Returns `rdfs:subClassOf` as an [`Iri`].
pub fn rdfs_subclass_of() -> Iri {
    Iri::new(RDFS_SUBCLASS_OF)
}

/// Returns `rdfs:subPropertyOf` as an [`Iri`].
pub fn rdfs_subproperty_of() -> Iri {
    Iri::new(RDFS_SUBPROPERTY_OF)
}

/// Returns `rdfs:label` as an [`Iri`].
pub fn rdfs_label() -> Iri {
    Iri::new(RDFS_LABEL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_constants() {
        assert_eq!(rdf_type().as_str(), RDF_TYPE);
        assert_eq!(rdfs_subclass_of().as_str(), RDFS_SUBCLASS_OF);
        assert_eq!(rdfs_subproperty_of().as_str(), RDFS_SUBPROPERTY_OF);
        assert_eq!(rdfs_label().as_str(), RDFS_LABEL);
    }

    #[test]
    fn local_names() {
        assert_eq!(rdf_type().local_name(), "type");
        assert_eq!(rdfs_subclass_of().local_name(), "subClassOf");
    }
}
