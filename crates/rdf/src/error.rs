//! Error types for RDF parsing and I/O.

use std::fmt;

/// An error raised while parsing or loading RDF data.
#[derive(Debug)]
pub enum RdfError {
    /// A syntax error at a specific line (1-based) of an N-Triples document.
    Syntax {
        /// 1-based line number of the offending statement.
        line: u64,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// An underlying I/O error while reading a document.
    Io(std::io::Error),
}

impl RdfError {
    pub(crate) fn syntax(line: u64, message: impl Into<String>) -> Self {
        RdfError::Syntax {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "N-Triples syntax error on line {line}: {message}")
            }
            RdfError::Io(e) => write!(f, "I/O error while reading RDF: {e}"),
        }
    }
}

impl std::error::Error for RdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RdfError::Io(e) => Some(e),
            RdfError::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for RdfError {
    fn from(e: std::io::Error) -> Self {
        RdfError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = RdfError::syntax(7, "expected '.'");
        assert_eq!(
            e.to_string(),
            "N-Triples syntax error on line 7: expected '.'"
        );
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = RdfError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
