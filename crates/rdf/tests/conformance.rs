//! N-Triples / N-Quads conformance suite.
//!
//! Positive cases exercise the escape, literal, and whitespace corners of the
//! grammar; negative cases assert both rejection AND that the reported line
//! number is the true 1-based line of the offending statement — the chunked
//! parallel parser must agree with the sequential one on every input.

use paris_rdf::ntriples::{parse_chunked_collect, parse_line, ChunkOptions, Parser};
use paris_rdf::{RdfError, Triple};

fn parse_one(s: &str) -> Triple {
    let mut p = Parser::new(s);
    let t = p.next().expect("one statement").expect("valid");
    assert!(p.next().is_none(), "exactly one statement expected");
    t
}

/// Asserts the document fails with a syntax error naming `expect_line`.
fn assert_syntax_error_at(doc: &str, expect_line: u64) {
    match Parser::parse_all(doc) {
        Err(RdfError::Syntax { line, .. }) => assert_eq!(
            line, expect_line,
            "sequential parser reported wrong line for {doc:?}"
        ),
        other => panic!("expected syntax error on line {expect_line}, got {other:?}"),
    }
    // The chunked parser must agree, at every thread count.
    for threads in [1, 4] {
        let opts = ChunkOptions {
            threads,
            chunk_bytes: 4096,
            quads: false,
        };
        match parse_chunked_collect(doc.as_bytes(), &opts) {
            Err(RdfError::Syntax { line, .. }) => assert_eq!(
                line, expect_line,
                "chunked parser (threads={threads}) reported wrong line"
            ),
            other => panic!("chunked parser should fail on line {expect_line}, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------- positive

#[test]
fn short_unicode_escapes_in_literal() {
    let t = parse_one(r#"<http://s> <http://p> "caf\u00E9 \u0041" ."#);
    assert_eq!(t.object.as_literal().unwrap().value(), "café A");
}

#[test]
fn long_unicode_escape_supplementary_plane() {
    let t = parse_one(r#"<http://s> <http://p> "\U0001F600\U0001D11E" ."#);
    assert_eq!(t.object.as_literal().unwrap().value(), "😀𝄞");
}

#[test]
fn unicode_escapes_in_iri() {
    let t = parse_one(r#"<http://s/\u00E9\U0001F600> <http://p> <http://o> ."#);
    assert_eq!(t.subject.as_str(), "http://s/é😀");
}

#[test]
fn all_echar_escapes() {
    let t = parse_one(r#"<http://s> <http://p> "t\tb\bn\nr\rf\fq\"a\'s\\" ."#);
    assert_eq!(
        t.object.as_literal().unwrap().value(),
        "t\tb\u{8}n\nr\rf\u{c}q\"a's\\"
    );
}

#[test]
fn tabs_as_statement_whitespace() {
    let t = parse_one("\t<http://s>\t<http://p>\t\"x\"\t.\t");
    assert_eq!(t.subject.as_str(), "http://s");
}

#[test]
fn comments_blank_and_crlf_lines() {
    let doc = "# header\r\n\r\n   \t\r\n<http://s> <http://p> <http://o> . # inline\r\n#tail";
    let ts = Parser::parse_all(doc).unwrap();
    assert_eq!(ts.len(), 1);
    // Chunked parser sees the same document identically.
    let opts = ChunkOptions {
        threads: 4,
        chunk_bytes: 4096,
        quads: false,
    };
    assert_eq!(parse_chunked_collect(doc.as_bytes(), &opts).unwrap(), ts);
}

#[test]
fn long_literal_crosses_chunk_boundaries() {
    // One literal far larger than the chunk target: the chunk must grow to
    // cover the whole line rather than split mid-literal.
    let big = "x".repeat(64 * 1024);
    let doc = format!(
        "<http://a> <http://p> <http://b> .\n<http://s> <http://p> \"{big}\" .\n<http://c> <http://p> <http://d> .\n"
    );
    let seq = Parser::parse_all(&doc).unwrap();
    assert_eq!(seq.len(), 3);
    assert_eq!(seq[1].object.as_literal().unwrap().value().len(), big.len());
    let opts = ChunkOptions {
        threads: 4,
        chunk_bytes: 4096,
        quads: false,
    };
    assert_eq!(parse_chunked_collect(doc.as_bytes(), &opts).unwrap(), seq);
}

#[test]
fn datatype_and_lang_tags() {
    let t =
        parse_one(r#"<http://s> <http://p> "3.14"^^<http://www.w3.org/2001/XMLSchema#decimal> ."#);
    assert_eq!(
        t.object.as_literal().unwrap().datatype().unwrap().as_str(),
        "http://www.w3.org/2001/XMLSchema#decimal"
    );
    let t = parse_one(r#"<http://s> <http://p> "ville"@fr-CA ."#);
    assert_eq!(t.object.as_literal().unwrap().language(), Some("fr-CA"));
}

#[test]
fn nquads_graph_label_is_discarded() {
    let doc = "<http://s> <http://p> <http://o> <http://graph/g1> .\n\
               <http://s> <http://p> \"lit\"@en _:g .\n\
               <http://s2> <http://p> <http://o2> .\n";
    let opts = ChunkOptions {
        threads: 2,
        chunk_bytes: 4096,
        quads: true,
    };
    let ts = parse_chunked_collect(doc.as_bytes(), &opts).unwrap();
    assert_eq!(ts.len(), 3);
    assert_eq!(ts[0].object.as_iri().unwrap().as_str(), "http://o");
    assert_eq!(ts[1].object.as_literal().unwrap().language(), Some("en"));
    // Triples mode keeps rejecting the 4th term.
    assert!(matches!(
        parse_line("<http://s> <http://p> <http://o> <http://g> .", 1, false),
        Err(RdfError::Syntax { line: 1, .. })
    ));
}

#[test]
fn chunked_matches_sequential_on_mixed_document() {
    let mut doc = String::from("# generated\n");
    for i in 0..500 {
        doc.push_str(&format!("<http://e/{i}> <http://p/{}> ", i % 7));
        match i % 4 {
            0 => doc.push_str(&format!("<http://e/{}> .\n", i + 1)),
            1 => doc.push_str(&format!("\"value {i}\" .\n")),
            2 => doc.push_str(&format!("\"v{i}\"@en .\n")),
            _ => doc.push_str(&format!(
                "\"{i}\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
            )),
        }
        if i % 50 == 0 {
            doc.push_str("# checkpoint\n\n");
        }
    }
    let seq = Parser::parse_all(&doc).unwrap();
    for threads in [1, 2, 4] {
        for chunk_bytes in [4096, 1 << 20] {
            let opts = ChunkOptions {
                threads,
                chunk_bytes,
                quads: false,
            };
            let par = parse_chunked_collect(doc.as_bytes(), &opts).unwrap();
            assert_eq!(par, seq, "threads={threads} chunk_bytes={chunk_bytes}");
        }
    }
}

// ---------------------------------------------------------------- negative

#[test]
fn malformed_line_numbers_are_one_based_and_absolute() {
    assert_syntax_error_at("garbage\n", 1);
    assert_syntax_error_at("<http://s> <http://p> <http://o> .\ngarbage\n", 2);
    assert_syntax_error_at(
        "<http://s> <http://p> <http://o> .\n# comment\n\n<http://s> <http://p> nope .\n",
        4,
    );
}

#[test]
fn error_line_survives_chunk_boundaries() {
    // Put the bad line deep enough that it lands in a later chunk/sub-range.
    let mut doc = String::new();
    for i in 0..300 {
        doc.push_str(&format!("<http://e/{i}> <http://p> <http://o/{i}> .\n"));
    }
    doc.push_str("<http://bad> <http://p> .\n"); // missing object → line 301
    for i in 0..50 {
        doc.push_str(&format!("<http://f/{i}> <http://p> <http://o> .\n"));
    }
    assert_syntax_error_at(&doc, 301);
}

#[test]
fn truncated_unicode_escape() {
    assert_syntax_error_at("<http://s> <http://p> \"\\u00\" .\n", 1);
    assert_syntax_error_at("<http://s> <http://p> \"\\U0001F6\" .\n", 1);
}

#[test]
fn surrogate_escape_is_rejected() {
    assert_syntax_error_at("<http://s> <http://p> \"\\uD800\" .\n", 1);
}

#[test]
fn illegal_escapes() {
    assert_syntax_error_at("<http://s> <http://p> \"\\x41\" .\n", 1);
    assert_syntax_error_at("<http://s/\\n> <http://p> <http://o> .\n", 1);
}

#[test]
fn structural_errors() {
    // Missing terminator.
    assert_syntax_error_at("<http://s> <http://p> <http://o>\n", 1);
    // Unterminated IRI and literal.
    assert_syntax_error_at("<http://s <http://p> <http://o> .\n", 1);
    assert_syntax_error_at("<http://s> <http://p> \"open .\n", 1);
    // Literal in subject position.
    assert_syntax_error_at("\"lit\" <http://p> <http://o> .\n", 1);
    // Literal predicate.
    assert_syntax_error_at("<http://s> \"p\" <http://o> .\n", 1);
    // Empty IRI, empty blank node label, empty language tag.
    assert_syntax_error_at("<> <http://p> <http://o> .\n", 1);
    assert_syntax_error_at("_: <http://p> <http://o> .\n", 1);
    assert_syntax_error_at("<http://s> <http://p> \"x\"@ .\n", 1);
    // Trailing garbage after the dot.
    assert_syntax_error_at("<http://s> <http://p> <http://o> . junk\n", 1);
    // Graph label outside quads mode.
    assert_syntax_error_at("<http://s> <http://p> <http://o> <http://g> .\n", 1);
}

#[test]
fn raw_control_char_in_iri_is_rejected() {
    assert_syntax_error_at("<http://s\u{1}> <http://p> <http://o> .\n", 1);
}

#[test]
fn parse_line_reports_caller_line_number() {
    match parse_line("nonsense", 42, false) {
        Err(RdfError::Syntax { line, .. }) => assert_eq!(line, 42),
        other => panic!("expected syntax error, got {other:?}"),
    }
}
