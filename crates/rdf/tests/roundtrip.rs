//! Property tests: serialize → parse is the identity on arbitrary triples.

use paris_rdf::ntriples::{to_string, Parser};
use paris_rdf::{Iri, Literal, Term, Triple};
use proptest::prelude::*;

/// IRI bodies: non-empty, printable, excluding characters the writer escapes
/// (which are still legal — covered by `escaped_iri_round_trips` below).
fn arb_iri() -> impl Strategy<Value = Iri> {
    "[a-zA-Z][a-zA-Z0-9:/._~#-]{0,40}".prop_map(Iri::new)
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<String>().prop_map(Literal::plain),
        (any::<String>(), "[a-z]{2}(-[A-Z]{2})?")
            .prop_map(|(v, l)| Literal::lang_tagged(v, l)),
        (any::<String>(), arb_iri()).prop_map(|(v, d)| Literal::typed(v, d)),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![arb_iri().prop_map(Term::Iri), arb_literal().prop_map(Term::Literal)]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_iri(), arb_iri(), arb_term())
        .prop_map(|(s, p, o)| Triple { subject: s, predicate: p, object: o })
}

proptest! {
    #[test]
    fn round_trip(triples in proptest::collection::vec(arb_triple(), 0..20)) {
        let doc = to_string(&triples);
        let reparsed = Parser::parse_all(&doc).unwrap();
        prop_assert_eq!(triples, reparsed);
    }

    /// IRIs containing characters that must be \u-escaped still round-trip.
    #[test]
    fn escaped_iri_round_trips(body in "[ <>\"{}|^`\\\\a-z]{1,20}") {
        let t = Triple::new(
            Iri::new(format!("http://x/{body}")),
            "http://p",
            Iri::new("http://o"),
        );
        let doc = to_string(std::slice::from_ref(&t));
        let reparsed = Parser::parse_all(&doc).unwrap();
        prop_assert_eq!(vec![t], reparsed);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in any::<String>()) {
        for item in Parser::new(&input) {
            let _ = item;
        }
    }
}
