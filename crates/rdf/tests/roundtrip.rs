//! Randomized round-trip tests: serialize → parse is the identity on
//! generated triples, and the parser never panics on noise. Cases come
//! from a seeded in-workspace RNG, so each run replays the same batch.

use paris_rdf::ntriples::{to_string, Parser};
use paris_rdf::{Iri, Literal, Term, Triple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const IRI_BODY: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:/._~#-";
const IRI_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

fn random_char_from(rng: &mut StdRng, pool: &[u8]) -> char {
    pool[rng.random_range(0..pool.len())] as char
}

/// IRI bodies: non-empty, printable, excluding characters the writer
/// escapes (covered separately by `escaped_iri_round_trips`).
fn random_iri(rng: &mut StdRng) -> Iri {
    let mut s = String::new();
    s.push(random_char_from(rng, IRI_FIRST));
    for _ in 0..rng.random_range(0usize..40) {
        s.push(random_char_from(rng, IRI_BODY));
    }
    Iri::new(s)
}

/// Arbitrary strings, including control characters, quotes, backslashes,
/// and multi-byte scalars — everything the escaper must handle.
fn random_string(rng: &mut StdRng) -> String {
    (0..rng.random_range(0usize..24))
        .map(|_| loop {
            if let Some(c) = char::from_u32(rng.random_range(0u32..0xD7FF)) {
                return c;
            }
        })
        .collect()
}

fn random_lang(rng: &mut StdRng) -> String {
    let mut l = String::new();
    l.push(random_char_from(rng, b"abcdefghijklmnopqrstuvwxyz"));
    l.push(random_char_from(rng, b"abcdefghijklmnopqrstuvwxyz"));
    if rng.random_range(0u32..2) == 0 {
        l.push('-');
        l.push(random_char_from(rng, b"ABCDEFGHIJKLMNOPQRSTUVWXYZ"));
        l.push(random_char_from(rng, b"ABCDEFGHIJKLMNOPQRSTUVWXYZ"));
    }
    l
}

fn random_literal(rng: &mut StdRng) -> Literal {
    match rng.random_range(0u32..3) {
        0 => Literal::plain(random_string(rng)),
        1 => Literal::lang_tagged(random_string(rng), random_lang(rng)),
        _ => Literal::typed(random_string(rng), random_iri(rng)),
    }
}

fn random_term(rng: &mut StdRng) -> Term {
    if rng.random_range(0u32..2) == 0 {
        Term::Iri(random_iri(rng))
    } else {
        Term::Literal(random_literal(rng))
    }
}

fn random_triple(rng: &mut StdRng) -> Triple {
    Triple {
        subject: random_iri(rng),
        predicate: random_iri(rng),
        object: random_term(rng),
    }
}

#[test]
fn round_trip() {
    let mut rng = StdRng::seed_from_u64(0x2D6);
    for case in 0..256 {
        let triples: Vec<Triple> = (0..rng.random_range(0usize..20))
            .map(|_| random_triple(&mut rng))
            .collect();
        let doc = to_string(&triples);
        let reparsed = Parser::parse_all(&doc).unwrap();
        assert_eq!(triples, reparsed, "case {case}");
    }
}

/// IRIs containing characters that must be \u-escaped still round-trip.
#[test]
fn escaped_iri_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xE5C);
    const NASTY: &[u8] = b" <>\"{}|^`\\abcdefghijklmnopqrstuvwxyz";
    for case in 0..256 {
        let body: String = (0..rng.random_range(1usize..20))
            .map(|_| random_char_from(&mut rng, NASTY))
            .collect();
        let t = Triple::new(
            Iri::new(format!("http://x/{body}")),
            "http://p",
            Iri::new("http://o"),
        );
        let doc = to_string(std::slice::from_ref(&t));
        let reparsed = Parser::parse_all(&doc).unwrap();
        assert_eq!(vec![t], reparsed, "case {case}: body {body:?}");
    }
}

/// The parser never panics on arbitrary input.
#[test]
fn parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x9A1C);
    for _ in 0..256 {
        let input: String = (0..rng.random_range(0usize..120))
            .map(|_| loop {
                if let Some(c) = char::from_u32(rng.random_range(0u32..0x300)) {
                    return c;
                }
            })
            .collect();
        for item in Parser::new(&input) {
            let _ = item;
        }
    }
}
