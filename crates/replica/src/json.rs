//! Minimal JSON *parsing* — the mirror of `paris-server`'s emit-only
//! `json` module. The sync engine consumes exactly one document shape
//! (the pair manifest), so this is a small recursive-descent reader:
//! full value grammar, UTF-8 strings with the standard escapes,
//! `f64` numbers, and a depth limit in place of arbitrary recursion.

/// Maximum nesting depth (the manifest uses 3).
const MAX_DEPTH: usize = 32;

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer (exact — rejects fractions
    /// and anything beyond 2^53, where doubles stop being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= 9_007_199_254_740_992.0 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (and nothing after it).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("document nests too deeply".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past itself
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string".to_owned())?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("unescaped control byte at offset {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported),
    /// leaving `pos` after the escape.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hex4 = |p: &mut Self| -> Result<u32, String> {
            let digits = p
                .bytes
                .get(p.pos..p.pos + 4)
                .and_then(|h| std::str::from_utf8(h).ok())
                .ok_or("truncated \\u escape")?;
            let v = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_owned())?;
            p.pos += 4;
            Ok(v)
        };
        self.pos += 1; // past the 'u'
        let hi = hex4(self)?;
        let cp = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err("unpaired surrogate".into());
            }
            self.pos += 2;
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err("bad low surrogate".into());
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(cp).ok_or_else(|| "invalid code point".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_manifest_shape() {
        let doc = r#"{"server_version":"0.1.0","pairs":[
            {"name":"alpha","format":2,"generation":3,"bytes":12345,"checksum":"00ffab"},
            {"name":"beta","format":1,"generation":1,"bytes":99,"checksum":"01"}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("server_version").and_then(Json::as_str),
            Some("0.1.0")
        );
        let pairs = v.get("pairs").and_then(Json::as_array).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].get("name").and_then(Json::as_str), Some("alpha"));
        assert_eq!(pairs[0].get("generation").and_then(Json::as_u64), Some(3));
        assert_eq!(pairs[1].get("bytes").and_then(Json::as_u64), Some(99));
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap(),
            Json::Str("a\"b\\c\ndé😀".into())
        );
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"unterminated",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }
}
