//! # Read-replica catalog sync (`paris serve --replica-of`, `paris sync`)
//!
//! The catalog daemon (PR 3) made one machine serve many alignment
//! pairs; this crate makes *many machines* serve the same catalog.
//! PARIS alignments are computed once and read many times, so the
//! replication model is deliberately simple — **immutable snapshot
//! images, pulled**:
//!
//! * the **primary** is any `paris serve` daemon: it exposes its catalog
//!   as a manifest (`GET /v1/pairs/manifest`: every pair's name, format
//!   version, generation, byte length, and content checksum) and streams
//!   raw snapshot bytes (`GET /v1/pairs/<name>/snapshot`, with a
//!   checksum-based `ETag` so an unchanged pair is a `304` and zero
//!   body bytes);
//! * a **replica** polls the manifest, diffs it against its local mirror
//!   directory, downloads only changed pairs to temp files, validates
//!   the v1/v2 snapshot framing and checksums *before* install,
//!   atomic-renames into the catalog directory, and hot-reloads the
//!   affected pairs. Deletions propagate; a pair that fails to transfer
//!   backs off exponentially without blocking its siblings.
//!
//! The transport pieces — the hand-rolled HTTP/1.1 client and the JSON
//! parser the manifest goes through — live in [`paris_client`], the
//! bottom of the serving dependency stack; this crate re-exports them so
//! existing callers keep compiling. What remains here is the decision
//! loop itself: [`sync::SyncEngine`]. `paris-server` embeds it behind
//! `--replica-of URL`, and the CLI's one-shot `paris sync URL DIR` runs
//! a single cycle for cron-style mirroring.
//!
//! ## Trust model
//!
//! A replica trusts its upstream for *content* but not for *paths*: pair
//! names from the manifest are validated by [`valid_pair_name`] before
//! any filesystem path is built from them, so a malicious or corrupted
//! primary cannot traverse outside the mirror directory. Transfers are
//! rejected unless the bytes match the advertised checksum *and* parse
//! as a well-formed v1/v2 aligned-pair snapshot; a rejected transfer
//! leaves the previously installed image serving. There is no transport
//! authentication (matching the server's trust model) — replicate over
//! loopback, a private network, or a trusted tunnel.

#![forbid(unsafe_code)]

pub mod sync;

pub use paris_client::{
    http_client, json, valid_pair_name, HttpClient, HttpResponse, Upstream, MAX_PAIR_NAME,
};
pub use sync::{PairReplicationStatus, ReplicationStatus, SyncEngine, SyncMetrics, SyncOutcome};
