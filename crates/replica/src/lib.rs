//! # Read-replica catalog sync (`paris serve --replica-of`, `paris sync`)
//!
//! The catalog daemon (PR 3) made one machine serve many alignment
//! pairs; this crate makes *many machines* serve the same catalog.
//! PARIS alignments are computed once and read many times, so the
//! replication model is deliberately simple — **immutable snapshot
//! images, pulled**:
//!
//! * the **primary** is any `paris serve` daemon: it exposes its catalog
//!   as a manifest (`GET /pairs/manifest`: every pair's name, format
//!   version, generation, byte length, and content checksum) and streams
//!   raw snapshot bytes (`GET /pairs/<name>/snapshot`, with a
//!   checksum-based `ETag` so an unchanged pair is a `304` and zero
//!   body bytes);
//! * a **replica** polls the manifest, diffs it against its local mirror
//!   directory, downloads only changed pairs to temp files, validates
//!   the v1/v2 snapshot framing and checksums *before* install,
//!   atomic-renames into the catalog directory, and hot-reloads the
//!   affected pairs. Deletions propagate; a pair that fails to transfer
//!   backs off exponentially without blocking its siblings.
//!
//! Everything is built on `std::net` — the workspace takes no external
//! dependencies, so [`http_client`] hand-rolls the HTTP/1.1 client
//! subset the sync engine needs (the mirror image of `paris-server`'s
//! hand-rolled server), and [`json`] parses the manifest with a small
//! recursive-descent reader.
//!
//! The decision loop lives in [`sync::SyncEngine`]; `paris-server`
//! embeds it behind `--replica-of URL`, and the CLI's one-shot
//! `paris sync URL DIR` runs a single cycle for cron-style mirroring.
//!
//! ## Trust model
//!
//! A replica trusts its upstream for *content* but not for *paths*: pair
//! names from the manifest are validated by [`valid_pair_name`] before
//! any filesystem path is built from them, so a malicious or corrupted
//! primary cannot traverse outside the mirror directory. Transfers are
//! rejected unless the bytes match the advertised checksum *and* parse
//! as a well-formed v1/v2 aligned-pair snapshot; a rejected transfer
//! leaves the previously installed image serving. There is no transport
//! authentication (matching the server's trust model) — replicate over
//! loopback, a private network, or a trusted tunnel.

pub mod http_client;
pub mod json;
pub mod sync;

pub use http_client::{HttpClient, HttpResponse, Upstream};
pub use sync::{PairReplicationStatus, ReplicationStatus, SyncEngine, SyncOutcome};

/// Longest accepted pair name.
pub const MAX_PAIR_NAME: usize = 128;

/// Whether a pair name is safe to appear in URLs, JSON, and filesystem
/// paths *without escaping*: ASCII alphanumerics plus `-`, `_`, `.`,
/// not starting with a dot (no hidden/temp files, no `.`/`..`), at most
/// [`MAX_PAIR_NAME`] bytes, and not the reserved route name `manifest`.
///
/// The serving catalog skips files whose stem fails this check (so
/// `/pairs` and manifest output are injection-safe by construction), and
/// the sync engine rejects manifest entries that fail it (so an
/// untrusted upstream cannot traverse out of the mirror directory).
pub fn valid_pair_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_PAIR_NAME
        && !name.starts_with('.')
        && name != "manifest"
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_name_validation() {
        for good in ["alpha", "yago-dbpedia", "v2_pair", "a.b", "A9", "x"] {
            assert!(valid_pair_name(good), "{good}");
        }
        for bad in [
            "",
            ".",
            "..",
            ".hidden",
            "a/b",
            "../escape",
            "a b",
            "a\"b",
            "a\\b",
            "a\nb",
            "a?b",
            "a%b",
            "ümlaut",
            "manifest",
        ] {
            assert!(!valid_pair_name(bad), "{bad:?}");
        }
        assert!(valid_pair_name(&"n".repeat(MAX_PAIR_NAME)));
        assert!(!valid_pair_name(&"n".repeat(MAX_PAIR_NAME + 1)));
    }
}
