//! The replica-side sync engine: manifest diffing, validated transfer,
//! atomic install, deletion propagation, and per-pair backoff.
//!
//! One [`SyncEngine`] mirrors one upstream catalog into one local
//! directory. Each [`sync_once`](SyncEngine::sync_once) cycle:
//!
//! 1. fetches `GET /pairs/manifest` (with `If-None-Match`, so an
//!    unchanged catalog costs a `304` and zero body bytes);
//! 2. diffs every advertised pair's content checksum against the local
//!    mirror (local checksums are computed once and cached);
//! 3. downloads only the changed pairs (`GET /pairs/<name>/snapshot`),
//!    writes the bytes to a temp file in the mirror directory,
//!    validates the advertised checksum *and* the v1/v2 snapshot
//!    framing + checksums against the temp file, and only then
//!    atomic-renames it into place — a reader (the serving catalog)
//!    never observes a partial or corrupt image;
//! 4. deletes local pairs the manifest no longer lists;
//! 5. records per-pair failures and backs the failing pair off
//!    exponentially while its siblings keep syncing.
//!
//! The engine is deliberately server-agnostic: `paris-server` drives it
//! from a poll thread (`--replica-of`), the CLI runs one cycle
//! (`paris sync`), and tests drive it directly.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use paris_kb::snapshot::{self, SnapshotError, SnapshotKind};
use paris_kb::snapshot_v2::{checksum_v2, checksum_v2_stream, FORMAT_VERSION_V2};
use paris_kb::SnapshotArena;

use paris_client::http_client::{HttpClient, Upstream};
use paris_client::json::{self, Json};
use paris_client::valid_pair_name;
use paris_obs::span::SpanStore;

/// Cap on the manifest document.
const MAX_MANIFEST_BYTES: u64 = 16 << 20;
/// Default cap on one snapshot transfer.
const DEFAULT_MAX_SNAPSHOT_BYTES: u64 = 8 << 30;
/// First retry delay after a pair-level failure; doubles per consecutive
/// failure up to [`BACKOFF_MAX`].
const BACKOFF_BASE: Duration = Duration::from_millis(500);
/// Ceiling on the per-pair retry delay.
const BACKOFF_MAX: Duration = Duration::from_secs(60);

/// One pair as the primary's manifest advertises it.
#[derive(Clone, Debug, PartialEq)]
pub struct ManifestEntry {
    /// Pair name (validated against [`valid_pair_name`] at parse time).
    pub name: String,
    /// Snapshot format version (1 or 2).
    pub format: u32,
    /// The primary's per-pair generation (0 = never loaded there).
    pub generation: u64,
    /// Snapshot file length in bytes.
    pub bytes: u64,
    /// Content checksum of the snapshot file, `None` when the primary
    /// could not read the file this cycle (the replica keeps what it
    /// has rather than treating a transient primary error as a delete).
    pub checksum: Option<u64>,
}

/// Parses the manifest JSON document — either the `/v1` envelope
/// (`{"data":{…,"pairs":[…]}}`) or the bare pre-v1 shape
/// (`{…,"pairs":[…]}`), so a replica can mirror daemons of either
/// generation. Entries with names that would need URL/JSON/path escaping
/// are rejected into the error list rather than silently dropped — a
/// name like `../../etc` is an attack, and the operator should see it.
pub fn parse_manifest(text: &str) -> Result<(Vec<ManifestEntry>, Vec<String>), String> {
    let doc = json::parse(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
    let doc = doc.get("data").unwrap_or(&doc);
    let pairs = doc
        .get("pairs")
        .and_then(Json::as_array)
        .ok_or("manifest has no 'pairs' array")?;
    let mut entries = Vec::new();
    let mut rejected = Vec::new();
    for pair in pairs {
        let Some(name) = pair.get("name").and_then(Json::as_str) else {
            rejected.push("manifest entry without a name".to_owned());
            continue;
        };
        if !valid_pair_name(name) {
            rejected.push(format!("rejected unsafe pair name {name:?}"));
            continue;
        }
        let field = |key: &str| pair.get(key).and_then(Json::as_u64);
        let (Some(format), Some(generation), Some(bytes)) =
            (field("format"), field("generation"), field("bytes"))
        else {
            rejected.push(format!("pair '{name}': missing format/generation/bytes"));
            continue;
        };
        let checksum = match pair.get("checksum").and_then(Json::as_str) {
            Some(hex) => match u64::from_str_radix(hex, 16) {
                Ok(v) => Some(v),
                Err(_) => {
                    rejected.push(format!("pair '{name}': unparseable checksum {hex:?}"));
                    continue;
                }
            },
            None => None,
        };
        entries.push(ManifestEntry {
            name: name.to_owned(),
            format: format as u32,
            generation,
            bytes,
            checksum,
        });
    }
    Ok((entries, rejected))
}

/// The in-memory half of transfer validation: the advertised content
/// checksum must match, the magic/version must be a supported snapshot
/// format, and a v1 payload must frame-validate as an **aligned pair**
/// (magic, version, kind, declared length, payload checksum). A v2
/// image passes this stage on its header alone — its section table is
/// validated by [`validate_v2_file`] once the bytes are on disk, where
/// the arena can mmap them instead of copying. Returns the version.
fn validate_bytes(bytes: &[u8], expected_checksum: u64) -> Result<u32, String> {
    let actual = checksum_v2(bytes);
    if actual != expected_checksum {
        return Err(format!(
            "content checksum mismatch (advertised {expected_checksum:016x}, got {actual:016x})"
        ));
    }
    let version =
        snapshot::peek_version_bytes(bytes).map_err(|e| format!("bad snapshot framing: {e}"))?;
    match version {
        snapshot::FORMAT_VERSION => {
            let (kind, _) = snapshot::read_payload(&mut &bytes[..])
                .map_err(|e| format!("bad v1 snapshot: {e}"))?;
            if kind != SnapshotKind::AlignedPair {
                return Err(format!(
                    "expected an aligned-pair snapshot, got a {} snapshot",
                    kind.name()
                ));
            }
        }
        FORMAT_VERSION_V2 => {}
        other => {
            return Err(
                SnapshotError::UnsupportedVersion(other).to_string() + " (transfer rejected)"
            )
        }
    }
    Ok(version)
}

/// The on-disk half of v2 validation: opens the file as an arena
/// (mmap-backed — no heap copy of the image) and validates the whole
/// section table, every per-section checksum, and the snapshot kind.
fn validate_v2_file(path: &Path) -> Result<(), String> {
    let arena = SnapshotArena::open(path).map_err(|e| format!("bad v2 snapshot: {e}"))?;
    if arena.kind() != SnapshotKind::AlignedPair {
        return Err(format!(
            "expected an aligned-pair snapshot, got a {} snapshot",
            arena.kind().name()
        ));
    }
    Ok(())
}

/// Validates a snapshot file on disk exactly as a transfer would be:
/// the advertised content checksum must match, and the bytes must parse
/// as a well-formed **aligned-pair** snapshot of a supported format —
/// v1 framing (magic, version, kind, length, payload checksum) or the
/// v2 section table (per-section bounds and checksums). Returns the
/// format version.
pub fn validate_snapshot_file(path: &Path, expected_checksum: u64) -> Result<u32, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading transfer: {e}"))?;
    let version = validate_bytes(&bytes, expected_checksum)?;
    drop(bytes);
    if version == FORMAT_VERSION_V2 {
        validate_v2_file(path)?;
    }
    Ok(version)
}

/// What one [`SyncEngine::sync_once`] cycle did.
#[derive(Clone, Debug, Default)]
pub struct SyncOutcome {
    /// Pairs whose snapshot was downloaded, validated, and installed.
    pub updated: Vec<String>,
    /// Pairs removed locally because the manifest no longer lists them.
    pub removed: Vec<String>,
    /// Per-pair failures this cycle (`(name, why)`); the pair backs off.
    pub failed: Vec<(String, String)>,
    /// Pairs already byte-identical to the primary.
    pub unchanged: usize,
    /// Pairs skipped because their backoff window is still open.
    pub skipped_backoff: usize,
    /// Snapshot body bytes actually transferred (the bench gate asserts
    /// this is 0 when nothing changed).
    pub snapshot_bytes: u64,
    /// Manifest body bytes transferred (0 on a `304` poll).
    pub manifest_bytes: u64,
}

/// Replication health, as `/healthz` reports it on a replica.
#[derive(Clone, Debug, Default)]
pub struct ReplicationStatus {
    /// The upstream URL.
    pub upstream: String,
    /// Completed sync cycles (attempted, not necessarily successful).
    pub syncs: u64,
    /// Unix time of the last attempted cycle.
    pub last_attempt_unix: Option<u64>,
    /// Unix time of the last cycle whose manifest fetch succeeded and
    /// which left no pair failing.
    pub last_success_unix: Option<u64>,
    /// The last cycle-level error (manifest unreachable/unparseable).
    pub last_error: Option<String>,
    /// Per-pair detail.
    pub pairs: Vec<PairReplicationStatus>,
}

/// One pair's replication state.
#[derive(Clone, Debug)]
pub struct PairReplicationStatus {
    /// Pair name.
    pub name: String,
    /// The primary's generation as of the last manifest.
    pub remote_generation: u64,
    /// The primary generation whose bytes are installed locally.
    pub synced_generation: u64,
    /// `remote_generation - synced_generation` (0 = caught up).
    pub lag: u64,
    /// Consecutive transfer failures (0 = healthy).
    pub failures: u64,
    /// Whether the pair's retry backoff window is still open.
    pub backing_off: bool,
    /// Why the last transfer of this pair failed, if it did.
    pub last_error: Option<String>,
}

/// Lock-free transfer accounting a [`SyncEngine`] maintains. The `Arc`d
/// instruments can be registered into an [`obs::Registry`]
/// (`paris_obs::Registry`) to export them — the serving daemon does
/// exactly that for `/v1/metrics`.
///
/// [`obs::Registry`]: paris_obs::Registry
#[derive(Clone, Debug, Default)]
pub struct SyncMetrics {
    /// Sync cycles attempted (successful or not).
    pub attempts: Arc<paris_obs::Counter>,
    /// Failures: cycle-level manifest failures plus per-pair transfer
    /// failures.
    pub failures: Arc<paris_obs::Counter>,
    /// Snapshot body bytes actually transferred.
    pub snapshot_bytes: Arc<paris_obs::Counter>,
    /// Manifest body bytes actually transferred (0 for `304` polls).
    pub manifest_bytes: Arc<paris_obs::Counter>,
    /// Pairs currently inside their retry-backoff window.
    pub pairs_backing_off: Arc<paris_obs::Gauge>,
}

/// Per-pair local bookkeeping.
#[derive(Debug, Default)]
struct PairSync {
    /// `(file signature, content checksum)` of the locally installed
    /// file. The signature keys the cache: a locally deleted or
    /// replaced file invalidates the checksum instead of masquerading
    /// as current forever.
    local: Option<((SystemTime, u64), u64)>,
    /// Remote generation whose bytes we installed (or matched).
    synced_generation: u64,
    /// Remote generation as of the last manifest that listed the pair.
    remote_generation: u64,
    /// Consecutive transfer failures.
    failures: u32,
    /// Do not retry before this instant.
    next_attempt: Option<Instant>,
    /// Last transfer error.
    last_error: Option<String>,
}

/// Mirrors one upstream catalog into one local directory.
pub struct SyncEngine {
    client: HttpClient,
    dest: PathBuf,
    pairs: BTreeMap<String, PairSync>,
    /// True once the upstream 404'd the `/v1` manifest route — a
    /// pre-`/v1` primary; the engine then speaks the legacy route
    /// spellings (rolling upgrades: replicas first or primaries first
    /// both keep syncing).
    legacy_routes: bool,
    /// Validator for the conditional manifest poll.
    manifest_etag: Option<String>,
    /// Last successfully parsed manifest (reused on a `304`).
    manifest: Vec<ManifestEntry>,
    max_snapshot_bytes: u64,
    syncs: u64,
    last_attempt_unix: Option<u64>,
    last_success_unix: Option<u64>,
    last_error: Option<String>,
    metrics: SyncMetrics,
    /// When set (and enabled), every cycle records a `sync_cycle` span
    /// tree here and rides the spans' contexts on `traceparent` headers,
    /// so the primary continues the same trace.
    spans: Option<Arc<SpanStore>>,
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Change signature of a file: `(mtime, length)` — the same key the
/// serving catalog uses. `None` when the file does not exist (or mtimes
/// are unavailable), which callers treat as "nothing installed".
fn file_signature(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    meta.modified().ok().map(|t| (t, meta.len()))
}

impl SyncEngine {
    /// An engine mirroring `upstream` (e.g. `http://10.0.0.1:7070`) into
    /// `dest`, which is created if missing. Pre-existing `*.snap` files
    /// in `dest` are adopted (checksummed lazily on first comparison),
    /// so a restarted replica re-downloads nothing that is current.
    pub fn new(upstream: &str, dest: impl Into<PathBuf>) -> Result<SyncEngine, String> {
        let upstream = Upstream::parse(upstream)?;
        let dest = dest.into();
        std::fs::create_dir_all(&dest)
            .map_err(|e| format!("creating mirror directory {}: {e}", dest.display()))?;
        let mut pairs = BTreeMap::new();
        if let Ok(entries) = std::fs::read_dir(&dest) {
            for entry in entries.flatten() {
                let path = entry.path();
                let stem = path.file_stem().and_then(|s| s.to_str());
                // Exactly `.snap` — the engine itself only ever writes
                // that spelling, and adopting `.SNAP` would desynchronize
                // from pair_path()'s lowercase install/delete target.
                let is_snap = path
                    .extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e == "snap");
                if let (true, Some(stem)) = (is_snap && path.is_file(), stem) {
                    if valid_pair_name(stem) {
                        pairs.insert(stem.to_owned(), PairSync::default());
                    }
                }
            }
        }
        Ok(SyncEngine {
            client: HttpClient::new(upstream, Duration::from_secs(30)),
            dest,
            pairs,
            legacy_routes: false,
            manifest_etag: None,
            manifest: Vec::new(),
            max_snapshot_bytes: DEFAULT_MAX_SNAPSHOT_BYTES,
            syncs: 0,
            last_attempt_unix: None,
            last_success_unix: None,
            last_error: None,
            metrics: SyncMetrics::default(),
            spans: None,
        })
    }

    /// Overrides the per-transfer size cap (default 8 GiB).
    pub fn with_max_snapshot_bytes(mut self, cap: u64) -> SyncEngine {
        self.max_snapshot_bytes = cap;
        self
    }

    /// Records every cycle's span tree into `store` and propagates the
    /// trace to the primary via `traceparent` headers. A disabled store
    /// (capacity 0) leaves the engine untraced.
    pub fn set_span_store(&mut self, store: Arc<SpanStore>) {
        self.spans = Some(store);
    }

    /// The upstream URL, for display.
    pub fn upstream(&self) -> &str {
        &self.client.upstream().display
    }

    /// The mirror directory.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Local path of one pair's snapshot.
    fn pair_path(&self, name: &str) -> PathBuf {
        self.dest.join(format!("{name}.snap"))
    }

    /// Content checksum of the locally installed file, computed at most
    /// once per file signature (so local deletion or replacement is
    /// detected) and streamed in chunks — a multi-GiB mirror is never
    /// buffered whole just to be compared.
    fn local_checksum(&mut self, name: &str) -> Option<u64> {
        let path = self.pair_path(name);
        let Some(signature) = file_signature(&path) else {
            // Nothing installed (any more). Drop the cached checksum
            // too: the follow-up transfer must not present it as an
            // If-None-Match validator, or a primary still serving those
            // exact bytes would 304 and nothing would be reinstalled.
            if let Some(state) = self.pairs.get_mut(name) {
                state.local = None;
            }
            return None;
        };
        if let Some((cached_sig, sum)) = self.pairs.get(name).and_then(|p| p.local) {
            if cached_sig == signature {
                return Some(sum);
            }
        }
        let mut file = std::fs::File::open(&path).ok()?;
        let sum = checksum_v2_stream(&mut file, signature.1).ok()?;
        self.pairs.entry(name.to_owned()).or_default().local = Some((signature, sum));
        Some(sum)
    }

    /// One full sync cycle. `Err` means the *manifest* could not be
    /// fetched or parsed (nothing was changed locally); per-pair
    /// failures are isolated into [`SyncOutcome::failed`].
    pub fn sync_once(&mut self) -> Result<SyncOutcome, String> {
        self.syncs += 1;
        self.metrics.attempts.inc();
        self.last_attempt_unix = Some(unix_now());
        let mut outcome = SyncOutcome::default();

        // One cycle = one trace. Each upstream GET carries the current
        // span's context as a `traceparent` header, so the primary's
        // request spans join this trace — `/v1/debug/traces/<id>` on
        // either daemon shows the same trace id.
        let tracer = self.spans.clone().filter(|s| s.enabled());
        let root = tracer.as_ref().map(|s| s.begin("sync_cycle", None));

        let manifest_span = tracer.as_ref().zip(root.as_ref()).map(|(store, root)| {
            let span = store.begin("fetch_manifest", Some(root.context()));
            self.client
                .set_header("traceparent", Some(&span.context().traceparent()));
            span
        });
        let fetched = self.fetch_manifest(&mut outcome);
        if let (Some(store), Some(mut span)) = (tracer.as_ref(), manifest_span) {
            span.attr_int("manifest_bytes", outcome.manifest_bytes);
            if let Err(e) = &fetched {
                span.attr_str("error", e);
            }
            store.finish(span);
        }
        match fetched {
            Ok(()) => {}
            Err(e) => {
                if let (Some(store), Some(mut root)) = (tracer.as_ref(), root) {
                    root.attr_str("error", &e);
                    store.finish(root);
                }
                self.metrics.failures.inc();
                self.last_error = Some(e.clone());
                return Err(e);
            }
        }
        self.last_error = None;

        let entries = self.manifest.clone();
        let now = Instant::now();
        for entry in &entries {
            let backing_off = self
                .pairs
                .get(&entry.name)
                .and_then(|p| p.next_attempt)
                .is_some_and(|t| t > now);
            if backing_off {
                outcome.skipped_backoff += 1;
                continue;
            }
            let Some(remote_sum) = entry.checksum else {
                // The primary could not read this pair's file this cycle
                // (transient): keep whatever we have, but a pair we never
                // mirrored is nothing — not an "unchanged" pair, and not
                // a bookkeeping entry that would later report a phantom
                // removal.
                if self.pair_path(&entry.name).exists() {
                    outcome.unchanged += 1;
                }
                continue;
            };
            if self.local_checksum(&entry.name) == Some(remote_sum) {
                let state = self.pairs.entry(entry.name.clone()).or_default();
                state.synced_generation = entry.generation;
                state.failures = 0;
                state.next_attempt = None;
                state.last_error = None;
                outcome.unchanged += 1;
                continue;
            }
            let pair_span = tracer.as_ref().zip(root.as_ref()).map(|(store, root)| {
                let mut span = store.begin("transfer_pair", Some(root.context()));
                span.attr_str("pair", &entry.name);
                self.client
                    .set_header("traceparent", Some(&span.context().traceparent()));
                span
            });
            let bytes_before = outcome.snapshot_bytes;
            let transfer = self.transfer_pair(entry, &mut outcome);
            if let (Some(store), Some(mut span)) = (tracer.as_ref(), pair_span) {
                span.attr_int("bytes", outcome.snapshot_bytes.saturating_sub(bytes_before));
                if let Err(why) = &transfer {
                    span.attr_str("error", why);
                }
                store.finish(span);
            }
            match transfer {
                Ok(installed) => {
                    // Record the signature + checksum of the bytes
                    // actually installed (the transfer's ETag), which may
                    // legitimately differ from the manifest's stale
                    // advertisement — clobbering them with the manifest
                    // value would force a byte-identical re-download
                    // next cycle.
                    let signature = installed
                        .is_some()
                        .then(|| file_signature(&self.pair_path(&entry.name)))
                        .flatten();
                    let state = self.pairs.entry(entry.name.clone()).or_default();
                    state.synced_generation = entry.generation;
                    state.failures = 0;
                    state.next_attempt = None;
                    state.last_error = None;
                    match installed {
                        Some(installed_sum) => {
                            state.local = signature.map(|sig| (sig, installed_sum));
                            outcome.updated.push(entry.name.clone());
                        }
                        // The primary 304'd against our local checksum:
                        // nothing was installed, so this is not an
                        // update (no reload, no generation bump).
                        None => outcome.unchanged += 1,
                    }
                }
                Err(why) => {
                    self.metrics.failures.inc();
                    let state = self.pairs.entry(entry.name.clone()).or_default();
                    state.failures += 1;
                    let delay = BACKOFF_BASE
                        .saturating_mul(1u32 << (state.failures - 1).min(16))
                        .min(BACKOFF_MAX);
                    state.next_attempt = Some(now + delay);
                    state.last_error = Some(why.clone());
                    outcome.failed.push((entry.name.clone(), why));
                }
            }
        }
        // Record the remote generation of every *tracked* pair for lag
        // reporting (a pair we could not even begin to mirror gets no
        // entry), then propagate deletions: local pairs the manifest no
        // longer lists are removed from disk.
        for entry in &entries {
            if let Some(state) = self.pairs.get_mut(&entry.name) {
                state.remote_generation = entry.generation;
            }
        }
        let listed: std::collections::BTreeSet<&str> =
            entries.iter().map(|e| e.name.as_str()).collect();
        let stale: Vec<String> = self
            .pairs
            .keys()
            .filter(|k| !listed.contains(k.as_str()))
            .cloned()
            .collect();
        for name in stale {
            let path = self.pair_path(&name);
            if !path.exists() {
                // Tracked but nothing on disk (e.g. a transfer that
                // never succeeded): forget it silently — reporting it
                // "removed" would trigger pointless rescans upstream.
                self.pairs.remove(&name);
                continue;
            }
            match std::fs::remove_file(&path) {
                Ok(()) => {
                    self.pairs.remove(&name);
                    outcome.removed.push(name);
                }
                Err(_) if !path.exists() => {
                    self.pairs.remove(&name);
                    outcome.removed.push(name);
                }
                Err(e) => {
                    outcome
                        .failed
                        .push((name, format!("cannot remove {}: {e}", path.display())));
                }
            }
        }
        for reject in &outcome.failed {
            eprintln!("sync: pair '{}' failed: {}", reject.0, reject.1);
        }
        if outcome.failed.is_empty() {
            self.last_success_unix = Some(unix_now());
        }
        self.metrics.pairs_backing_off.set(
            self.pairs
                .values()
                .filter(|p| p.next_attempt.is_some())
                .count() as u64,
        );
        if let (Some(store), Some(mut root)) = (tracer.as_ref(), root) {
            root.attr_int("updated", outcome.updated.len() as u64);
            root.attr_int("unchanged", outcome.unchanged as u64);
            root.attr_int("failed", outcome.failed.len() as u64);
            root.attr_int("removed", outcome.removed.len() as u64);
            store.finish(root);
        }
        Ok(outcome)
    }

    /// Fetches and parses the manifest, honouring the cached ETag.
    /// A pre-`/v1` primary 404s the versioned route; the engine falls
    /// back to the legacy spelling once and sticks with it (the parser
    /// accepts both body shapes either way).
    fn fetch_manifest(&mut self, outcome: &mut SyncOutcome) -> Result<(), String> {
        let path = if self.legacy_routes {
            "/pairs/manifest"
        } else {
            "/v1/pairs/manifest"
        };
        let mut response =
            self.client
                .get(path, self.manifest_etag.as_deref(), MAX_MANIFEST_BYTES)?;
        if response.status == 404 && !self.legacy_routes {
            self.legacy_routes = true;
            response = self.client.get(
                "/pairs/manifest",
                self.manifest_etag.as_deref(),
                MAX_MANIFEST_BYTES,
            )?;
        }
        match response.status {
            304 => Ok(()), // catalog unchanged: reuse the parsed manifest
            200 => {
                outcome.manifest_bytes += response.body.len() as u64;
                self.metrics.manifest_bytes.add(response.body.len() as u64);
                let text = std::str::from_utf8(&response.body)
                    .map_err(|_| "manifest is not UTF-8".to_owned())?;
                let (entries, rejected) = parse_manifest(text)?;
                for why in rejected {
                    eprintln!("sync: manifest from {}: {why}", self.upstream());
                }
                self.manifest = entries;
                self.manifest_etag = response.etag().map(str::to_owned);
                Ok(())
            }
            other => Err(format!(
                "manifest fetch returned HTTP {other}: {}",
                String::from_utf8_lossy(&response.body)
            )),
        }
    }

    /// Downloads one pair to a temp file, validates, and installs it.
    /// Returns the content checksum of the image actually installed, or
    /// `None` when the primary answered `304` (our copy was already
    /// current despite a stale manifest) and nothing was installed.
    fn transfer_pair(
        &mut self,
        entry: &ManifestEntry,
        outcome: &mut SyncOutcome,
    ) -> Result<Option<u64>, String> {
        let local_etag = self
            .pairs
            .get(&entry.name)
            .and_then(|p| p.local)
            .map(|(_, sum)| format!("{sum:016x}"));
        let path = if self.legacy_routes {
            format!("/pairs/{}/snapshot", entry.name)
        } else {
            format!("/v1/pairs/{}/snapshot", entry.name)
        };
        let response = self
            .client
            .get(&path, local_etag.as_deref(), self.max_snapshot_bytes)?;
        match response.status {
            304 => return Ok(None),
            200 => {}
            other => {
                return Err(format!(
                    "snapshot fetch returned HTTP {other}: {}",
                    String::from_utf8_lossy(&response.body)
                ))
            }
        }
        outcome.snapshot_bytes += response.body.len() as u64;
        self.metrics.snapshot_bytes.add(response.body.len() as u64);
        // The transfer's own ETag is authoritative when present — the
        // file may legitimately have changed on the primary between the
        // manifest poll and this fetch.
        let expected = match response.etag().map(|h| u64::from_str_radix(h, 16)) {
            Some(Ok(sum)) => sum,
            Some(Err(_)) => return Err("unparseable transfer ETag".into()),
            None => entry.checksum.expect("caller checked"),
        };
        // Checksum and v1 framing are validated on the bytes in hand —
        // a bad transfer is rejected before anything touches disk; the
        // v2 section table is validated off the temp file via mmap, so
        // the image is never duplicated in memory.
        let version = validate_bytes(&response.body, expected)?;
        let path = self.pair_path(&entry.name);
        let tmp = self
            .dest
            .join(format!(".{}.sync.tmp.{}", entry.name, std::process::id()));
        let install = || -> Result<(), String> {
            std::fs::write(&tmp, &response.body)
                .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            if version == FORMAT_VERSION_V2 {
                validate_v2_file(&tmp)?;
            }
            std::fs::rename(&tmp, &path)
                .map_err(|e| format!("installing {}: {e}", path.display()))?;
            Ok(())
        };
        install().inspect_err(|_| {
            std::fs::remove_file(&tmp).ok();
        })?;
        Ok(Some(expected))
    }

    /// A point-in-time snapshot of replication health.
    pub fn status(&self) -> ReplicationStatus {
        ReplicationStatus {
            upstream: self.upstream().to_owned(),
            syncs: self.syncs,
            last_attempt_unix: self.last_attempt_unix,
            last_success_unix: self.last_success_unix,
            last_error: self.last_error.clone(),
            pairs: self
                .pairs
                .iter()
                .map(|(name, p)| PairReplicationStatus {
                    name: name.clone(),
                    remote_generation: p.remote_generation,
                    synced_generation: p.synced_generation,
                    lag: p.remote_generation.saturating_sub(p.synced_generation),
                    failures: u64::from(p.failures),
                    backing_off: p.next_attempt.is_some(),
                    last_error: p.last_error.clone(),
                })
                .collect(),
        }
    }

    /// The engine's transfer counters. Clone the `Arc`s out of the
    /// returned struct to register them in a metrics registry; they stay
    /// live for the engine's whole lifetime.
    pub fn metrics(&self) -> &SyncMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    #[test]
    fn parses_and_filters_manifests() {
        let (entries, rejected) = parse_manifest(
            r#"{"pairs":[
                {"name":"good","format":1,"generation":2,"bytes":10,"checksum":"ff"},
                {"name":"../evil","format":1,"generation":1,"bytes":10,"checksum":"00"},
                {"name":"nosum","format":2,"generation":3,"bytes":10},
                {"name":"badsum","format":1,"generation":1,"bytes":10,"checksum":"zz"}]}"#,
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "good");
        assert_eq!(entries[0].checksum, Some(0xff));
        assert_eq!(entries[1].name, "nosum");
        assert_eq!(entries[1].checksum, None);
        assert_eq!(rejected.len(), 2, "{rejected:?}");
        assert!(rejected[0].contains("../evil"), "{rejected:?}");

        assert!(parse_manifest("{}").is_err());
        assert!(parse_manifest("not json").is_err());
    }

    /// The `/v1` manifest arrives wrapped in the `{"data":…}` envelope;
    /// both that and the bare pre-v1 shape must parse identically.
    #[test]
    fn parses_enveloped_manifests() {
        let bare =
            r#"{"pairs":[{"name":"p","format":2,"generation":1,"bytes":9,"checksum":"aa"}]}"#;
        let enveloped = format!("{{\"data\":{bare}}}");
        let (a, _) = parse_manifest(bare).unwrap();
        let (b, _) = parse_manifest(&enveloped).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].checksum, Some(0xaa));
    }

    #[test]
    fn validation_rejects_garbage_and_wrong_kinds() {
        let dir = std::env::temp_dir().join("paris_replica_validate_unit");
        std::fs::create_dir_all(&dir).unwrap();

        // Arbitrary bytes: right checksum, no snapshot framing.
        let garbage = dir.join("garbage.bin");
        std::fs::write(&garbage, b"not a snapshot at all").unwrap();
        let sum = checksum_v2(b"not a snapshot at all");
        let err = validate_snapshot_file(&garbage, sum).unwrap_err();
        assert!(err.contains("framing"), "{err}");
        // Wrong advertised checksum fails before framing is even looked at.
        let err = validate_snapshot_file(&garbage, sum ^ 1).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");

        // A well-formed v1 snapshot of the wrong kind (single KB).
        let kb = {
            let mut b = paris_kb::KbBuilder::new("k");
            b.add_fact("http://a/x", "http://a/r", "http://a/y");
            b.build()
        };
        let kb_snap = dir.join("kb.snap");
        snapshot::save_kb(&kb, &kb_snap).unwrap();
        let sum = checksum_v2(&std::fs::read(&kb_snap).unwrap());
        let err = validate_snapshot_file(&kb_snap, sum).unwrap_err();
        assert!(err.contains("aligned-pair"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    /// A pre-`/v1` primary 404s the versioned manifest route; the
    /// engine must fall back to the legacy spellings (manifest *and*
    /// snapshot) and keep mirroring.
    #[test]
    fn falls_back_to_legacy_routes_on_a_pre_v1_primary() {
        // Garbage bytes under a correct checksum: reaching the transfer
        // stage (and its framing rejection) through the legacy route is
        // what proves the fallback fetched the snapshot body.
        let snapshot_body = b"not a real snapshot".to_vec();
        let checksum = checksum_v2(&snapshot_body);
        let manifest = format!(
            r#"{{"pairs":[{{"name":"p","format":1,"generation":1,"bytes":{},"checksum":"{checksum:016x}"}}]}}"#,
            snapshot_body.len()
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let primary = std::thread::spawn(move || {
            let mut seen = Vec::new();
            // v1 manifest (404), legacy manifest, legacy snapshot.
            for _ in 0..3 {
                let (mut conn, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                seen.push(line.trim_end().to_owned());
                loop {
                    let mut h = String::new();
                    reader.read_line(&mut h).unwrap();
                    if h == "\r\n" || h.is_empty() {
                        break;
                    }
                }
                let (status, body): (&str, &[u8]) = if line.starts_with("GET /v1/") {
                    ("404 Not Found", b"{\"error\":\"no such route\"}")
                } else if line.starts_with("GET /pairs/manifest") {
                    ("200 OK", manifest.as_bytes())
                } else {
                    ("200 OK", &snapshot_body)
                };
                conn.write_all(
                    format!(
                        "HTTP/1.1 {status}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    )
                    .as_bytes(),
                )
                .unwrap();
                conn.write_all(body).unwrap();
            }
            seen
        });

        let dir = std::env::temp_dir().join("paris_replica_legacy_fallback_unit");
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = SyncEngine::new(&format!("http://{addr}"), &dir).unwrap();
        let outcome = engine.sync_once().unwrap();
        let seen = primary.join().unwrap();
        assert!(seen[0].starts_with("GET /v1/pairs/manifest"), "{seen:?}");
        assert!(seen[1].starts_with("GET /pairs/manifest"), "{seen:?}");
        assert!(seen[2].starts_with("GET /pairs/p/snapshot"), "{seen:?}");
        // The transfer reached validation (and was rightly rejected —
        // the body is not a snapshot); the routes are what's under test.
        assert_eq!(outcome.failed.len(), 1, "{outcome:?}");
        assert!(outcome.failed[0].1.contains("framing"), "{outcome:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A rogue primary advertising a checksum its body does not match:
    /// the transfer must be rejected, nothing installed, no temp litter.
    #[test]
    fn corrupted_transfer_is_rejected_without_install() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let manifest = r#"{"pairs":[{"name":"evil","format":1,"generation":1,"bytes":7,"checksum":"0000000000000bad"}]}"#;
        let rogue = std::thread::spawn(move || {
            // Serve two requests (manifest, then the snapshot) then exit.
            for _ in 0..2 {
                let (mut conn, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(conn.try_clone().unwrap());
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let body: &[u8] = if line.starts_with("GET /v1/pairs/manifest") {
                    manifest.as_bytes()
                } else {
                    b"garbage"
                };
                loop {
                    let mut h = String::new();
                    reader.read_line(&mut h).unwrap();
                    if h == "\r\n" || h.is_empty() {
                        break;
                    }
                }
                conn.write_all(
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    )
                    .as_bytes(),
                )
                .unwrap();
                conn.write_all(body).unwrap();
            }
        });

        let dir = std::env::temp_dir().join("paris_replica_corrupt_unit");
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = SyncEngine::new(&format!("http://{addr}"), &dir).unwrap();
        let outcome = engine.sync_once().unwrap();
        assert!(outcome.updated.is_empty());
        assert_eq!(outcome.failed.len(), 1, "{outcome:?}");
        assert!(outcome.failed[0].1.contains("checksum"), "{outcome:?}");
        // Nothing installed, and the temp file was cleaned up.
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // The failing pair is now backing off.
        let status = engine.status();
        assert_eq!(status.pairs.len(), 1);
        assert!(status.pairs[0].last_error.is_some());
        rogue.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
