//! A tiny self-contained timing harness.
//!
//! The workspace builds offline with zero external dependencies, so the
//! benches use this instead of criterion: auto-calibrated repetition
//! counts, warm-up, and min/median/mean reporting. Results are printed as
//! one aligned row per benchmark, suitable for eyeballing regressions.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Number of timed runs.
    pub runs: usize,
    /// Fastest run.
    pub min: Duration,
    /// Median run.
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl Measurement {
    /// One aligned report row.
    pub fn row(&self) -> String {
        format!(
            "{:<44} {:>12} {:>12} {:>12}   ({} runs)",
            self.name,
            fmt_duration(self.min),
            fmt_duration(self.median),
            fmt_duration(self.mean),
            self.runs,
        )
    }
}

/// Formats a duration with an adaptive unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Prints the header matching [`Measurement::row`].
pub fn print_header() {
    println!(
        "{:<44} {:>12} {:>12} {:>12}",
        "benchmark", "min", "median", "mean"
    );
}

/// Times `f`, choosing a repetition count so the whole measurement takes
/// roughly `budget` (but at least `min_runs` runs), and prints the row.
pub fn bench_with<R>(
    name: &str,
    budget: Duration,
    min_runs: usize,
    mut f: impl FnMut() -> R,
) -> Measurement {
    // Warm-up + calibration run.
    let t0 = Instant::now();
    black_box(f());
    let estimate = t0.elapsed().max(Duration::from_nanos(50));
    let runs = ((budget.as_secs_f64() / estimate.as_secs_f64()) as usize).clamp(min_runs, 10_000);

    let mut samples: Vec<Duration> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    let m = Measurement {
        name: name.to_owned(),
        runs,
        min: samples[0],
        median: samples[runs / 2],
        mean: total / runs as u32,
    };
    println!("{}", m.row());
    m
}

/// [`bench_with`] under the default budget (~300 ms per benchmark).
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Measurement {
    bench_with(name, Duration::from_millis(300), 5, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_orders_hold() {
        let m = bench_with("noop", Duration::from_millis(5), 5, || 1 + 1);
        assert!(m.runs >= 5);
        assert!(m.min <= m.median);
        assert!(m.min <= m.mean);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with(" s"));
    }
}
