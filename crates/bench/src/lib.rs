//! Shared harness for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the common piece:
//! running PARIS for 1..k iterations and evaluating the instance alignment
//! after each, which is how the per-iteration rows of Tables 3 and 5 are
//! produced. (Runs are deterministic, so re-running with a smaller
//! iteration cap reproduces the prefix of a longer run exactly.)

#![forbid(unsafe_code)]

pub mod timing;

use paris_core::{Aligner, AlignmentResult, ParisConfig};
use paris_datagen::DatasetPair;
use paris_eval::{evaluate_instances, IterationRow};

/// Runs the aligner `max_iters` times with increasing iteration caps and
/// evaluates instances after each — one [`IterationRow`] per iteration —
/// returning the rows together with the final run's full result.
pub fn per_iteration_rows<'a>(
    pair: &'a DatasetPair,
    base: &ParisConfig,
    max_iters: usize,
) -> (Vec<IterationRow>, AlignmentResult<'a>) {
    let mut rows = Vec::new();
    let mut last: Option<AlignmentResult<'a>> = None;
    for k in 1..=max_iters {
        let config = ParisConfig {
            max_iterations: k,
            convergence_change: 0.0, // never stop early: we want exactly k
            ..base.clone()
        };
        let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
        let stats = result
            .iterations
            .last()
            .expect("at least one iteration ran");
        rows.push(IterationRow {
            iteration: k,
            change: stats.changed_fraction,
            seconds: stats.instance_seconds + stats.subrelation_seconds,
            instances: evaluate_instances(&result, &pair.gold),
        });
        last = Some(result);
    }
    (rows, last.expect("max_iters >= 1"))
}

/// Formats a percentage with one decimal, as the paper's tables print.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a section header for bench output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;
    use paris_datagen::persons::{generate, PersonsConfig};

    #[test]
    fn per_iteration_rows_produces_one_row_per_iteration() {
        let pair = generate(&PersonsConfig {
            num_persons: 20,
            ..Default::default()
        });
        let (rows, result) = per_iteration_rows(&pair, &ParisConfig::default(), 3);
        assert_eq!(rows.len(), 3);
        assert_eq!(result.iterations.len(), 3);
        // Precision should already be perfect on the clean data.
        assert_eq!(rows[2].instances.precision(), 1.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.905), "90.5%");
    }
}
