//! Table 3: yago–DBpedia alignment over iterations 1–4 (paper §6.4).
//!
//! Paper shape: instance precision/recall rise from 86 %/69 % to 90 %/73 %
//! and plateau by iteration 3–4 (change-to-previous falls 12.4 % → 0.3 %);
//! relation alignments number ~30 (yago ⊆ DBpedia, ~100 % precision) and
//! ~150 (DBpedia ⊆ yago, ~92 %); class alignment runs once at the end.
//!
//! Run: `cargo run --release -p paris-bench --bin table3`

use paris_bench::{pct, per_iteration_rows, section};
use paris_core::ParisConfig;
use paris_datagen::encyclopedia::{generate, EncyclopediaConfig};
use paris_eval::{
    evaluate_classes_1to2, evaluate_classes_2to1, evaluate_relations, iteration_table,
};

fn main() {
    println!("Table 3 — yago-like vs DBpedia-like over iterations 1–4");
    println!("paper: P 86→90%, R 69→73%, change 12.4%→0.3%\n");

    let pair = generate(&EncyclopediaConfig::default());
    let (rows, result) = per_iteration_rows(&pair, &ParisConfig::default(), 4);

    section("instances per iteration");
    print!("{}", iteration_table(&rows));

    section("relations (final iteration, maximal assignment)");
    let (rel_12, rel_21) = evaluate_relations(&result, &pair.gold);
    println!(
        "  {} ⊆ {}: {:>3} judged, precision {}",
        pair.kb1.name(),
        pair.kb2.name(),
        rel_12.num(),
        pct(rel_12.counts.precision())
    );
    println!(
        "  {} ⊆ {}: {:>3} judged, precision {}",
        pair.kb2.name(),
        pair.kb1.name(),
        rel_21.num(),
        pct(rel_21.counts.precision())
    );

    section("classes (computed after the fixed point, threshold 0.4)");
    let c12 = evaluate_classes_1to2(&result, &pair.gold, 0.4);
    let c21 = evaluate_classes_2to1(&result, &pair.gold, 0.4);
    let n12 = result.classes.above_1to2(0.4).count();
    let n21 = result.classes.above_2to1(0.4).count();
    println!(
        "  {} ⊆ {}: {} assignments, precision {}",
        pair.kb1.name(),
        pair.kb2.name(),
        n12,
        pct(c12.precision())
    );
    println!(
        "  {} ⊆ {}: {} assignments, precision {}",
        pair.kb2.name(),
        pair.kb1.name(),
        n21,
        pct(c21.precision())
    );
    println!("  class pass took {:.2}s", result.class_seconds);
}
