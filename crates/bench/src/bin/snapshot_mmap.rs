//! Zero-copy snapshot benchmark: the acceptance check for the v2 mmap
//! arena (CI gate `snapshot_mmap`).
//!
//! On a generated `movies` pair (default scale 1600), measures:
//!   1. **v1 full decode** — what `paris serve` pays to load a v1
//!      snapshot: checksum + per-record decode + interning + adjacency
//!      rebuild;
//!   2. **v2 open** — validate the section table and checksums, map the
//!      file, decode nothing;
//!   3. **query latency** on both representations, over the same
//!      request mix (`sameas` lookup + neighbor rendering).
//!
//! Fails (exit 1) unless the v2 open is at least 25× faster than the v1
//! decode, the view queries stay within noise of the decoded ones
//! (≤ 3× — hash-map lookups vs. binary search over mapped bytes), and
//! every answer is bit-identical between the two paths.

use std::time::{Duration, Instant};

use paris_bench::timing::fmt_duration;
use paris_core::{
    AlignedPairSnapshot, Aligner, MappedPairSnapshot, OwnedAlignment, PairImage, PairSide,
    ParisConfig,
};
use paris_datagen::movies::{generate, MoviesConfig};

fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("at least one run")
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1600);
    let dir = std::env::temp_dir().join("paris_snapshot_mmap_bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let v1_path = dir.join("pair_v1.snap");
    let v2_path = dir.join("pair_v2.snap");

    println!("dataset: movies, scale {scale}");
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let snap = {
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let owned = OwnedAlignment::from_result(&result);
        drop(result);
        AlignedPairSnapshot::new(pair.kb1.clone(), pair.kb2.clone(), owned)
    };
    snap.save(&v1_path).expect("write v1");
    MappedPairSnapshot::save_v2(&snap, &v2_path).expect("write v2");
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    println!("v1 size: {:>12} bytes", size(&v1_path));
    println!(
        "v2 size: {:>12} bytes (stores the adjacency v1 rebuilds per load)",
        size(&v2_path)
    );

    // 1. v1 full decode. Loads are milliseconds-to-tens-of-ms, so take
    //    the min over several runs to shed scheduler noise.
    let decode = min_time(5, || {
        let s = AlignedPairSnapshot::load(&v1_path).expect("load v1");
        std::hint::black_box(s.alignment.num_instance_pairs());
    });
    println!("v1 full decode (min of 5):     {}", fmt_duration(decode));

    // 2. v2 open: O(validation scan), no decoding, no per-record allocation.
    let open = min_time(20, || {
        let m = MappedPairSnapshot::open(&v2_path).expect("open v2");
        std::hint::black_box(m.alignment().num_instance_pairs());
    });
    println!("v2 open (min of 20):           {}", fmt_duration(open));
    let speedup = decode.as_secs_f64() / open.as_secs_f64();
    println!("open speedup:                  {speedup:.1}×");

    // 3. Queries: identical answers, comparable latency. The sample is
    //    every aligned instance (sameas both ways) plus its neighbor
    //    rendering — the daemon's two hot read paths.
    let decoded = PairImage::load(&v1_path).expect("load v1 image");
    let mapped = PairImage::load(&v2_path).expect("open v2 image");
    assert!(
        mapped.is_mapped() || cfg!(not(unix)),
        "v2 must serve mmapped on unix"
    );

    let sample: Vec<String> = match &decoded {
        PairImage::Decoded(s) => s
            .alignment
            .instance_pairs(&s.kb1)
            .into_iter()
            .filter_map(|(x, _, _)| s.kb1.iri(x).map(|i| i.as_str().to_owned()))
            .collect(),
        PairImage::Mapped(_) => unreachable!("v1 loads decoded"),
    };
    println!("query sample:                  {} instances", sample.len());

    let run_queries = |img: &PairImage| -> u64 {
        let mut fingerprint = 0u64;
        for iri in &sample {
            let e = img
                .entity_by_iri(PairSide::Kb1, iri)
                .expect("sampled IRI resolves");
            if let Some((m, p)) = img.best_match_from(PairSide::Kb1, e) {
                let matched = img.entity_iri(PairSide::Kb2, m).unwrap_or_default();
                fingerprint = fingerprint
                    .wrapping_mul(31)
                    .wrapping_add(matched.len() as u64)
                    .wrapping_add(p.to_bits());
            }
            for fact in img.facts_page(PairSide::Kb1, e, 0, 8) {
                fingerprint = fingerprint
                    .wrapping_mul(31)
                    .wrapping_add(fact.value.len() as u64)
                    .wrapping_add(fact.functionality.to_bits());
            }
        }
        fingerprint
    };

    // Bit-identical answers first (also warms both paths).
    let fp_decoded = run_queries(&decoded);
    let fp_mapped = run_queries(&mapped);
    assert_eq!(
        fp_decoded, fp_mapped,
        "v2 views must answer bit-identically to the v1 decode path"
    );
    for iri in sample.iter().take(200) {
        let e1 = decoded.entity_by_iri(PairSide::Kb1, iri).unwrap();
        let e2 = mapped.entity_by_iri(PairSide::Kb1, iri).unwrap();
        assert_eq!(e1, e2, "{iri}");
        assert_eq!(
            decoded.best_match_from(PairSide::Kb1, e1),
            mapped.best_match_from(PairSide::Kb1, e2),
            "{iri}"
        );
        assert_eq!(
            decoded.facts_page(PairSide::Kb1, e1, 0, 50),
            mapped.facts_page(PairSide::Kb1, e2, 0, 50),
            "{iri}"
        );
    }
    println!("answers:                       bit-identical across formats");

    let q_decoded = min_time(5, || {
        std::hint::black_box(run_queries(&decoded));
    });
    let q_mapped = min_time(5, || {
        std::hint::black_box(run_queries(&mapped));
    });
    let ratio = q_mapped.as_secs_f64() / q_decoded.as_secs_f64();
    println!("queries, decoded (min of 5):   {}", fmt_duration(q_decoded));
    println!("queries, mapped  (min of 5):   {}", fmt_duration(q_mapped));
    println!("query ratio (mapped/decoded):  {ratio:.2}×");

    std::fs::remove_dir_all(&dir).ok();
    let mut failed = false;
    if speedup < 25.0 {
        eprintln!("FAIL: v2 open must be ≥ 25× faster than v1 full decode (got {speedup:.1}×)");
        failed = true;
    }
    if ratio > 3.0 {
        eprintln!("FAIL: mapped queries must stay within noise of decoded (≤ 3×, got {ratio:.2}×)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: open ≥ 25× faster, queries within noise, answers identical");
}
