//! Request-throughput benchmark for the serving daemon.
//!
//! Builds an aligned `movies` snapshot in memory, starts the daemon on an
//! ephemeral port, and hammers `GET /sameas` from several client threads
//! over keep-alive connections, then over one-shot connections — the two
//! traffic shapes a production deployment sees (pooled upstreams vs.
//! cold clients). Each client records per-request latency into its own
//! `paris_obs::Histogram`; the per-client histograms are merged for the
//! p50/p90/p99 report, so the measurement path is the same mergeable
//! fixed-bucket structure the daemon itself exports on `/v1/metrics`.
//!
//! The last line of output is a single machine-readable JSON object
//! (req/s and latency quantiles for both phases) for tracking runs over
//! time.
//!
//! Usage: `serve_throughput [scale] [clients] [requests-per-client]`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use paris_core::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_obs::{Histogram, HistogramSnapshot};
use paris_server::{Server, ServerConfig};

/// Reads one HTTP response off the stream, returning the status code.
fn read_response(reader: &mut BufReader<TcpStream>) -> u16 {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    status
}

/// Merges per-client histograms into one snapshot.
fn merged(histograms: &[Histogram]) -> HistogramSnapshot {
    let mut combined = histograms[0].snapshot();
    for h in &histograms[1..] {
        combined.merge(&h.snapshot());
    }
    combined
}

fn print_latency(label: &str, snap: &HistogramSnapshot) {
    println!(
        "{label} latency: p50 {} µs, p90 {} µs, p99 {} µs, max {} µs (mean {:.0} µs)",
        snap.quantile(0.50),
        snap.quantile(0.90),
        snap.quantile(0.99),
        snap.max,
        snap.mean(),
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);

    println!("dataset: movies, scale {scale}; {clients} clients × {per_client} requests");
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let iris: Vec<String> = result
        .instance_pairs()
        .iter()
        .filter_map(|&(x, _, _)| pair.kb1.iri(x).map(|i| i.as_str().to_owned()))
        .collect();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    assert!(!iris.is_empty());

    let server = Server::bind(
        AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: clients,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    // --- keep-alive: one connection per client, pipelined sequentially.
    let keep_alive_hists: Vec<Histogram> = (0..clients).map(|_| Histogram::new()).collect();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (c, hist) in keep_alive_hists.iter().enumerate() {
            let iris = &iris;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                for i in 0..per_client {
                    let iri = &iris[(c * per_client + i * 31) % iris.len()];
                    let request = format!("GET /sameas?iri={iri} HTTP/1.1\r\nHost: b\r\n\r\n");
                    let t = Instant::now();
                    writer.write_all(request.as_bytes()).expect("send");
                    assert_eq!(read_response(&mut reader), 200);
                    hist.record(t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
            });
        }
    });
    let keep_alive = t0.elapsed();
    let keep_alive_total = (clients * per_client) as f64;
    let keep_alive_rps = keep_alive_total / keep_alive.as_secs_f64();
    println!(
        "keep-alive:  {keep_alive_total:>8} requests in {:.2}s → {keep_alive_rps:>9.0} req/s",
        keep_alive.as_secs_f64(),
    );
    let keep_alive_snap = merged(&keep_alive_hists);
    assert_eq!(keep_alive_snap.count, clients as u64 * per_client as u64);
    print_latency("keep-alive", &keep_alive_snap);

    // --- one-shot: a fresh connection per request (cold clients).
    let oneshot_per_client = per_client / 10;
    let oneshot_hists: Vec<Histogram> = (0..clients).map(|_| Histogram::new()).collect();
    let t1 = Instant::now();
    std::thread::scope(|scope| {
        for (c, hist) in oneshot_hists.iter().enumerate() {
            let iris = &iris;
            scope.spawn(move || {
                for i in 0..oneshot_per_client {
                    let iri = &iris[(c + i * 17) % iris.len()];
                    let t = Instant::now();
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut writer = stream.try_clone().expect("clone stream");
                    let mut reader = BufReader::new(stream);
                    let request = format!(
                        "GET /sameas?iri={iri} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"
                    );
                    writer.write_all(request.as_bytes()).expect("send");
                    assert_eq!(read_response(&mut reader), 200);
                    hist.record(t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
            });
        }
    });
    let oneshot = t1.elapsed();
    let oneshot_total = (clients * oneshot_per_client) as f64;
    let oneshot_rps = oneshot_total / oneshot.as_secs_f64();
    println!(
        "one-shot:    {oneshot_total:>8} requests in {:.2}s → {oneshot_rps:>9.0} req/s",
        oneshot.as_secs_f64(),
    );
    let oneshot_snap = merged(&oneshot_hists);
    print_latency("one-shot", &oneshot_snap);

    handle.shutdown();

    println!(
        "{{\"bench\":\"serve_throughput\",\"scale\":{scale},\"clients\":{clients},\
         \"per_client\":{per_client},\
         \"keep_alive_req_per_s\":{keep_alive_rps:.0},\
         \"keep_alive_p50_us\":{},\"keep_alive_p90_us\":{},\
         \"keep_alive_p99_us\":{},\"keep_alive_max_us\":{},\
         \"one_shot_req_per_s\":{oneshot_rps:.0},\
         \"one_shot_p50_us\":{},\"one_shot_p90_us\":{},\
         \"one_shot_p99_us\":{},\"one_shot_max_us\":{}}}",
        keep_alive_snap.quantile(0.50),
        keep_alive_snap.quantile(0.90),
        keep_alive_snap.quantile(0.99),
        keep_alive_snap.max,
        oneshot_snap.quantile(0.50),
        oneshot_snap.quantile(0.90),
        oneshot_snap.quantile(0.99),
        oneshot_snap.max,
    );
}
