//! Request-throughput benchmark for the serving daemon.
//!
//! Builds an aligned `movies` snapshot in memory, starts the daemon on an
//! ephemeral port, and hammers `GET /sameas` from several client threads
//! over keep-alive connections, then over one-shot connections — the two
//! traffic shapes a production deployment sees (pooled upstreams vs.
//! cold clients).
//!
//! Usage: `serve_throughput [scale] [clients] [requests-per-client]`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use paris_core::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_server::{Server, ServerConfig};

/// Reads one HTTP response off the stream, returning the status code.
fn read_response(reader: &mut BufReader<TcpStream>) -> u16 {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    status
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);

    println!("dataset: movies, scale {scale}; {clients} clients × {per_client} requests");
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let iris: Vec<String> = result
        .instance_pairs()
        .iter()
        .filter_map(|&(x, _, _)| pair.kb1.iri(x).map(|i| i.as_str().to_owned()))
        .collect();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    assert!(!iris.is_empty());

    let server = Server::bind(
        AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: clients,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    // --- keep-alive: one connection per client, pipelined sequentially.
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let iris = &iris;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                for i in 0..per_client {
                    let iri = &iris[(c * per_client + i * 31) % iris.len()];
                    let request = format!("GET /sameas?iri={iri} HTTP/1.1\r\nHost: b\r\n\r\n");
                    writer.write_all(request.as_bytes()).expect("send");
                    assert_eq!(read_response(&mut reader), 200);
                }
            });
        }
    });
    let keep_alive = t0.elapsed();
    let total = (clients * per_client) as f64;
    println!(
        "keep-alive:  {total:>8} requests in {:.2}s → {:>9.0} req/s",
        keep_alive.as_secs_f64(),
        total / keep_alive.as_secs_f64()
    );

    // --- one-shot: a fresh connection per request (cold clients).
    let oneshot_per_client = per_client / 10;
    let t1 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let iris = &iris;
            scope.spawn(move || {
                for i in 0..oneshot_per_client {
                    let iri = &iris[(c + i * 17) % iris.len()];
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut writer = stream.try_clone().expect("clone stream");
                    let mut reader = BufReader::new(stream);
                    let request = format!(
                        "GET /sameas?iri={iri} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n"
                    );
                    writer.write_all(request.as_bytes()).expect("send");
                    assert_eq!(read_response(&mut reader), 200);
                }
            });
        }
    });
    let oneshot = t1.elapsed();
    let total = (clients * oneshot_per_client) as f64;
    println!(
        "one-shot:    {total:>8} requests in {:.2}s → {:>9.0} req/s",
        oneshot.as_secs_f64(),
        total / oneshot.as_secs_f64()
    );

    handle.shutdown();
}
