//! §6.3 design-alternative experiment 3: negative evidence (Eq. 14) and
//! the normalized string measure.
//!
//! "We allowed the algorithm to take into account negative evidence …
//! This made PARIS give up all matches between restaurants. The reason …
//! most entities have slightly different attribute values (e.g., a phone
//! number '213/467-1108' instead of '213-467-1108'). Therefore, we plugged
//! in a different string equality measure \[normalized]. This increased
//! precision to 100 %, but decreased recall to 70 %."
//!
//! Run: `cargo run --release -p paris-bench --bin negative_evidence`

use paris_core::{Aligner, ParisConfig};
use paris_datagen::restaurants::{generate, RestaurantsConfig};
use paris_eval::evaluate_instances;
use paris_literals::LiteralSimilarity;

fn main() {
    println!("Negative-evidence experiment on restaurants (§6.3, experiment 3)");
    println!("paper: Eq.14+identity → all matches lost; Eq.14+normalized → P=100%, R=70%\n");

    let pair = generate(&RestaurantsConfig::default());
    println!(
        "{:>34} {:>8} {:>8} {:>8} {:>9}",
        "configuration", "P", "R", "F", "#matches"
    );

    let runs: [(&str, bool, LiteralSimilarity); 4] = [
        (
            "Eq.13 + identity (default)",
            false,
            LiteralSimilarity::Identity,
        ),
        ("Eq.14 + identity", true, LiteralSimilarity::Identity),
        ("Eq.13 + normalized", false, LiteralSimilarity::Normalized),
        ("Eq.14 + normalized", true, LiteralSimilarity::Normalized),
    ];
    for (label, negative, sim) in runs {
        let config = ParisConfig::default()
            .with_negative_evidence(negative)
            .with_literal_similarity(sim);
        let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
        let counts = evaluate_instances(&result, &pair.gold);
        let matches = result.instance_pairs().len();
        println!(
            "{:>34} {:>7.1}% {:>7.1}% {:>7.1}% {:>9}",
            label,
            counts.precision() * 100.0,
            counts.recall() * 100.0,
            counts.f1() * 100.0,
            matches
        );
    }
}
