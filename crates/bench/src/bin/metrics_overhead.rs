//! Telemetry-overhead gate for the serving daemon.
//!
//! The observability layer (per-route counters, latency histograms,
//! request ids) sits on every request's hot path, so it must be cheap
//! enough to leave on in production. This bench serves the same aligned
//! `movies` snapshot from three daemons — telemetry disabled, telemetry
//! enabled (request log off, the production default), and telemetry
//! enabled with JSON request logging to a sink — and hammers each with
//! identical keep-alive `GET /sameas` rounds, interleaved so ambient
//! machine noise hits every variant equally. The gate compares the
//! per-variant *median* req/s: telemetry-on must stay within
//! `MAX_OVERHEAD_PCT` (default 3%) of telemetry-off, or the process
//! exits non-zero. The JSON-logging number is reported but not gated
//! (log volume is an operator choice).
//!
//! Usage: `metrics_overhead [scale] [clients] [requests-per-client] [rounds]`
//! Env:   `METRICS_OVERHEAD_MAX_PCT` overrides the gate threshold.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

use paris_core::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_server::{LogFormat, Server, ServerConfig, ServerHandle};

/// Reads one HTTP response off the stream, returning the status code.
fn read_response(reader: &mut BufReader<TcpStream>) -> u16 {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    status
}

/// One keep-alive round against `addr`: every client drives its own
/// connection through `per_client` sequential requests. Returns req/s.
fn round(addr: std::net::SocketAddr, iris: &[String], clients: usize, per_client: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                for i in 0..per_client {
                    let iri = &iris[(c * per_client + i * 31) % iris.len()];
                    let request = format!("GET /sameas?iri={iri} HTTP/1.1\r\nHost: b\r\n\r\n");
                    writer.write_all(request.as_bytes()).expect("send");
                    assert_eq!(read_response(&mut reader), 200);
                }
            });
        }
    });
    (clients * per_client) as f64 / t0.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite req/s"));
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let max_overhead_pct: f64 = std::env::var("METRICS_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    println!(
        "dataset: movies, scale {scale}; {clients} clients × {per_client} requests × \
         {rounds} rounds per variant; gate {max_overhead_pct}%"
    );
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let iris: Vec<String> = result
        .instance_pairs()
        .iter()
        .filter_map(|&(x, _, _)| pair.kb1.iri(x).map(|i| i.as_str().to_owned()))
        .collect();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    assert!(!iris.is_empty());

    let bind = |telemetry: bool, log_format: LogFormat| -> ServerHandle {
        let server = Server::bind(
            AlignedPairSnapshot::new(pair.kb1.clone(), pair.kb2.clone(), owned.clone()),
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: clients,
                telemetry,
                log_format,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        if log_format != LogFormat::Off {
            // The gate measures instrumentation cost, not the terminal's
            // write speed — drain log lines into the void.
            server.set_log_output(Box::new(std::io::sink()));
        }
        server.spawn().expect("spawn server")
    };
    let off = bind(false, LogFormat::Off);
    let on = bind(true, LogFormat::Off);
    let logged = bind(true, LogFormat::Json);

    // Warm each daemon (first-touch page faults, allocator warm-up)
    // before any measured round.
    for handle in [&off, &on, &logged] {
        round(handle.addr(), &iris, clients, per_client.min(200));
    }

    let mut off_rps = Vec::new();
    let mut on_rps = Vec::new();
    let mut logged_rps = Vec::new();
    for r in 0..rounds {
        // Interleave variants inside every round: drift (thermal,
        // scheduler) then biases all three equally.
        off_rps.push(round(off.addr(), &iris, clients, per_client));
        on_rps.push(round(on.addr(), &iris, clients, per_client));
        logged_rps.push(round(logged.addr(), &iris, clients, per_client));
        println!(
            "round {r}: off {:>9.0} req/s, on {:>9.0} req/s, on+jsonlog {:>9.0} req/s",
            off_rps[r], on_rps[r], logged_rps[r],
        );
    }
    off.shutdown();
    on.shutdown();
    logged.shutdown();

    let off_median = median(&mut off_rps);
    let on_median = median(&mut on_rps);
    let logged_median = median(&mut logged_rps);
    let overhead_pct = (off_median - on_median) / off_median * 100.0;
    let logged_pct = (off_median - logged_median) / off_median * 100.0;
    println!(
        "median: telemetry off {off_median:.0} req/s, on {on_median:.0} req/s \
         ({overhead_pct:+.2}%), on+jsonlog {logged_median:.0} req/s ({logged_pct:+.2}%)"
    );
    println!(
        "{{\"bench\":\"metrics_overhead\",\"scale\":{scale},\"clients\":{clients},\
         \"per_client\":{per_client},\"rounds\":{rounds},\
         \"off_req_per_s\":{off_median:.0},\"on_req_per_s\":{on_median:.0},\
         \"jsonlog_req_per_s\":{logged_median:.0},\
         \"overhead_pct\":{overhead_pct:.2},\"jsonlog_overhead_pct\":{logged_pct:.2},\
         \"max_overhead_pct\":{max_overhead_pct}}}"
    );

    if overhead_pct > max_overhead_pct {
        eprintln!(
            "FAIL: telemetry costs {overhead_pct:.2}% of req/s \
             (gate: {max_overhead_pct}%)"
        );
        return ExitCode::FAILURE;
    }
    println!("PASS: telemetry overhead {overhead_pct:.2}% ≤ {max_overhead_pct}%");
    ExitCode::SUCCESS
}
