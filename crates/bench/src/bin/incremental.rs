//! Incremental re-alignment benchmark: the acceptance check for the
//! delta pipeline.
//!
//! On a generated `movies` pair, aligned once and snapshotted:
//!   1. build a ≤5 %-of-facts delta (attribute updates on a sample of
//!      instances plus a batch of brand-new entities on both sides);
//!   2. time a **full** from-scratch re-alignment of the updated KBs —
//!      what `paris align` would pay after every KB update;
//!   3. time the **incremental** path — apply the delta and re-run the
//!      fixpoint warm-started from the previous scores, rescoring only
//!      dirty entries (`paris delta`).
//!
//! Prints the speedup and the score agreement between the two paths, and
//! fails (exit 1) unless the incremental path is ≥ 3× faster and agrees
//! with the from-scratch run on ≥ 99 % of assignments with scores equal
//! within tolerance (mean |Δ| ≤ 0.01, p99 ≤ 0.05).
//!
//! Usage: `incremental_realign [scale]` — `scale` is the movies-pair
//! size (default 1600; below ~1200 the O(KB) fixed costs — literal-bridge
//! rebuild, candidate-view construction — dominate both paths and the
//! ratio is not meaningful).

use std::time::{Duration, Instant};

use paris_bench::timing::fmt_duration;
use paris_core::{
    realign_incremental, Aligner, DirtySeeds, IncrementalOptions, OwnedAlignment, ParisConfig,
};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_kb::delta::{apply, apply_owned, KbDelta};
use paris_kb::{EntityId, EntityKind, Kb};

fn min_time<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..runs {
        let t = Instant::now();
        let out = f();
        let elapsed = t.elapsed();
        if best.as_ref().is_none_or(|(d, _)| elapsed < *d) {
            best = Some((elapsed, out));
        }
    }
    best.expect("at least one run")
}

/// Builds a delta touching roughly `fraction` of `kb`'s facts: for a
/// sample of instances, one literal attribute is replaced (one removal +
/// one addition), and a few brand-new instances with a fresh literal each
/// are appended.
fn perturbation(kb: &Kb, fraction: f64, namespace: &str) -> KbDelta {
    let budget = ((kb.num_facts() as f64 * fraction) as usize).max(2);
    let mut delta = KbDelta::new(kb.name());
    let mut spent = 0usize;

    // New entities: one fifth of the budget.
    let mut fresh = 0usize;
    while spent + 1 < budget && fresh < budget / 5 {
        delta.add_literal_fact(
            format!("{namespace}fresh{fresh}"),
            format!("{namespace}label"),
            paris_rdf::Literal::plain(format!("fresh entity {fresh} of {}", kb.name())),
        );
        fresh += 1;
        spent += 1;
    }

    // Attribute updates on a *contiguous* run of instances — deltas in
    // real KBs are concentrated (one source updated, the newest entries
    // revised), not sprinkled uniformly over the whole KB. Entity ids are
    // assigned in generation order, so a contiguous id range is exactly
    // "one batch of related entries".
    let instances: Vec<EntityId> = kb
        .entities()
        .filter(|&e| kb.kind(e) == EntityKind::Instance)
        .collect();
    let start = instances.len() / 3;
    for (i, &e) in instances.iter().enumerate().skip(start) {
        if spent + 2 > budget {
            break;
        }
        let Some(iri) = kb.iri(e) else { continue };
        let Some(&(r, y)) = kb
            .facts(e)
            .iter()
            .find(|&&(r, y)| !r.is_inverse() && kb.kind(y) == EntityKind::Literal)
        else {
            continue;
        };
        let lit = kb.literal(y).expect("literal kind");
        delta.remove_literal_fact(iri.clone(), kb.relation_iri(r).clone(), lit.clone());
        delta.add_literal_fact(
            iri.clone(),
            kb.relation_iri(r).clone(),
            paris_rdf::Literal::plain(format!("updated value {i}")),
        );
        spent += 2;
    }
    delta
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1600);
    let config = ParisConfig::default();

    println!("dataset: movies, scale {scale}");
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let total_facts = pair.kb1.num_facts() + pair.kb2.num_facts();

    // The starting point: a converged alignment, as a snapshot would hold.
    let t = Instant::now();
    let previous = {
        let result = Aligner::new(&pair.kb1, &pair.kb2, config.clone()).run();
        OwnedAlignment::from_result(&result)
    };
    println!(
        "initial full alignment:        {}",
        fmt_duration(t.elapsed())
    );

    // A ≤5 % delta across both sides.
    let delta1 = perturbation(&pair.kb1, 0.02, "http://yagofilm.test/");
    let delta2 = perturbation(&pair.kb2, 0.02, "http://imdb.test/");
    let changes = delta1.len() + delta2.len();
    println!(
        "delta size:                    {changes} changes / {total_facts} facts ({:.1}%)",
        changes as f64 / total_facts as f64 * 100.0
    );
    assert!(
        (changes as f64) <= total_facts as f64 * 0.05,
        "the delta must stay within 5% of the facts"
    );

    // Apply once to get the updated KBs both paths align.
    let applied1 = apply(&pair.kb1, &delta1).expect("apply left delta");
    let applied2 = apply(&pair.kb2, &delta2).expect("apply right delta");
    let (kb1_new, kb2_new) = (&applied1.kb, &applied2.kb);

    // Full path: from-scratch re-alignment of the updated KBs.
    let (full_time, full_pairs) = min_time(3, || {
        let result = Aligner::new(kb1_new, kb2_new, config.clone()).run();
        result.instance_pairs()
    });
    println!("full re-alignment (min of 3):  {}", fmt_duration(full_time));

    // Incremental path: delta application + warm-started dirty-set
    // fixpoint. The in-place delta apply is re-timed inside the closure so
    // the comparison charges the incremental path for all its real work;
    // only the KB *copies* it consumes are made outside the timer (a
    // server owns its loaded snapshot and applies in place, paying no
    // clone either).
    let mut copies: Vec<(Kb, Kb)> = (0..3)
        .map(|_| (pair.kb1.clone(), pair.kb2.clone()))
        .collect();
    let (incr_time, (incr_pairs, report)) = min_time(3, || {
        let (kb1_copy, kb2_copy) = copies.pop().expect("one copy per run");
        let a1 = apply_owned(kb1_copy, &delta1).expect("apply left delta");
        let a2 = apply_owned(kb2_copy, &delta2).expect("apply right delta");
        let seeds = DirtySeeds::from_applied(Some(&a1), Some(&a2));
        let run = realign_incremental(
            &a1.kb,
            &a2.kb,
            &previous,
            &seeds,
            &config,
            &IncrementalOptions::default(),
        );
        // Read the pairs against the run's own KBs before they drop.
        (run.result.instance_pairs(), run.report)
    });
    println!(
        "incremental (min of 3):        {} (rescored {}/{} rows, {} relation rows)",
        fmt_duration(incr_time),
        report.rescored_rows,
        report.total_instances,
        report.rescored_relation_rows,
    );

    let speedup = full_time.as_secs_f64() / incr_time.as_secs_f64();
    println!("speedup:                       {speedup:.1}×");

    // Score agreement between the two paths.
    let full_map: std::collections::HashMap<EntityId, (EntityId, f64)> =
        full_pairs.iter().map(|&(x, x2, p)| (x, (x2, p))).collect();
    let mut same_target = 0usize;
    let mut diffs: Vec<f64> = Vec::new();
    for &(x, x2, p) in &incr_pairs {
        match full_map.get(&x) {
            Some(&(fx2, fp)) if fx2 == x2 => {
                same_target += 1;
                diffs.push((p - fp).abs());
            }
            _ => {}
        }
    }
    let agreement = same_target as f64 / full_pairs.len().max(1) as f64;
    diffs.sort_by(f64::total_cmp);
    let mean_diff = diffs.iter().sum::<f64>() / diffs.len().max(1) as f64;
    let p99_diff = diffs
        .get(diffs.len().saturating_sub(diffs.len() / 100 + 1))
        .copied()
        .unwrap_or(0.0);
    let max_diff = diffs.last().copied().unwrap_or(0.0);
    println!(
        "agreement with full run:       {:.2}% of {} assignments; |Δscore| mean {mean_diff:.4}, p99 {p99_diff:.4}, max {max_diff:.4}",
        agreement * 100.0,
        full_pairs.len(),
    );

    let mut failed = false;
    if speedup < 3.0 {
        eprintln!("FAIL: incremental re-alignment must be ≥ 3× faster than full");
        failed = true;
    }
    if agreement < 0.99 {
        eprintln!("FAIL: assignments must agree with the full run on ≥ 99%");
        failed = true;
    }
    // Tolerance note: both paths stop on the paper's assignment-stability
    // criterion, not at an exact fixpoint, so scores land on slightly
    // different iterates of the same attractor. The bulk must coincide
    // (mean ≤ 0.01, p99 ≤ 0.05); individual slow-converging rows may
    // differ by an iterate's worth of drift without being *wrong* — the
    // assignment check above already pins their decisions.
    if mean_diff > 0.01 || p99_diff > 0.05 {
        eprintln!("FAIL: agreeing scores must match the full run (mean ≤ 0.01, p99 ≤ 0.05)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: ≥ 3× faster, scores equal to a from-scratch run within tolerance");
}
