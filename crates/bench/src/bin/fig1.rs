//! Figure 1: precision of the class alignment (yago-like ⊆ DBpedia-like)
//! as a function of the probability threshold (paper §6.4).
//!
//! Paper shape: precision rises from ~0.75 at threshold 0.1 to ~0.95 at
//! threshold 0.9 — low-scoring class assignments are the noisy ones
//! ("12 % of the people convicted of murder in Utah were soccer players").
//!
//! Run: `cargo run --release -p paris-bench --bin fig1`

use paris_core::{Aligner, ParisConfig};
use paris_datagen::encyclopedia::{generate, EncyclopediaConfig};
use paris_eval::threshold_curve;

fn main() {
    println!("Figure 1 — class-alignment precision vs probability threshold");
    println!("paper: rising ~0.75 → ~0.95 over thresholds 0.1..0.9\n");

    let pair = generate(&EncyclopediaConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();

    let thresholds: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let curve = threshold_curve(&result, &pair.gold, &thresholds);

    println!(
        "{:>9} {:>10} {:>12}",
        "threshold", "precision", "#assignments"
    );
    for p in &curve {
        let bar = "#".repeat((p.precision * 40.0).round() as usize);
        println!(
            "{:>9.1} {:>9.1}% {:>12}  {bar}",
            p.threshold,
            p.precision * 100.0,
            p.assignments
        );
    }
}
