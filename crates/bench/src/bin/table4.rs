//! Table 4: sample relation alignments with scores (paper §6.4).
//!
//! The paper's table shows non-trivial alignments: fine-grained to
//! coarse-grained (`dbp:headquarter ⊆ y:isLocatedIn` 0.34), inverses
//! (`y:actedIn ⊆ dbp:starring⁻¹` 0.95), splits of one relation into
//! several (`y:created ⊆ dbp:author⁻¹` 0.17 / `dbp:composer⁻¹` 0.61), and
//! relations with completely different names. This binary prints the same
//! style of list from the encyclopedia run.
//!
//! Run: `cargo run --release -p paris-bench --bin table4`

use paris_bench::section;
use paris_core::{Aligner, ParisConfig};
use paris_datagen::encyclopedia::{generate, EncyclopediaConfig};
use paris_eval::alignment_list;

fn main() {
    println!("Table 4 — relation alignments with scores");

    let pair = generate(&EncyclopediaConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();

    section("wikia ⊆ dbp (score ≥ 0.10)");
    let mut one = result.relation_alignments_1to2(0.10);
    one.truncate(24);
    print!("{}", alignment_list("", &one));

    section("dbp ⊆ wikia (score ≥ 0.10)");
    let mut two = result.relation_alignments_2to1(0.10);
    two.truncate(24);
    print!("{}", alignment_list("", &two));

    section("paper phenomena to look for");
    println!("  inverted alignments (name⁻ suffixes): hasChild ⊆ parent⁻, author ⊆ created⁻");
    println!("  split relations: created ⊆ author⁻/composer⁻/director⁻ with fractional scores");
    println!("  coarse ⊇ fine: headquarter ⊆ isLocatedIn");
}
