//! §6.3 design-alternative experiment 1: the bootstrap value θ does not
//! matter.
//!
//! "We ran PARIS with θ = 0.001, 0.01, 0.05, 0.1, 0.2 on the restaurant
//! dataset. A larger θ causes larger probability scores in the first
//! iteration. However, the sub-relationship scores turn out to be the
//! same … Therefore, the final probability scores are the same,
//! independently of θ."
//!
//! Run: `cargo run --release -p paris-bench --bin theta_sweep`

use paris_core::{Aligner, ParisConfig};
use paris_datagen::restaurants::{generate, RestaurantsConfig};
use paris_eval::evaluate_instances;

fn main() {
    println!("θ sweep on the restaurant dataset (paper §6.3, experiment 1)");
    println!("expected: identical final assignments for every θ\n");

    let pair = generate(&RestaurantsConfig::default());
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>6}",
        "theta", "P", "R", "F", "#aligned", "iters"
    );

    let mut reference: Option<Vec<Option<paris_kb::EntityId>>> = None;
    for theta in [0.001, 0.01, 0.05, 0.1, 0.2] {
        let config = ParisConfig::default().with_theta(theta);
        let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
        let counts = evaluate_instances(&result, &pair.gold);
        let assignment: Vec<Option<paris_kb::EntityId>> = result
            .instances
            .maximal_assignment()
            .into_iter()
            .map(|a| a.map(|(e, _)| e))
            .collect();
        let aligned = assignment.iter().filter(|a| a.is_some()).count();
        println!(
            "{:>8} {:>7.1}% {:>7.1}% {:>7.1}% {:>12} {:>6}",
            theta,
            counts.precision() * 100.0,
            counts.recall() * 100.0,
            counts.f1() * 100.0,
            aligned,
            result.iterations.len()
        );
        match &reference {
            None => reference = Some(assignment),
            Some(r) => {
                let same = r == &assignment;
                if !same {
                    let diffs = r.iter().zip(&assignment).filter(|(a, b)| a != b).count();
                    println!("          ^ differs from θ=0.001 in {diffs} assignments");
                }
            }
        }
    }
    println!("\n(no 'differs' lines above = θ-independence reproduced)");
}
