//! Appendix C: functionality-weighted evidence vs. plain set similarity.
//!
//! The paper's Appendix C argues that a Jaccard-style set-equivalence
//! measure over shared values cannot replace the probabilistic model,
//! because it ignores functionality: "If two people share an e-mail
//! address (high inverse functionality), they are almost certainly
//! equivalent. By contrast, if two people share the city they live in,
//! they are not necessarily equivalent." This binary quantifies that
//! argument: PARIS vs. the Jaccard baseline on the restaurant and movie
//! benchmarks.
//!
//! Run: `cargo run --release -p paris-bench --bin appendix_c`

use paris_baselines::jaccard_baseline;
use paris_bench::section;
use paris_core::{Aligner, ParisConfig};
use paris_datagen::movies::{generate as gen_movies, MoviesConfig};
use paris_datagen::restaurants::{generate as gen_restaurants, RestaurantsConfig};
use paris_datagen::DatasetPair;
use paris_eval::{evaluate_instances, Counts};
use paris_kb::FxHashMap;

fn score_jaccard(pair: &DatasetPair, min_jaccard: f64) -> Counts {
    let result = jaccard_baseline(&pair.kb1, &pair.kb2, min_jaccard);
    let predicted: FxHashMap<_, _> = result.assignments().collect();
    let mut counts = Counts::default();
    for (a, b) in &pair.gold.instances {
        let (Some(e1), Some(e2)) = (
            pair.kb1.entity_by_iri(a.as_str()),
            pair.kb2.entity_by_iri(b.as_str()),
        ) else {
            continue;
        };
        match predicted.get(&e1) {
            Some(&p) if p == e2 => counts.true_positives += 1,
            Some(_) => {
                counts.false_positives += 1;
                counts.false_negatives += 1;
            }
            None => counts.false_negatives += 1,
        }
    }
    counts
}

fn compare(name: &str, pair: &DatasetPair) {
    section(name);
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let paris = evaluate_instances(&result, &pair.gold);
    println!("  {:<22} {}", "PARIS", paris.summary());
    for min in [0.3, 0.5, 0.7] {
        let jac = score_jaccard(pair, min);
        println!("  {:<22} {}", format!("Jaccard ≥ {min}"), jac.summary());
    }
}

fn main() {
    println!("Appendix C — PARIS vs. unweighted set similarity");
    println!("expected: PARIS dominates; Jaccard trades P against R and wins neither\n");

    compare(
        "restaurants",
        &gen_restaurants(&RestaurantsConfig::default()),
    );
    compare(
        "movies",
        &gen_movies(&MoviesConfig {
            num_movies: 400,
            ..Default::default()
        }),
    );
}
