//! Ingest throughput benchmark: the acceptance check for the streaming
//! out-of-core loader (CI gate `ingest_throughput`).
//!
//! On the N-Triples export of a generated `movies` world (default scale
//! 6400), measures:
//!   1. **line-parallel parse** — `parse_chunked` at 1 thread vs. all
//!      cores, same chunking;
//!   2. **end-to-end ingest** — RDF bytes → v2 snapshot under a small
//!      memory budget (spill-heavy), vs. the heap build path;
//!   3. **byte-identity** between the two snapshots, at scale.
//!
//! Fails (exit 1) unless the parallel parse beats single-threaded by ≥2×
//! (≥4 cores; a relaxed ≥1.3× gate applies on 2–3 cores since perfect
//! 2-core scaling would be exactly the 2× bar), or the outputs diverge.
//! On a single-core machine the speedup gate is skipped — there is
//! nothing to parallelize against — but identity is still enforced.

use std::time::{Duration, Instant};

use paris_bench::timing::fmt_duration;
use paris_datagen::movies::{generate, MoviesConfig};
use paris_kb::export::to_ntriples;
use paris_kb::ingest::{ingest_reader, IngestOptions};
use paris_kb::snapshot_v2::kb_to_bytes_v2;
use paris_kb::KbBuilder;
use paris_rdf::ntriples::{parse_chunked, ChunkOptions, Parser};

fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("at least one run")
}

fn parse_rate(doc: &[u8], threads: usize) -> (Duration, u64) {
    let opts = ChunkOptions {
        threads,
        chunk_bytes: 4 << 20,
        quads: false,
    };
    let mut triples = 0u64;
    let elapsed = min_time(3, || {
        let mut n = 0u64;
        parse_chunked(doc, &opts, |batch| {
            n += batch.len() as u64;
            Ok(())
        })
        .expect("bench input parses");
        triples = n;
    });
    (elapsed, triples)
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6400);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("dataset: movies, scale {scale}; {cores} cores");
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let doc = to_ntriples(&pair.kb2); // the bigger (IMDb) side
    drop(pair);
    let mib = doc.len() as f64 / (1 << 20) as f64;
    println!("input: {:.1} MiB of N-Triples", mib);

    // 1. Line-parallel parse vs. single-threaded.
    let (seq, triples) = parse_rate(doc.as_bytes(), 1);
    println!(
        "parse, 1 thread  (min of 3):  {}  ({:.1} MiB/s, {triples} triples)",
        fmt_duration(seq),
        mib / seq.as_secs_f64()
    );
    let mut speedup = None;
    if cores >= 2 {
        let (par, par_triples) = parse_rate(doc.as_bytes(), cores);
        assert_eq!(par_triples, triples, "thread count changed the parse");
        let ratio = seq.as_secs_f64() / par.as_secs_f64();
        println!(
            "parse, {cores} threads (min of 3):  {}  ({:.1} MiB/s) → {ratio:.2}× single-thread",
            fmt_duration(par),
            mib / par.as_secs_f64()
        );
        speedup = Some(ratio);
    } else {
        println!("parse, parallel:              skipped (single-core machine)");
    }

    // 2. End-to-end: spill-heavy streaming ingest vs. the heap build.
    let dir = std::env::temp_dir().join("paris_ingest_throughput_bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = dir.join("ingest.snap");
    let opts = IngestOptions {
        name: "bench".to_owned(),
        mem_budget: 8 << 20,
        threads: cores,
        ..IngestOptions::default()
    };
    let t = Instant::now();
    let report = ingest_reader(doc.as_bytes(), &out, &opts).expect("ingest succeeds");
    let ingest_time = t.elapsed();
    println!(
        "streaming ingest (8M budget): {}  ({:.1} MiB/s, {} spill runs, {} spill bytes)",
        fmt_duration(ingest_time),
        mib / ingest_time.as_secs_f64(),
        report.spill_runs,
        report.spill_bytes
    );

    let t = Instant::now();
    let heap_bytes = {
        let triples = Parser::parse_all(&doc).expect("parses");
        let mut b = KbBuilder::new("bench");
        b.add_triples(&triples);
        kb_to_bytes_v2(&b.build())
    };
    let heap_time = t.elapsed();
    println!(
        "heap build (unbounded mem):   {}  ({:.1} MiB/s)",
        fmt_duration(heap_time),
        mib / heap_time.as_secs_f64()
    );

    // 3. Identity at scale.
    let ingested = std::fs::read(&out).expect("read ingested snapshot");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        ingested, heap_bytes,
        "FAIL: ingested snapshot diverges from the heap-built one"
    );
    println!("identity: ingested snapshot is bit-identical to the heap path ✓");

    if let Some(ratio) = speedup {
        let bar = if cores >= 4 { 2.0 } else { 1.3 };
        assert!(
            ratio >= bar,
            "FAIL: parallel parse speedup {ratio:.2}× is below the {bar}× acceptance bar"
        );
        println!("acceptance: parallel parse ≥{bar}× single-thread ✓");
    } else {
        println!("acceptance: speedup gate skipped on 1 core (identity still enforced)");
    }
}
