//! Table 1: instance, class, and relation alignment on the OAEI-style
//! person and restaurant datasets (paper §6.2).
//!
//! Paper numbers (for shape comparison): person — 100 % P/R/F on all three
//! levels, 2 iterations; restaurant — instances 95 % P / 88 % R / 91 % F,
//! classes 100 %, relations 100 % P / 66 % R.
//!
//! Run: `cargo run --release -p paris-bench --bin table1`

use paris_bench::section;
use paris_core::{Aligner, ParisConfig};
use paris_datagen::persons::{generate as gen_persons, PersonsConfig};
use paris_datagen::restaurants::{generate as gen_restaurants, RestaurantsConfig};
use paris_datagen::DatasetPair;
use paris_eval::{
    evaluate_classes_1to2, evaluate_classes_2to1, evaluate_instances, evaluate_relations,
};

fn run(name: &str, pair: &DatasetPair) {
    let start = std::time::Instant::now();
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let elapsed = start.elapsed();

    let instances = evaluate_instances(&result, &pair.gold);
    let classes = evaluate_classes_1to2(&result, &pair.gold, 0.4)
        .merged(&evaluate_classes_2to1(&result, &pair.gold, 0.4));
    let (rel_12, rel_21) = evaluate_relations(&result, &pair.gold);
    let relations = rel_12.counts.merged(&rel_21.counts);

    section(&format!(
        "{name}: {} iterations, {:.2}s, gold = {} instances",
        result.iterations.len(),
        elapsed.as_secs_f64(),
        pair.gold.num_instances(),
    ));
    println!("  instances: {}", instances.summary());
    println!("  classes:   {}", classes.summary());
    println!("  relations: {}", relations.summary());
}

fn main() {
    println!("Table 1 — OAEI-style benchmark (synthetic equivalents)");
    println!("paper: person 100/100/100 everywhere; restaurant inst 95/88/91,");
    println!("       classes 100/100, relations 100/66\n");

    let persons = gen_persons(&PersonsConfig::default());
    run("person", &persons);

    let restaurants = gen_restaurants(&RestaurantsConfig::default());
    run("restaurant", &restaurants);
}
