//! Table 5: yago–IMDb alignment over iterations, plus the rdfs:label
//! baseline (paper §6.4).
//!
//! Paper shape: instance F rises 79 % → 92 % over 2–4 iterations; the
//! exact-label baseline reaches 97 % precision but only 70 % recall
//! (F = 82 %); relation recall climbs over iterations to 80 % at 100 %
//! precision.
//!
//! Run: `cargo run --release -p paris-bench --bin table5`

use paris_baselines::label_baseline;
use paris_bench::{pct, per_iteration_rows, section};
use paris_core::ParisConfig;
use paris_datagen::movies::{generate, MoviesConfig};
use paris_eval::{evaluate_relations, iteration_table, Counts};

fn main() {
    println!("Table 5 — yago-like vs IMDb-like over iterations 1–4");
    println!("paper: F 79→92%; label baseline P=97% R=70% F=82%\n");

    let pair = generate(&MoviesConfig::default());
    let (rows, result) = per_iteration_rows(&pair, &ParisConfig::default(), 4);

    section("PARIS instances per iteration");
    print!("{}", iteration_table(&rows));

    section("rdfs:label exact-match baseline");
    let baseline = label_baseline(&pair.kb1, &pair.kb2);
    let gold: std::collections::HashSet<(String, String)> = pair
        .gold
        .instances
        .iter()
        .map(|(a, b)| (a.as_str().to_owned(), b.as_str().to_owned()))
        .collect();
    let correct = baseline
        .pairs
        .iter()
        .filter(|&&(e1, e2)| {
            gold.contains(&(
                pair.kb1
                    .iri(e1)
                    .map(|i| i.as_str().to_owned())
                    .unwrap_or_default(),
                pair.kb2
                    .iri(e2)
                    .map(|i| i.as_str().to_owned())
                    .unwrap_or_default(),
            ))
        })
        .count();
    let counts = Counts::new(
        correct,
        baseline.pairs.len() - correct,
        gold.len() - correct,
    );
    println!("  baseline: {}", counts.summary());
    println!(
        "  PARIS:    {}  ← must beat the baseline's F",
        rows.last().expect("rows").instances.summary()
    );

    section("relations (final iteration)");
    let (rel_12, rel_21) = evaluate_relations(&result, &pair.gold);
    println!(
        "  {} ⊆ {}: precision {} recall {}",
        pair.kb1.name(),
        pair.kb2.name(),
        pct(rel_12.counts.precision()),
        pct(rel_12.counts.recall())
    );
    println!(
        "  {} ⊆ {}: precision {} recall {}",
        pair.kb2.name(),
        pair.kb1.name(),
        pct(rel_21.counts.precision()),
        pct(rel_21.counts.recall())
    );
}
