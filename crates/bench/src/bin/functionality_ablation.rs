//! Appendix A ablation: the four candidate definitions of global
//! functionality.
//!
//! The paper argues for the harmonic mean (Eq. 2) over three
//! alternatives: the pair ratio is "very volatile to single sources that
//! have a large number of targets", the argument-count ratio is
//! "treacherous" (all-pairs relations get functionality 1), and the
//! arithmetic mean is "less appropriate" for averaging ratios. This
//! binary re-runs the encyclopedia alignment under each definition.
//!
//! Run: `cargo run --release -p paris-bench --bin functionality_ablation`

use paris_core::{Aligner, ParisConfig};
use paris_datagen::encyclopedia::{generate, EncyclopediaConfig};
use paris_eval::evaluate_instances;
use paris_kb::FunctionalityVariant;

fn main() {
    println!("Functionality-definition ablation (Appendix A) on encyclopedia");
    println!("expected: harmonic mean ≥ alternatives, arg-ratio weakest\n");

    println!(
        "{:>18} {:>8} {:>8} {:>8} {:>9}",
        "variant", "P", "R", "F", "#aligned"
    );
    for variant in FunctionalityVariant::ALL {
        let mut pair = generate(&EncyclopediaConfig::default());
        pair.kb1.set_functionality_variant(variant);
        pair.kb2.set_functionality_variant(variant);
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let counts = evaluate_instances(&result, &pair.gold);
        println!(
            "{:>18} {:>7.1}% {:>7.1}% {:>7.1}% {:>9}",
            variant.name(),
            counts.precision() * 100.0,
            counts.recall() * 100.0,
            counts.f1() * 100.0,
            result.instance_pairs().len()
        );
    }
}
