//! Snapshot-load benchmark: the acceptance check for the serving
//! subsystem's startup path.
//!
//! Measures, on a generated `movies` pair:
//!   1. the *cold* path a batch run pays every time — parse both
//!      N-Triples files and run the full alignment;
//!   2. the *snapshot* path `paris serve` pays once at startup — load
//!      the aligned-pair snapshot.
//!
//! Prints the speedup and fails (exit 1) if the snapshot load is not at
//! least 10× faster than re-parsing + re-aligning.

use std::time::{Duration, Instant};

use paris_bench::timing::fmt_duration;
use paris_core::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_kb::{export, kb_from_file};

fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("at least one run")
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(MoviesConfig::default().num_movies);
    let dir = std::env::temp_dir().join("paris_snapshot_bench");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let left_nt = dir.join("left.nt");
    let right_nt = dir.join("right.nt");
    let snap_path = dir.join("pair.snap");

    println!("dataset: movies, scale {scale}");
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    std::fs::write(&left_nt, export::to_ntriples(&pair.kb1)).expect("write left.nt");
    std::fs::write(&right_nt, export::to_ntriples(&pair.kb2)).expect("write right.nt");

    // Cold path: parse + align, as `paris align` does on every run.
    let cold = min_time(3, || {
        let kb1 = kb_from_file("left", &left_nt).expect("parse left");
        let kb2 = kb_from_file("right", &right_nt).expect("parse right");
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
        std::hint::black_box(result.instance_pairs().len());
    });
    println!("parse + align (min of 3):      {}", fmt_duration(cold));

    // Produce the snapshot once (not timed against the cold path).
    {
        let kb1 = kb_from_file("left", &left_nt).expect("parse left");
        let kb2 = kb_from_file("right", &right_nt).expect("parse right");
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
        let owned = OwnedAlignment::from_result(&result);
        drop(result);
        AlignedPairSnapshot::new(kb1, kb2, owned)
            .save(&snap_path)
            .expect("write snapshot");
    }
    let bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    println!("snapshot size:                 {bytes} bytes");

    // Snapshot path: what `paris serve` pays at startup. Loads are a few
    // milliseconds, so scheduler noise dominates a small sample — take
    // the min over more runs than the (much longer) cold path.
    let load = min_time(10, || {
        let snap = AlignedPairSnapshot::load(&snap_path).expect("load snapshot");
        std::hint::black_box(snap.alignment.num_instance_pairs());
    });
    println!("snapshot load (min of 10):     {}", fmt_duration(load));

    let speedup = cold.as_secs_f64() / load.as_secs_f64();
    println!("speedup:                       {speedup:.1}×");

    std::fs::remove_dir_all(&dir).ok();
    if speedup < 10.0 {
        eprintln!("FAIL: snapshot load must be ≥ 10× faster than parse + align");
        std::process::exit(1);
    }
    println!("PASS: ≥ 10× faster than re-parsing + re-aligning");
}
