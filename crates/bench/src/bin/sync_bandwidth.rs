//! Replication-bandwidth benchmark: the acceptance gate for the
//! read-replica sync protocol's steady state.
//!
//! Starts a real primary (`paris-server` catalog over TCP) with one v1
//! and one v2 movies pair, then drives a `paris-replica` sync engine
//! against it and asserts the transfer accounting:
//!
//!   1. the **first** sync downloads every pair (bytes transferred ==
//!      the catalog's total file size);
//!   2. **steady-state** polls of an unchanged catalog transfer **zero
//!      snapshot bytes and zero manifest bytes** (the conditional
//!      manifest poll is a `304`);
//!   3. after one pair changes, exactly that pair's bytes are
//!      re-transferred — unchanged pairs still cost nothing.
//!
//! Prints the per-phase accounting and fails (exit 1, via assert) if
//! any invariant is violated.

use std::time::Instant;

use paris_core::{AlignedPairSnapshot, Aligner, MappedPairSnapshot, OwnedAlignment, ParisConfig};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_replica::SyncEngine;
use paris_server::{Server, ServerConfig};

fn movies_snapshot(scale: usize, seed: u64) -> AlignedPairSnapshot {
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        seed,
        ..Default::default()
    });
    let owned = {
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        OwnedAlignment::from_result(&result)
    };
    AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned)
}

fn file_size(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400);
    let root = std::env::temp_dir().join("paris_sync_bandwidth_bench");
    std::fs::remove_dir_all(&root).ok();
    let primary_dir = root.join("primary");
    let mirror_dir = root.join("mirror");
    std::fs::create_dir_all(&primary_dir).expect("create primary dir");

    println!("dataset: movies, scale {scale} (one v1 + one v2 pair)");
    let v1_path = primary_dir.join("movies-v1.snap");
    let v2_path = primary_dir.join("movies-v2.snap");
    movies_snapshot(scale, 42).save(&v1_path).expect("save v1");
    MappedPairSnapshot::save_v2(&movies_snapshot(scale, 43), &v2_path).expect("save v2");
    let catalog_bytes = file_size(&v1_path) + file_size(&v2_path);
    println!("catalog size: {catalog_bytes} bytes");

    let server = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        catalog_dir: Some(primary_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind primary");
    let handle = server.spawn().expect("spawn primary");
    let upstream = format!("http://{}", handle.addr());

    let mut engine = SyncEngine::new(&upstream, &mirror_dir).expect("sync engine");

    // Phase 1: cold mirror — everything transfers, exactly once.
    let t0 = Instant::now();
    let cold = engine.sync_once().expect("cold sync");
    println!(
        "cold sync:         {} pairs, {} snapshot bytes, {} manifest bytes, {:.3}s",
        cold.updated.len(),
        cold.snapshot_bytes,
        cold.manifest_bytes,
        t0.elapsed().as_secs_f64(),
    );
    assert_eq!(cold.updated.len(), 2, "both pairs must transfer: {cold:?}");
    assert!(cold.failed.is_empty(), "{cold:?}");
    assert_eq!(
        cold.snapshot_bytes, catalog_bytes,
        "cold transfer must move exactly the catalog's bytes"
    );

    // Phase 2: steady state — THE GATE. Unchanged pairs re-transfer
    // zero snapshot bytes, and the conditional manifest poll costs zero
    // body bytes too.
    for round in 1..=5 {
        let t = Instant::now();
        let poll = engine.sync_once().expect("steady-state sync");
        println!(
            "steady poll {round}:     {} unchanged, {} snapshot bytes, {} manifest bytes, {:.4}s",
            poll.unchanged,
            poll.snapshot_bytes,
            poll.manifest_bytes,
            t.elapsed().as_secs_f64(),
        );
        assert_eq!(poll.unchanged, 2, "{poll:?}");
        assert!(
            poll.updated.is_empty() && poll.failed.is_empty(),
            "{poll:?}"
        );
        assert_eq!(
            poll.snapshot_bytes, 0,
            "GATE: an unchanged pair must transfer 0 snapshot bytes"
        );
        assert_eq!(
            poll.manifest_bytes, 0,
            "GATE: an unchanged catalog must be a manifest-only 304 poll"
        );
    }

    // Phase 3: change one pair; only its bytes move.
    movies_snapshot(scale, 44)
        .save(&v1_path)
        .expect("update v1");
    let updated_size = file_size(&v1_path);
    let delta = engine.sync_once().expect("delta sync");
    println!(
        "after update:      {} updated, {} snapshot bytes (changed file: {updated_size})",
        delta.updated.len(),
        delta.snapshot_bytes,
    );
    assert_eq!(delta.updated, vec!["movies-v1".to_owned()], "{delta:?}");
    assert_eq!(delta.unchanged, 1, "{delta:?}");
    assert_eq!(
        delta.snapshot_bytes, updated_size,
        "only the changed pair's bytes may move"
    );

    // And the mirror really is byte-identical to the primary.
    for name in ["movies-v1.snap", "movies-v2.snap"] {
        let primary = std::fs::read(primary_dir.join(name)).expect("read primary");
        let mirror = std::fs::read(mirror_dir.join(name)).expect("read mirror");
        assert_eq!(primary, mirror, "{name} must be byte-identical");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
    println!("PASS: unchanged pairs transfer 0 bytes; changed pairs transfer exactly their file");
}
