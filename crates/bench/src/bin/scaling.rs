//! Runtime scaling: wall-clock per iteration vs. ontology size.
//!
//! The paper reports hours per iteration on the 2011 testbed (Table 3:
//! ~5 h per yago–DBpedia iteration; Table 5: ~12 h per yago–IMDb
//! iteration) and attributes the cost to the neighbour-driven
//! O(n·m²·e) instance pass (§5.2). This binary measures the in-memory
//! reproduction across dataset sizes so the (near-linear in facts)
//! growth is visible.
//!
//! Run: `cargo run --release -p paris-bench --bin scaling`

use paris_core::{Aligner, ParisConfig};
use paris_datagen::encyclopedia::{generate, EncyclopediaConfig};
use paris_eval::evaluate_instances;

fn main() {
    println!("Scaling — one PARIS run (to convergence) vs. world size");
    println!(
        "{:>9} {:>9} {:>9} {:>9} {:>10} {:>7} {:>8}",
        "#people", "facts L", "facts R", "iters", "total(s)", "s/iter", "F"
    );

    for num_people in [500usize, 1000, 2000, 4000, 8000] {
        let pair = generate(&EncyclopediaConfig {
            num_people,
            ..EncyclopediaConfig::default()
        });
        let start = std::time::Instant::now();
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let total = start.elapsed().as_secs_f64();
        let counts = evaluate_instances(&result, &pair.gold);
        println!(
            "{:>9} {:>9} {:>9} {:>9} {:>10.2} {:>7.2} {:>7.1}%",
            num_people,
            pair.kb1.num_facts(),
            pair.kb2.num_facts(),
            result.iterations.len(),
            total,
            total / result.iterations.len() as f64,
            counts.f1() * 100.0,
        );
    }
    println!("\n(paper §5.2: naïve all-pairs would be O(n²·m); the neighbour-driven");
    println!(" pass is O(n·m²·e), which the near-linear column above reflects)");
}
