//! §6.3 design-alternative experiment 2: propagating *all* equalities of
//! the previous iteration instead of only the maximal assignment.
//!
//! "In a second experiment, we allowed the algorithm to take into account
//! all probabilities from the previous iteration (and not just those of
//! the maximal assignment). This changed the results only marginally (by
//! one correctly matched entity)" — while §5.2 notes the
//! maximal-assignment restriction "reduces the runtime by an order of
//! magnitude".
//!
//! Run: `cargo run --release -p paris-bench --bin propagation_ablation`

use paris_core::{Aligner, ParisConfig};
use paris_datagen::restaurants::{generate, RestaurantsConfig};
use paris_eval::evaluate_instances;

fn main() {
    println!("Propagation ablation on the restaurant dataset (§6.3, experiment 2)");
    println!("expected: marginal metric change, slower with all equalities\n");

    let pair = generate(&RestaurantsConfig::default());
    println!(
        "{:>22} {:>8} {:>8} {:>8} {:>7} {:>9}",
        "mode", "P", "R", "F", "TP", "time"
    );

    let mut tp = Vec::new();
    for propagate_all in [false, true] {
        let config = ParisConfig::default().with_propagate_all(propagate_all);
        let start = std::time::Instant::now();
        let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
        let secs = start.elapsed().as_secs_f64();
        let counts = evaluate_instances(&result, &pair.gold);
        tp.push(counts.true_positives);
        println!(
            "{:>22} {:>7.1}% {:>7.1}% {:>7.1}% {:>7} {:>8.2}s",
            if propagate_all {
                "all equalities"
            } else {
                "maximal assignment"
            },
            counts.precision() * 100.0,
            counts.recall() * 100.0,
            counts.f1() * 100.0,
            counts.true_positives,
            secs
        );
    }
    println!(
        "\ncorrectly matched entities differ by {} (paper: 1)",
        tp[0].abs_diff(tp[1])
    );
}
