//! Table 2: ontology statistics (paper §6.4).
//!
//! The paper reports yago (2 795 289 instances / 292 206 classes / 67
//! relations), DBpedia (2 365 777 / 318 / 1 109) and IMDb
//! (4 842 323 / 15 / 24). Our synthetic equivalents are scaled down but
//! preserve the *contrasts* that drive the algorithm: side A has fewer
//! relations and far more classes than side B; the IMDb side has almost no
//! schema but the most instances.
//!
//! Run: `cargo run --release -p paris-bench --bin table2`

use paris_datagen::encyclopedia::{generate as gen_encyclopedia, EncyclopediaConfig};
use paris_datagen::movies::{generate as gen_movies, MoviesConfig};
use paris_kb::KbStats;

fn main() {
    println!("Table 2 — ontology statistics (synthetic, scaled down)");
    println!("paper: yago 2.8M/292k/67, DBpedia 2.4M/318/1109, IMDb 4.8M/15/24\n");

    let enc = gen_encyclopedia(&EncyclopediaConfig::default());
    let mov = gen_movies(&MoviesConfig::default());

    println!("{}", KbStats::table_header());
    for kb in [&enc.kb1, &enc.kb2, &mov.kb1, &mov.kb2] {
        println!("{}", KbStats::of(kb).table_row());
    }

    println!("\ncontrasts preserved from the paper:");
    println!(
        "  yago-like has fewer relations than DBpedia-like: {} < {}",
        enc.kb1.num_base_relations(),
        enc.kb2.num_base_relations()
    );
    println!(
        "  yago-like has more classes than DBpedia-like:    {} > {}",
        enc.kb1.num_classes(),
        enc.kb2.num_classes()
    );
    println!(
        "  IMDb-like has more instances, fewer classes:     {} > {}, {} classes",
        mov.kb2.num_instances(),
        mov.kb1.num_instances(),
        mov.kb2.num_classes()
    );
}
