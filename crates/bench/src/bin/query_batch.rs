//! Acceptance bench for the `/v1` batch endpoint: a batch of 64 mixed
//! lookups in **one** round-trip must beat 64 sequential keep-alive
//! requests by ≥5× wall-clock.
//!
//! Both sides go through the typed `paris-client` crate against a live
//! daemon on loopback, so the comparison includes everything a real
//! client pays: request formatting, syscalls, HTTP framing, JSON
//! parsing. The batch answers from a single image acquisition
//! server-side; the sequential baseline pays routing + envelope + HTTP
//! turnaround per lookup (on one warm keep-alive connection — the
//! *cheapest* sequential shape, so the gate is conservative).
//!
//! Usage: `query_batch [scale] [batch-size] [rounds]`

use std::time::{Duration, Instant};

use paris_client::{BatchAnswer, ParisClient, Query, Side};
use paris_core::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_server::{Server, ServerConfig};

/// Required speedup of one batch over the equivalent sequential run.
const REQUIRED_SPEEDUP: f64 = 5.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);
    let batch_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);

    println!("dataset: movies, scale {scale}; batches of {batch_size}, best of {rounds} rounds");
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let iris: Vec<String> = result
        .instance_pairs()
        .iter()
        .filter_map(|&(x, _, _)| pair.kb1.iri(x).map(|i| i.as_str().to_owned()))
        .take(batch_size)
        .collect();
    assert_eq!(iris.len(), batch_size, "need {batch_size} aligned IRIs");
    let owned = OwnedAlignment::from_result(&result);
    drop(result);

    let server = Server::bind(
        AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn().expect("spawn server");
    let url = format!("http://{}", handle.addr());

    let queries: Vec<Query> = iris.iter().map(Query::sameas).collect();

    // One warm-up pass of each shape (connection setup, lazy loads),
    // then best-of-N to shed scheduler noise.
    let mut client = ParisClient::new(&url).expect("client");
    let expect_match = |i: usize, answer: &BatchAnswer| match answer {
        BatchAnswer::Sameas(a) => {
            assert!(a.sameas.is_some(), "{}: unmatched", iris[i]);
        }
        other => panic!("{}: {other:?}", iris[i]),
    };

    let mut sequential_answers = Vec::new();
    let mut best_sequential = Duration::MAX;
    let mut best_batch = Duration::MAX;
    for round in 0..rounds + 1 {
        // Sequential: one lookup per round-trip on a warm connection.
        let t0 = Instant::now();
        let mut answers = Vec::with_capacity(batch_size);
        for iri in &iris {
            answers.push(
                client
                    .sameas(None, iri, Side::Left, None)
                    .expect("sequential sameas"),
            );
        }
        let sequential = t0.elapsed();

        // Batch: the same lookups in one round-trip.
        let t1 = Instant::now();
        let batch = client.batch(None, &queries).expect("batch");
        let batch_elapsed = t1.elapsed();

        assert_eq!(batch.len(), batch_size);
        for (i, answer) in batch.iter().enumerate() {
            let answer = answer.as_ref().expect("batch answer");
            expect_match(i, answer);
            // The batch must answer exactly what the sequential route
            // answered.
            if let BatchAnswer::Sameas(a) = answer {
                assert_eq!(a, &answers[i], "{}", iris[i]);
            }
        }
        if round == 0 {
            sequential_answers = answers; // warm-up: keep for the record
            continue;
        }
        best_sequential = best_sequential.min(sequential);
        best_batch = best_batch.min(batch_elapsed);
    }
    assert_eq!(sequential_answers.len(), batch_size);
    // The ETag cache must not have short-circuited the sequential
    // baseline server-side work measurement note: 304s still pay a full
    // round-trip each, which is exactly what the batch amortizes.

    let speedup = best_sequential.as_secs_f64() / best_batch.as_secs_f64();
    println!(
        "sequential {batch_size} lookups: {:>9.1?}   ({:.1} µs/lookup)",
        best_sequential,
        best_sequential.as_secs_f64() * 1e6 / batch_size as f64,
    );
    println!(
        "one batch of {batch_size} lookups: {:>9.1?}   ({:.1} µs/lookup)",
        best_batch,
        best_batch.as_secs_f64() * 1e6 / batch_size as f64,
    );
    println!("speedup: {speedup:.1}× (required ≥{REQUIRED_SPEEDUP}×)");

    handle.shutdown();
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "batch speedup {speedup:.2}× below the required {REQUIRED_SPEEDUP}×"
    );
    println!("PASS");
}
