//! Tracing-overhead gate for the serving daemon.
//!
//! Span recording sits on every request's hot path when tracing is on
//! (`--trace-buffer N`): a span allocation, a handful of attribute
//! pushes, and one short mutex section in [`SpanStore::finish`] — plus
//! the tail-sampling decision whenever the span is a trace root, which
//! on the request path is *every* span (each untraced request roots its
//! own trace). This bench serves the same aligned `movies` snapshot from
//! two daemons — observatory disabled (`trace_buffer: 0`, no run
//! history) and the full observatory on (tracing at the default buffer
//! size *plus* `--run-history`, the way an instrumented production
//! daemon runs), telemetry on for both — and hammers each with
//! identical keep-alive `GET /sameas` rounds, interleaved so ambient
//! machine noise hits both variants equally. The run history sits off
//! the request path (it only appends when an align job completes), so
//! its cost here is what the gate is designed to prove: nothing. The
//! gate compares the per-variant *median* req/s: observatory-on must
//! stay within `MAX_OVERHEAD_PCT` (default 3%) of off, or the process
//! exits non-zero.
//!
//! Usage: `trace_overhead [scale] [clients] [requests-per-client] [rounds]`
//! Env:   `TRACE_OVERHEAD_MAX_PCT` overrides the gate threshold.
//!
//! [`SpanStore::finish`]: paris_obs::span::SpanStore::finish

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

use paris_core::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_datagen::movies::{generate, MoviesConfig};
use paris_server::{LogFormat, Server, ServerConfig, ServerHandle, DEFAULT_TRACE_BUFFER};

/// Reads one HTTP response off the stream, returning the status code.
fn read_response(reader: &mut BufReader<TcpStream>) -> u16 {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    status
}

/// One keep-alive round against `addr`: every client drives its own
/// connection through `per_client` sequential requests. Returns req/s.
fn round(addr: std::net::SocketAddr, iris: &[String], clients: usize, per_client: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                for i in 0..per_client {
                    let iri = &iris[(c * per_client + i * 31) % iris.len()];
                    let request = format!("GET /sameas?iri={iri} HTTP/1.1\r\nHost: b\r\n\r\n");
                    writer.write_all(request.as_bytes()).expect("send");
                    assert_eq!(read_response(&mut reader), 200);
                }
            });
        }
    });
    (clients * per_client) as f64 / t0.elapsed().as_secs_f64()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite req/s"));
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4000);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);
    let max_overhead_pct: f64 = std::env::var("TRACE_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    println!(
        "dataset: movies, scale {scale}; {clients} clients × {per_client} requests × \
         {rounds} rounds per variant; gate {max_overhead_pct}%"
    );
    let pair = generate(&MoviesConfig {
        num_movies: scale,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let iris: Vec<String> = result
        .instance_pairs()
        .iter()
        .filter_map(|&(x, _, _)| pair.kb1.iri(x).map(|i| i.as_str().to_owned()))
        .collect();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    assert!(!iris.is_empty());

    let history_path = std::env::temp_dir().join(format!(
        "paris-trace-overhead-runs-{}.jsonl",
        std::process::id()
    ));
    let bind = |trace_buffer: usize, run_history: Option<std::path::PathBuf>| -> ServerHandle {
        let server = Server::bind(
            AlignedPairSnapshot::new(pair.kb1.clone(), pair.kb2.clone(), owned.clone()),
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: clients,
                log_format: LogFormat::Off,
                trace_buffer,
                run_history,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        server.spawn().expect("spawn server")
    };
    let off = bind(0, None);
    let on = bind(DEFAULT_TRACE_BUFFER, Some(history_path.clone()));

    // Warm each daemon (first-touch page faults, allocator warm-up)
    // before any measured round.
    for handle in [&off, &on] {
        round(handle.addr(), &iris, clients, per_client.min(200));
    }

    let mut off_rps = Vec::new();
    let mut on_rps = Vec::new();
    for r in 0..rounds {
        // Interleave variants inside every round, alternating which one
        // goes first: drift (thermal, scheduler, noisy neighbors) then
        // biases both variants and both slots equally.
        if r % 2 == 0 {
            off_rps.push(round(off.addr(), &iris, clients, per_client));
            on_rps.push(round(on.addr(), &iris, clients, per_client));
        } else {
            on_rps.push(round(on.addr(), &iris, clients, per_client));
            off_rps.push(round(off.addr(), &iris, clients, per_client));
        }
        println!(
            "round {r}: tracing off {:>9.0} req/s, on {:>9.0} req/s",
            off_rps[r], on_rps[r],
        );
    }
    off.shutdown();
    on.shutdown();
    let _ = std::fs::remove_file(&history_path);

    let off_median = median(&mut off_rps);
    let on_median = median(&mut on_rps);
    let overhead_pct = (off_median - on_median) / off_median * 100.0;
    println!(
        "median: tracing off {off_median:.0} req/s, on {on_median:.0} req/s \
         ({overhead_pct:+.2}%)"
    );
    println!(
        "{{\"bench\":\"trace_overhead\",\"scale\":{scale},\"clients\":{clients},\
         \"per_client\":{per_client},\"rounds\":{rounds},\
         \"off_req_per_s\":{off_median:.0},\"on_req_per_s\":{on_median:.0},\
         \"overhead_pct\":{overhead_pct:.2},\"max_overhead_pct\":{max_overhead_pct}}}"
    );

    if overhead_pct > max_overhead_pct {
        eprintln!(
            "FAIL: tracing costs {overhead_pct:.2}% of req/s \
             (gate: {max_overhead_pct}%)"
        );
        return ExitCode::FAILURE;
    }
    println!("PASS: tracing overhead {overhead_pct:.2}% ≤ {max_overhead_pct}%");
    ExitCode::SUCCESS
}
