//! Figure 2: number of yago-like classes with at least one assignment in
//! the DBpedia-like ontology above the threshold (paper §6.4).
//!
//! Paper shape: a decreasing curve — ~20 ×10⁴ classes at threshold 0.1
//! falling to ~10 ×10⁴ at 0.9; matches remain for a significant fraction
//! of the classes even at high probability.
//!
//! Run: `cargo run --release -p paris-bench --bin fig2`

use paris_core::{Aligner, ParisConfig};
use paris_datagen::encyclopedia::{generate, EncyclopediaConfig};
use paris_eval::threshold_curve;

fn main() {
    println!("Figure 2 — #classes with an assignment above the threshold");
    println!("paper: decreasing, with matches for a significant share of classes\n");

    let pair = generate(&EncyclopediaConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();

    let total = pair.kb1.num_classes();
    let thresholds: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let curve = threshold_curve(&result, &pair.gold, &thresholds);

    println!("{:>9} {:>9} {:>11}", "threshold", "#classes", "of total");
    for p in &curve {
        let frac = p.classes_with_assignment as f64 / total as f64;
        let bar = "#".repeat((frac * 40.0).round() as usize);
        println!(
            "{:>9.1} {:>9} {:>10.1}%  {bar}",
            p.threshold,
            p.classes_with_assignment,
            frac * 100.0
        );
    }
}
