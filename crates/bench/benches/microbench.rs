//! Criterion micro-benchmarks for the PARIS building blocks.
//!
//! The paper reports wall-clock per iteration (hours, on 2011 hardware
//! with Berkeley DB on SSD); these benches measure the in-memory
//! equivalents so that regressions in the hot paths (store construction,
//! functionality computation, the alignment passes, literal matching)
//! are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use paris_core::{Aligner, ParisConfig};
use paris_datagen::encyclopedia::{generate as gen_encyclopedia, EncyclopediaConfig};
use paris_datagen::persons::{generate as gen_persons, PersonsConfig};
use paris_kb::{FunctionalityVariant, KbBuilder};
use paris_literals::{levenshtein, normalize_alnum, LiteralSimilarity};
use paris_rdf::{ntriples, Literal, Triple};

fn bench_ntriples(c: &mut Criterion) {
    // Serialize a representative KB once, then measure parsing it back.
    let pair = gen_persons(&PersonsConfig { num_persons: 200, ..Default::default() });
    let mut triples = Vec::new();
    for e in pair.kb1.entities() {
        let Some(subject) = pair.kb1.iri(e).cloned() else { continue };
        for &(r, y) in pair.kb1.facts(e) {
            if !r.is_inverse() {
                triples.push(Triple {
                    subject: subject.clone(),
                    predicate: pair.kb1.relation_iri(r).clone(),
                    object: pair.kb1.term(y).clone(),
                });
            }
        }
    }
    let doc = ntriples::to_string(&triples);
    c.bench_function("ntriples/parse_person_dump", |b| {
        b.iter(|| ntriples::Parser::parse_all(black_box(&doc)).unwrap())
    });
}

fn bench_store_build(c: &mut Criterion) {
    c.bench_function("kb/build_500_persons", |b| {
        b.iter(|| gen_persons(&PersonsConfig::default()))
    });
}

fn bench_functionality(c: &mut Criterion) {
    let pair = gen_encyclopedia(&EncyclopediaConfig::default());
    let mut group = c.benchmark_group("kb/functionality");
    for variant in FunctionalityVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.name()),
            &variant,
            |b, &v| b.iter(|| pair.kb1.functionalities_with(black_box(v))),
        );
    }
    group.finish();
}

fn bench_literals(c: &mut Criterion) {
    let mut group = c.benchmark_group("literals");
    group.bench_function("levenshtein_20ch", |b| {
        b.iter(|| levenshtein(black_box("The Crimson Patrol!!"), black_box("The Crimsen Patrol??")))
    });
    group.bench_function("normalize_alnum", |b| {
        b.iter(|| normalize_alnum(black_box("213/467-1108 ext. 99")))
    });
    let sim = LiteralSimilarity::Normalized;
    let (a, bl) = (Literal::plain("213/467-1108"), Literal::plain("213-467-1108"));
    group.bench_function("normalized_probability", |b| {
        b.iter(|| sim.probability(black_box(&a), black_box(&bl)))
    });
    group.finish();
}

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("paris");
    group.sample_size(10);

    let persons = gen_persons(&PersonsConfig { num_persons: 200, ..Default::default() });
    group.bench_function("persons_200_full_run", |b| {
        b.iter(|| {
            Aligner::new(
                black_box(&persons.kb1),
                black_box(&persons.kb2),
                ParisConfig::default(),
            )
            .run()
        })
    });

    let enc = gen_encyclopedia(&EncyclopediaConfig { num_people: 500, ..Default::default() });
    group.bench_function("encyclopedia_500_one_iteration", |b| {
        b.iter(|| {
            Aligner::new(
                black_box(&enc.kb1),
                black_box(&enc.kb2),
                ParisConfig::default().with_max_iterations(1),
            )
            .run()
        })
    });
    group.finish();
}

fn bench_builder_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kb/builder_scaling");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut kb = KbBuilder::new("scale");
                for i in 0..n {
                    kb.add_fact(
                        format!("http://x/p{i}"),
                        "http://x/knows",
                        format!("http://x/p{}", (i * 7) % n),
                    );
                    kb.add_literal_fact(
                        format!("http://x/p{i}"),
                        "http://x/name",
                        Literal::plain(format!("name {i}")),
                    );
                }
                kb.build()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ntriples,
    bench_store_build,
    bench_functionality,
    bench_literals,
    bench_alignment,
    bench_builder_scaling
);
criterion_main!(benches);
