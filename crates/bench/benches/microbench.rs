//! Micro-benchmarks for the PARIS building blocks.
//!
//! The paper reports wall-clock per iteration (hours, on 2011 hardware
//! with Berkeley DB on SSD); these benches measure the in-memory
//! equivalents so that regressions in the hot paths (store construction,
//! functionality computation, the alignment passes, literal matching)
//! are visible. Uses the workspace's own harness (`paris_bench::timing`)
//! — the build is offline, so no criterion.

use std::hint::black_box;

use paris_bench::timing::{bench, bench_with, print_header};
use paris_core::{Aligner, ParisConfig};
use paris_datagen::encyclopedia::{generate as gen_encyclopedia, EncyclopediaConfig};
use paris_datagen::persons::{generate as gen_persons, PersonsConfig};
use paris_kb::{FunctionalityVariant, KbBuilder};
use paris_literals::{levenshtein, normalize_alnum, LiteralSimilarity};
use paris_rdf::{ntriples, Literal, Triple};
use std::time::Duration;

fn bench_ntriples() {
    // Serialize a representative KB once, then measure parsing it back.
    let pair = gen_persons(&PersonsConfig {
        num_persons: 200,
        ..Default::default()
    });
    let mut triples = Vec::new();
    for e in pair.kb1.entities() {
        let Some(subject) = pair.kb1.iri(e).cloned() else {
            continue;
        };
        for &(r, y) in pair.kb1.facts(e) {
            if !r.is_inverse() {
                triples.push(Triple {
                    subject: subject.clone(),
                    predicate: pair.kb1.relation_iri(r).clone(),
                    object: pair.kb1.term(y).clone(),
                });
            }
        }
    }
    let doc = ntriples::to_string(&triples);
    bench("ntriples/parse_person_dump", || {
        ntriples::Parser::parse_all(black_box(&doc)).unwrap()
    });
}

fn bench_store_build() {
    bench("kb/build_500_persons", || {
        gen_persons(&PersonsConfig::default())
    });
}

fn bench_functionality() {
    let pair = gen_encyclopedia(&EncyclopediaConfig::default());
    for variant in FunctionalityVariant::ALL {
        bench(&format!("kb/functionality/{}", variant.name()), || {
            pair.kb1.functionalities_with(black_box(variant))
        });
    }
}

fn bench_literals() {
    bench("literals/levenshtein_20ch", || {
        levenshtein(
            black_box("The Crimson Patrol!!"),
            black_box("The Crimsen Patrol??"),
        )
    });
    bench("literals/normalize_alnum", || {
        normalize_alnum(black_box("213/467-1108 ext. 99"))
    });
    let sim = LiteralSimilarity::Normalized;
    let (a, bl) = (
        Literal::plain("213/467-1108"),
        Literal::plain("213-467-1108"),
    );
    bench("literals/normalized_probability", || {
        sim.probability(black_box(&a), black_box(&bl))
    });
}

fn bench_alignment() {
    let persons = gen_persons(&PersonsConfig {
        num_persons: 200,
        ..Default::default()
    });
    bench_with(
        "paris/persons_200_full_run",
        Duration::from_secs(2),
        10,
        || {
            Aligner::new(
                black_box(&persons.kb1),
                black_box(&persons.kb2),
                ParisConfig::default(),
            )
            .run()
        },
    );

    let enc = gen_encyclopedia(&EncyclopediaConfig {
        num_people: 500,
        ..Default::default()
    });
    bench_with(
        "paris/encyclopedia_500_one_iteration",
        Duration::from_secs(2),
        10,
        || {
            Aligner::new(
                black_box(&enc.kb1),
                black_box(&enc.kb2),
                ParisConfig::default().with_max_iterations(1),
            )
            .run()
        },
    );
}

fn bench_builder_scaling() {
    for n in [100usize, 400, 1600] {
        bench_with(
            &format!("kb/builder_scaling/{n}"),
            Duration::from_secs(1),
            10,
            || {
                let mut kb = KbBuilder::new("scale");
                for i in 0..n {
                    kb.add_fact(
                        format!("http://x/p{i}"),
                        "http://x/knows",
                        format!("http://x/p{}", (i * 7) % n),
                    );
                    kb.add_literal_fact(
                        format!("http://x/p{i}"),
                        "http://x/name",
                        Literal::plain(format!("name {i}")),
                    );
                }
                kb.build()
            },
        );
    }
}

fn main() {
    print_header();
    bench_ntriples();
    bench_store_build();
    bench_functionality();
    bench_literals();
    bench_alignment();
    bench_builder_scaling();
}
