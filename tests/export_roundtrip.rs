//! Full-pipeline round trip: generate a dataset → serialize both sides to
//! N-Triples → reload through the parser → align → identical metrics.
//!
//! This exercises the same path as the `paris` CLI (`generate` + `align`)
//! and pins down that serialization loses nothing the algorithm needs.

use paris_repro::datagen::{restaurants, RestaurantsConfig};
use paris_repro::eval::evaluate_instances;
use paris_repro::kb::export::to_ntriples;
use paris_repro::kb::kb_from_ntriples;
use paris_repro::paris::{Aligner, ParisConfig};

#[test]
fn alignment_metrics_survive_serialization() {
    let pair = restaurants::generate(&RestaurantsConfig {
        num_matched: 60,
        ..RestaurantsConfig::default()
    });

    // Direct alignment.
    let direct = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let direct_counts = evaluate_instances(&direct, &pair.gold);

    // Serialize → reparse → realign.
    let kb1 = kb_from_ntriples("left", &to_ntriples(&pair.kb1)).expect("reload kb1");
    let kb2 = kb_from_ntriples("right", &to_ntriples(&pair.kb2)).expect("reload kb2");
    assert_eq!(kb1.num_facts(), pair.kb1.num_facts());
    assert_eq!(kb2.num_instances(), pair.kb2.num_instances());

    let reloaded = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();

    // Metrics must be identical: entity ids may differ, so compare via
    // IRI-level assignments.
    let by_iri = |result: &paris_repro::paris::AlignmentResult<'_>| {
        let mut v: Vec<(String, String)> = result
            .instance_pairs()
            .into_iter()
            .filter_map(|(x, y, _)| {
                Some((
                    result.kb1.iri(x)?.as_str().to_owned(),
                    result.kb2.iri(y)?.as_str().to_owned(),
                ))
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(by_iri(&direct), by_iri(&reloaded));

    let reloaded_counts = evaluate_instances(&reloaded, &pair.gold);
    assert_eq!(direct_counts, reloaded_counts);
}

#[test]
fn sameas_links_parse_back() {
    let pair = restaurants::generate(&RestaurantsConfig {
        num_matched: 30,
        ..RestaurantsConfig::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let links = result.sameas_triples(0.5);
    assert!(!links.is_empty());

    let doc = paris_repro::rdf::ntriples::to_string(&links);
    let reparsed = paris_repro::rdf::ntriples::Parser::parse_all(&doc).expect("valid N-Triples");
    assert_eq!(links, reparsed);
    for t in &reparsed {
        assert_eq!(t.predicate.as_str(), paris_repro::rdf::vocab::OWL_SAME_AS);
    }
}
