//! End-to-end test of hot snapshot reload: swap snapshots under
//! concurrent keep-alive load and assert that no request ever fails, that
//! `/stats` reports the bumped generation, and that answers flip to the
//! new snapshot's content. Also exercises the `--watch` mtime re-check.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_repro::rdf::Literal;
use paris_repro::server::{Server, ServerConfig};

/// A pair of KBs with `n` aligned people; every snapshot generation built
/// from a larger `n` strictly extends the previous answers.
fn people_pair(n: usize) -> (Kb, Kb) {
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..n {
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(format!("p{i}@x.org")),
        );
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/mail",
            Literal::plain(format!("p{i}@x.org")),
        );
    }
    (a.build(), b.build())
}

fn snapshot_of(n: usize) -> AlignedPairSnapshot {
    let (kb1, kb2) = people_pair(n);
    let owned = {
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_threads(1)).run();
        OwnedAlignment::from_result(&result)
    };
    AlignedPairSnapshot::new(kb1, kb2, owned)
}

/// Reads exactly one `Content-Length`-framed HTTP response; returns
/// `(status, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, String), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().map_err(|e| format!("content-length: {e}"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|e| format!("utf8: {e}"))
}

/// One keep-alive GET on an existing connection.
fn keep_alive_get(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
) -> Result<(u16, String), String> {
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    read_response(reader)
}

/// One request on a fresh connection.
fn oneshot(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    read_response(&mut reader).expect("response")
}

#[test]
fn reload_swaps_atomically_under_concurrent_load() {
    let dir = std::env::temp_dir().join("paris_reload_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("pair.snap");
    snapshot_of(4).save(&snap_path).unwrap();

    let server = Server::bind(
        AlignedPairSnapshot::load(&snap_path).unwrap(),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            // 4 keep-alive clients pin 4 workers; the extra workers serve
            // the control-plane requests (reload, assertions).
            threads: 6,
            snapshot_path: Some(snap_path.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Concurrent keep-alive clients hammer read endpoints for the whole
    // duration of two snapshot swaps. Every single response must be a 200
    // — a failed read, a non-200, or a connection error counts as a
    // failure.
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));
    let successes = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let failures = Arc::clone(&failures);
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let paths = ["/sameas?iri=http://a/p1", "/stats", "/healthz"];
                let mut i = c;
                while !stop.load(Ordering::Relaxed) {
                    match keep_alive_get(&mut stream, &mut reader, paths[i % paths.len()]) {
                        Ok((200, body)) if !body.is_empty() => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((status, body)) => {
                            eprintln!("client {c}: unexpected {status}: {body}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("client {c}: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    i += 1;
                }
            })
        })
        .collect();

    // Let the clients get going.
    std::thread::sleep(Duration::from_millis(50));

    // Swap 1: a bigger snapshot via POST /reload against the configured
    // source path (atomic file replace, then swap).
    snapshot_of(6).save(&snap_path).unwrap();
    let (status, body) = oneshot(
        addr,
        "POST /reload HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":2"), "{body}");
    assert!(body.contains("\"aligned_instances\":6"), "{body}");

    // The new entity answers; the old entities still answer.
    let (status, body) = oneshot(
        addr,
        "GET /sameas?iri=http://a/p5 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200, "p5 exists only in generation 2: {body}");
    assert!(body.contains("http://b/q5"), "{body}");

    // Swap 2: again, under the same load.
    std::thread::sleep(Duration::from_millis(50));
    snapshot_of(8).save(&snap_path).unwrap();
    let (status, body) = oneshot(
        addr,
        "POST /reload HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":3"), "{body}");

    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }

    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "every concurrent request must succeed across swaps"
    );
    let ok = successes.load(Ordering::Relaxed);
    assert!(ok > 50, "clients must have made real progress (got {ok})");

    // /stats reflects the final generation and the reload count.
    let (_, stats) = oneshot(
        addr,
        "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(stats.contains("\"generation\":3"), "{stats}");
    assert!(stats.contains("\"reloads\":2"), "{stats}");
    assert!(stats.contains("\"aligned_instances\":8"), "{stats}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_thread_reloads_on_mtime_change() {
    let dir = std::env::temp_dir().join("paris_watch_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("pair.snap");
    snapshot_of(3).save(&snap_path).unwrap();

    let server = Server::bind(
        AlignedPairSnapshot::load(&snap_path).unwrap(),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            snapshot_path: Some(snap_path.clone()),
            watch_interval: Some(Duration::from_millis(25)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Replace the file; the watch thread must notice the new mtime and
    // swap without any request asking for it. (File clocks can be coarse —
    // make sure the mtime actually moves.)
    std::thread::sleep(Duration::from_millis(30));
    snapshot_of(5).save(&snap_path).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, stats) = oneshot(
            addr,
            "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        if stats.contains("\"generation\":2") {
            assert!(stats.contains("\"aligned_instances\":5"), "{stats}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watch thread never reloaded: {stats}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
