//! End-to-end test of the `/v1/metrics` telemetry over real TCP: a
//! two-pair catalog daemon under concurrent mixed clients (raw
//! keep-alive connections plus the typed ETag-caching `ParisClient`),
//! with *exact* request accounting. Every counter the scrape reports
//! must sum precisely to the requests the test sent — no sampling, no
//! drift — the latency histograms must be monotone and merge-correct,
//! the numbers must stay consistent across a rolling snapshot reload,
//! and the Prometheus text exposition must parse line by line.
//!
//! Self-observation rule being pinned down: `paris_requests_total` is
//! bumped *before* routing (so a scrape's own body includes the
//! in-flight scrape), while the per-route/status/latency series are
//! recorded *after* the response is rendered (so a scrape's body
//! excludes exactly the scrape itself).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use paris_repro::client::json::{self, Json};
use paris_repro::client::{ParisClient, Side};
use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_repro::rdf::Literal;
use paris_repro::server::{Server, ServerConfig};

/// A pair of KBs with `n` aligned people.
fn people_pair(n: usize) -> (Kb, Kb) {
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..n {
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(format!("p{i}@x.org")),
        );
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/mail",
            Literal::plain(format!("p{i}@x.org")),
        );
    }
    (a.build(), b.build())
}

fn snapshot_of(n: usize) -> AlignedPairSnapshot {
    let (kb1, kb2) = people_pair(n);
    let owned = {
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_threads(1)).run();
        OwnedAlignment::from_result(&result)
    };
    AlignedPairSnapshot::new(kb1, kb2, owned)
}

/// Reads one `Content-Length`-framed HTTP response; returns
/// `(status, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One GET on a fresh connection.
fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// One POST on a fresh connection.
fn post(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
                 Content-Length: 0\r\n\r\n"
            )
            .as_bytes(),
        )
        .expect("send");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Scrapes `/v1/metrics?format=json` and returns the parsed `data`.
fn scrape_json(addr: std::net::SocketAddr) -> Json {
    let (status, body) = get(addr, "/v1/metrics?format=json");
    assert_eq!(status, 200, "{body}");
    json::parse(&body)
        .expect("metrics json parses")
        .get("data")
        .cloned()
        .expect("enveloped")
}

/// The value of the counter/gauge entry with `name` and, when given,
/// a `label == value` pair.
fn value_of(entries: &Json, kind: &str, name: &str, label: Option<(&str, &str)>) -> Option<u64> {
    entries.get(kind)?.as_array()?.iter().find_map(|e| {
        if e.get("name")?.as_str()? != name {
            return None;
        }
        if let Some((k, v)) = label {
            if e.get("labels")?.get(k)?.as_str()? != v {
                return None;
            }
        }
        e.get("value")?.as_u64()
    })
}

/// Sum of every sample of one counter family.
fn family_sum(entries: &Json, kind: &str, name: &str, value_key: &str) -> u64 {
    entries
        .get(kind)
        .and_then(Json::as_array)
        .map(|samples| {
            samples
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .filter_map(|e| e.get(value_key).and_then(Json::as_u64))
                .sum()
        })
        .unwrap_or(0)
}

/// All histogram entries of one family, as `(route, entry)` pairs.
fn histograms_of<'a>(entries: &'a Json, name: &str) -> Vec<&'a Json> {
    entries
        .get("histograms")
        .and_then(Json::as_array)
        .map(|samples| {
            samples
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn metrics_account_for_every_request_exactly() {
    let dir = std::env::temp_dir().join("paris_metrics_e2e");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    snapshot_of(3).save(dir.join("alpha.snap")).unwrap();
    snapshot_of(5).save(dir.join("beta.snap")).unwrap();

    let server = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 8,
        catalog_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // --- Phase 1: concurrent mixed clients with exact request counts.
    // Four raw keep-alive clients, each 50 requests on its own route,
    // so per-route totals are known exactly.
    const PER_CLIENT: u64 = 50;
    let routes = [
        ("sameas", "/v1/pairs/alpha/sameas?iri=http://a/p1"),
        ("neighbors", "/v1/pairs/beta/neighbors?iri=http://a/p2"),
        ("stats", "/v1/pairs/alpha/stats"),
        ("healthz", "/v1/healthz"),
    ];
    std::thread::scope(|scope| {
        for (_, path) in routes {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                for _ in 0..PER_CLIENT {
                    writer
                        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                        .expect("send");
                    let (status, body) = read_response(&mut reader);
                    assert_eq!(status, 200, "{path}: {body}");
                }
            });
        }
    });

    // Two typed-client lookups of the same path: the second one rides
    // the client's ETag cache, so the daemon answers 304 — one
    // server-side ETag hit, still two requests.
    let mut client = ParisClient::new(&format!("http://{addr}")).unwrap();
    for _ in 0..2 {
        let answer = client
            .sameas(Some("alpha"), "http://a/p1", Side::Left, None)
            .unwrap();
        assert_eq!(answer.sameas.as_deref(), Some("http://b/q1"));
    }
    assert_eq!(client.metrics().cache_hits(), 1);
    assert_eq!(client.metrics().requests(), 2);
    let total = 4 * PER_CLIENT + 2;
    // Close the typed client's keep-alive connection now — a lingering
    // idle connection would make the final shutdown wait out the
    // server's read timeout.
    drop(client);

    // --- Scrape #1 (JSON): exact accounting.
    let data = scrape_json(addr);
    // The total-requests counter is bumped before routing, so the body
    // includes the in-flight scrape itself…
    assert_eq!(
        value_of(&data, "counters", "paris_requests_total", None),
        Some(total + 1)
    );
    // …while the per-route series are recorded after rendering, so they
    // exclude it and sum to exactly the load we sent.
    assert_eq!(
        family_sum(&data, "counters", "paris_route_requests_total", "value"),
        total
    );
    for (route, expected) in [
        ("sameas", PER_CLIENT + 2),
        ("neighbors", PER_CLIENT),
        ("stats", PER_CLIENT),
        ("healthz", PER_CLIENT),
    ] {
        assert_eq!(
            value_of(
                &data,
                "counters",
                "paris_route_requests_total",
                Some(("route", route))
            ),
            Some(expected),
            "route {route}"
        );
    }
    // Per-pair counters: alpha took the sameas + stats traffic, beta the
    // neighbors traffic. (healthz and the scrape carry no pair.)
    assert_eq!(
        value_of(
            &data,
            "counters",
            "paris_pair_requests_total",
            Some(("pair", "alpha"))
        ),
        Some(2 * PER_CLIENT + 2)
    );
    assert_eq!(
        value_of(
            &data,
            "counters",
            "paris_pair_requests_total",
            Some(("pair", "beta"))
        ),
        Some(PER_CLIENT)
    );
    // Status classes: everything was 200 except the one ETag 304.
    assert_eq!(
        value_of(
            &data,
            "counters",
            "paris_responses_total",
            Some(("class", "2xx"))
        ),
        Some(total - 1)
    );
    assert_eq!(
        value_of(
            &data,
            "counters",
            "paris_responses_total",
            Some(("class", "3xx"))
        ),
        Some(1)
    );
    assert_eq!(
        family_sum(&data, "counters", "paris_responses_total", "value"),
        total
    );
    assert_eq!(
        value_of(&data, "counters", "paris_etag_hits_total", None),
        Some(1)
    );
    assert!(value_of(&data, "counters", "paris_etag_misses_total", None).unwrap() >= 1);

    // Histograms: per-route sample counts equal the route counters
    // (merge-correctness: the per-route partition sums to the whole),
    // and the derived quantiles are monotone and bounded by max.
    let latencies = histograms_of(&data, "paris_route_latency_microseconds");
    let mut histogram_total = 0u64;
    for h in &latencies {
        let route = h
            .get("labels")
            .unwrap()
            .get("route")
            .unwrap()
            .as_str()
            .unwrap();
        let count = h.get("count").unwrap().as_u64().unwrap();
        histogram_total += count;
        assert_eq!(
            value_of(
                &data,
                "counters",
                "paris_route_requests_total",
                Some(("route", route))
            ),
            Some(count),
            "route {route}: histogram count vs counter"
        );
        let q = |k: &str| h.get(k).unwrap().as_u64().unwrap();
        assert!(
            q("p50") <= q("p90") && q("p90") <= q("p99") && q("p99") <= q("max"),
            "route {route}: quantiles not monotone: {h:?}"
        );
        // Bucket counts must sum back to the total count.
        let bucket_sum: u64 = h
            .get("buckets")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b.as_array().unwrap()[1].as_u64().unwrap())
            .sum();
        assert_eq!(bucket_sum, count, "route {route}: bucket sum");
    }
    assert_eq!(histogram_total, total);

    // Per-pair serving gauges (satellite: resident/generation/reloads).
    for pair in ["alpha", "beta"] {
        let lbl = Some(("pair", pair));
        assert_eq!(
            value_of(&data, "gauges", "paris_pair_generation", lbl),
            Some(1)
        );
        assert_eq!(
            value_of(&data, "gauges", "paris_pair_reloads", lbl),
            Some(0)
        );
        assert_eq!(value_of(&data, "gauges", "paris_pair_loaded", lbl), Some(1));
        assert!(value_of(&data, "gauges", "paris_pair_resident_bytes", lbl).unwrap() > 0);
    }
    assert_eq!(value_of(&data, "gauges", "paris_pairs", None), Some(2));

    // --- Scrape #2 (Prometheus text): parses line by line, histogram
    // buckets cumulative and consistent with _count.
    let (status, text) = get(addr, "/v1/metrics");
    assert_eq!(status, 200);
    let mut prev: Option<(String, u64)> = None; // (series prefix, last cumulative)
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            prev = None;
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        assert!(value.is_finite() && value >= 0.0, "{line}");
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in {line:?}"
        );
        if series.contains('{') {
            assert!(series.ends_with('}'), "unterminated labels in {line:?}");
        }
        // Cumulative bucket counts within one series never decrease.
        if let Some(bucket_prefix) = series.split(",le=").next() {
            if series.contains("_bucket{") {
                if let Some((p, last)) = &prev {
                    if p == bucket_prefix {
                        assert!(value as u64 >= *last, "buckets not cumulative at {line:?}");
                    }
                }
                prev = Some((bucket_prefix.to_owned(), value as u64));
            } else {
                prev = None;
            }
        }
    }
    // The text scrape runs after the JSON scrape: totals moved by
    // exactly that one observed request.
    assert!(text.contains(&format!("paris_requests_total {}", total + 2)));
    assert!(text.contains("paris_route_requests_total{route=\"metrics\"} 1"));
    // +Inf bucket equals _count for the sameas route.
    let count_line = format!(
        "paris_route_latency_microseconds_count{{route=\"sameas\"}} {}",
        PER_CLIENT + 2
    );
    let inf_line = format!(
        "paris_route_latency_microseconds_bucket{{route=\"sameas\",le=\"+Inf\"}} {}",
        PER_CLIENT + 2
    );
    assert!(text.contains(&count_line), "{text}");
    assert!(text.contains(&inf_line), "{text}");

    // --- Phase 2: rolling reload under load; accounting stays exact.
    snapshot_of(7).save(dir.join("alpha.snap")).unwrap();
    let before = value_of(&scrape_json(addr), "counters", "paris_requests_total", None).unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..PER_CLIENT {
                let (status, _) = get(addr, "/v1/pairs/alpha/sameas?iri=http://a/p1");
                assert_eq!(status, 200);
            }
        });
        scope.spawn(|| {
            let (status, body) = post(addr, "/v1/pairs/alpha/reload");
            assert_eq!(status, 200, "{body}");
        });
    });
    let data = scrape_json(addr);
    // before already includes its own scrape; since then: the load, the
    // reload, and the in-flight scrape.
    assert_eq!(
        value_of(&data, "counters", "paris_requests_total", None),
        Some(before + PER_CLIENT + 2)
    );
    assert_eq!(
        value_of(
            &data,
            "counters",
            "paris_route_requests_total",
            Some(("route", "reload"))
        ),
        Some(1)
    );
    let lbl = Some(("pair", "alpha"));
    assert_eq!(
        value_of(&data, "gauges", "paris_pair_generation", lbl),
        Some(2)
    );
    assert_eq!(
        value_of(&data, "gauges", "paris_pair_reloads", lbl),
        Some(1)
    );
    // The reloaded pair serves the extended snapshot.
    let (status, body) = get(addr, "/v1/pairs/alpha/sameas?iri=http://a/p6");
    assert_eq!(status, 200);
    assert!(body.contains("http://b/q6"), "{body}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
