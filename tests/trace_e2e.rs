//! End-to-end tests of the span-tracing subsystem over real TCP:
//!
//! 1. a traced client request renders as a parent-linked span tree
//!    under `GET /v1/debug/traces/<id>` — the request span is a local
//!    root carrying the client's remote parent span id;
//! 2. one replica sync cycle is ONE trace spanning two daemons — the
//!    `sync_cycle` trace id recorded on the replica also appears in the
//!    primary's span store (propagated via the `traceparent` header on
//!    the manifest/snapshot fetches);
//! 3. an async `POST /align` job's trace shows the fixpoint as
//!    per-iteration pass spans whose durations are consistent with the
//!    job's reported wall time.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use paris_repro::client::{ParisClient, Side};
use paris_repro::datagen::{movies, MoviesConfig};
use paris_repro::kb::snapshot::save_kb;
use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_repro::rdf::Literal;
use paris_repro::server::{Server, ServerConfig};

fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Extracts the string value following `"<key>":"` after byte offset
/// `from` in `body`.
fn str_after(body: &str, key: &str, from: usize) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = body[from..].find(&marker)? + from + marker.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_owned())
}

/// Extracts the number following `"<key>":` after byte offset `from`.
fn num_after(body: &str, key: &str, from: usize) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = body[from..].find(&marker)? + from + marker.len();
    let end = start
        + body[start..]
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(body.len() - start);
    body[start..end].parse().ok()
}

/// The trace id (32 hex digits) of the first span named `name` in a
/// `/v1/debug/traces` body: spans render as
/// `{"trace":"…","span":"…",…,"name":"…",…}`, so the owning object's
/// trace id is the nearest `"trace":"` *before* the name match.
fn trace_of_span_named(body: &str, name: &str) -> Option<String> {
    let at = body.find(&format!("\"name\":\"{name}\""))?;
    let start = body[..at].rfind("\"trace\":\"")? + "\"trace\":\"".len();
    Some(body[start..start + 32].to_owned())
}

fn movies_snapshot(n: usize) -> AlignedPairSnapshot {
    let pair = movies::generate(&MoviesConfig {
        num_movies: n,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned)
}

fn people_pair(n: usize) -> (Kb, Kb) {
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..n {
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(format!("p{i}@x.org")),
        );
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/mail",
            Literal::plain(format!("p{i}@x.org")),
        );
    }
    (a.build(), b.build())
}

/// A traced request is retrievable by its client-side trace id, and the
/// rendered tree's root is the request span: parent-linked to the
/// client's remote span (absent from the local store), annotated with
/// method/path/status.
#[test]
fn traced_request_renders_a_parent_linked_tree() {
    let snapshot = movies_snapshot(20);
    let handle = Server::bind(
        snapshot,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();

    let mut client = ParisClient::new(&format!("http://{addr}")).unwrap();
    // Any traced request will do; an unknown IRI still records a span.
    let _ = client.sameas(None, "http://nope/x", Side::Left, None);
    let trace_id = client.last_trace_id().expect("client injected a trace");

    let tree = client.debug_trace(&trace_id).expect("trace retained");
    assert_eq!(
        tree.get("trace").and_then(|t| t.as_str()),
        Some(trace_id.as_str())
    );
    let roots = tree
        .get("roots")
        .and_then(|r| r.as_array())
        .expect("roots array");
    assert_eq!(roots.len(), 1, "one request span: {tree:?}");
    let root = &roots[0];
    // The request span continues the client's context: same trace, and
    // its parent is the client's span id — present as a link even though
    // that remote span was never recorded locally.
    assert!(root.get("parent").is_some(), "remote parent link: {root:?}");
    let attrs = root.get("attrs").expect("span attrs");
    assert_eq!(attrs.get("method").and_then(|m| m.as_str()), Some("GET"));
    assert_eq!(attrs.get("status").and_then(|s| s.as_u64()), Some(404));

    // The trace also shows up in the daemon-wide listing.
    let listing = client.debug_traces().unwrap();
    assert!(listing.get("recorded").and_then(|r| r.as_u64()).unwrap() >= 1);

    // A bogus id is a 400, an unknown one a 404.
    assert!(client.debug_trace("xyz").is_err());
    let miss = client.debug_trace(&"0".repeat(32));
    assert!(miss.is_err(), "unknown trace must not resolve: {miss:?}");

    handle.shutdown();
}

/// A replica sync cycle is one distributed trace: the trace id under
/// which the replica records `sync_cycle` / `fetch_manifest` spans also
/// identifies request spans in the *primary's* store, because the sync
/// engine forwards its span context in the `traceparent` header.
#[test]
fn one_sync_cycle_is_one_trace_across_both_daemons() {
    let root = std::env::temp_dir().join("paris_trace_e2e_sync");
    std::fs::remove_dir_all(&root).ok();
    let primary_dir = root.join("primary");
    std::fs::create_dir_all(&primary_dir).unwrap();
    let (kb1, kb2) = people_pair(3);
    let owned = {
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_threads(1)).run();
        OwnedAlignment::from_result(&result)
    };
    AlignedPairSnapshot::new(kb1, kb2, owned)
        .save(primary_dir.join("alpha.snap"))
        .unwrap();

    let primary = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        catalog_dir: Some(primary_dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let replica = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        catalog_dir: Some(root.join("replica")),
        replica_of: Some(format!("http://{}", primary.addr())),
        sync_interval: Duration::from_millis(100),
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();

    // One shared trace id, visible in BOTH daemons' debug listings.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let (status, replica_traces) = get(replica.addr(), "/v1/debug/traces");
        assert_eq!(status, 200, "{replica_traces}");
        if let Some(trace_id) = trace_of_span_named(&replica_traces, "sync_cycle") {
            // The replica recorded the whole cycle under this trace...
            let (status, tree) = get(replica.addr(), &format!("/v1/debug/traces/{trace_id}"));
            if status == 200 && tree.contains("\"name\":\"fetch_manifest\"") {
                // ...and the primary's request spans carry the same id.
                let (status, primary_traces) = get(primary.addr(), "/v1/debug/traces");
                assert_eq!(status, 200, "{primary_traces}");
                if primary_traces.contains(&trace_id) {
                    break;
                }
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no sync trace spanned both daemons"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    replica.shutdown();
    primary.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// An async align job is one trace rooted at `align_job`: the fixpoint
/// renders as per-iteration pass spans, and the root span's duration
/// agrees with the job's reported wall time to within 10%.
#[test]
fn align_job_trace_shows_iteration_passes() {
    let dir = std::env::temp_dir().join("paris_trace_e2e_job");
    std::fs::create_dir_all(&dir).unwrap();
    let pair = movies::generate(&MoviesConfig {
        num_movies: 60,
        ..Default::default()
    });
    let left_snap = dir.join("left.snap");
    let right_snap = dir.join("right.snap");
    save_kb(&pair.kb1, &left_snap).unwrap();
    save_kb(&pair.kb2, &right_snap).unwrap();

    let handle = Server::bind(
        movies_snapshot(10),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();

    let (status, body) = post(
        addr,
        "/v1/align",
        &format!(
            "left={}&right={}&max_iterations=4",
            left_snap.display(),
            right_snap.display()
        ),
    );
    assert_eq!(status, 202, "{body}");

    let mut job_body = String::new();
    for _ in 0..600 {
        let (status, body) = get(addr, "/v1/jobs/1");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"status\":\"failed\"") {
            panic!("job failed: {body}");
        }
        if body.contains("\"status\":\"done\"") {
            job_body = body;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!job_body.is_empty(), "job did not finish in time");

    // The terminal status carries the job's trace id and wall time.
    let trace_id = str_after(&job_body, "trace", 0).expect("job trace id");
    let seconds = num_after(&job_body, "seconds", 0).expect("job seconds");
    let (status, tree) = get(addr, &format!("/v1/debug/traces/{trace_id}"));
    assert_eq!(status, 200, "{tree}");

    // The tree roots at align_job with load/align/iteration descendants.
    let job_at = tree.find("\"name\":\"align_job\"").expect("align_job span");
    for name in ["load_snapshots", "align", "iteration", "instance_pass"] {
        assert!(
            tree.contains(&format!("\"name\":\"{name}\"")),
            "{name}: {tree}"
        );
    }

    // Root span duration vs reported wall time: same interval measured
    // two ways, so they must agree to 10% (plus a small absolute slack
    // for the scheduling gap around run_job on loaded CI machines).
    let root_secs = num_after(&tree, "duration_ns", job_at).expect("root duration") / 1e9;
    assert!(
        (root_secs - seconds).abs() <= 0.10 * seconds.max(root_secs) + 0.05,
        "root span {root_secs}s vs job wall time {seconds}s"
    );

    // Iteration spans nest inside the align phase: their summed
    // durations can never exceed it, and they account for the bulk of it
    // (each iteration's passes run back-to-back inside the fixpoint).
    let align_at = tree.find("\"name\":\"align\"").expect("align span");
    let align_secs = num_after(&tree, "duration_ns", align_at).expect("align duration") / 1e9;
    let mut iter_sum = 0.0;
    let mut at = 0;
    while let Some(hit) = tree[at..].find("\"name\":\"iteration\"") {
        at += hit + 1;
        iter_sum += num_after(&tree, "duration_ns", at).expect("iteration duration") / 1e9;
    }
    assert!(iter_sum > 0.0, "no finished iteration spans: {tree}");
    assert!(
        iter_sum <= align_secs + 0.001,
        "iterations {iter_sum}s cannot exceed align {align_secs}s"
    );
    assert!(
        (align_secs - iter_sum).abs() <= 0.10 * align_secs + 0.05,
        "iteration spans {iter_sum}s vs align phase {align_secs}s"
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
