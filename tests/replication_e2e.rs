//! End-to-end test of the replication subsystem over real TCP: one
//! primary and **two replicas**, each a full `paris-server` daemon. The
//! replicas start from empty mirror directories, converge on the
//! primary's catalog, follow a snapshot update published with
//! `POST /pairs/<name>/reload`, reject a corrupted transfer while
//! keeping the old image serving, and propagate a deletion — all while
//! concurrent keep-alive clients hammer both replicas with **zero
//! failed reads**. This is the acceptance harness of ISSUE 4.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{
    AlignedPairSnapshot, Aligner, MappedPairSnapshot, OwnedAlignment, ParisConfig,
};
use paris_repro::rdf::Literal;
use paris_repro::server::{Server, ServerConfig};

fn people_pair(n: usize) -> (Kb, Kb) {
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..n {
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(format!("p{i}@x.org")),
        );
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/mail",
            Literal::plain(format!("p{i}@x.org")),
        );
    }
    (a.build(), b.build())
}

fn snapshot_of(n: usize) -> AlignedPairSnapshot {
    let (kb1, kb2) = people_pair(n);
    let owned = {
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_threads(1)).run();
        OwnedAlignment::from_result(&result)
    };
    AlignedPairSnapshot::new(kb1, kb2, owned)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, String), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().map_err(|e| format!("content-length: {e}"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|e| format!("utf8: {e}"))
}

fn keep_alive_get(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
) -> Result<(u16, String), String> {
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    read_response(reader)
}

fn oneshot(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    read_response(&mut reader).expect("response")
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    oneshot(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    oneshot(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        ),
    )
}

fn wait_until(addr: std::net::SocketAddr, path: &str, needle: &str, what: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let (_, body) = get(addr, path);
        if body.contains(needle) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{what}: {path} never contained {needle}; last body: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn two_replicas_follow_the_primary_with_zero_failed_reads() {
    let root = std::env::temp_dir().join("paris_replication_e2e");
    std::fs::remove_dir_all(&root).ok();
    let primary_dir = root.join("primary");
    std::fs::create_dir_all(&primary_dir).unwrap();
    snapshot_of(3).save(primary_dir.join("alpha.snap")).unwrap();
    MappedPairSnapshot::save_v2(&snapshot_of(4), primary_dir.join("beta.snap")).unwrap();

    // The primary watches its own directory so operator-side deletions
    // leave the catalog (and therefore the manifest).
    let primary = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 8,
        catalog_dir: Some(primary_dir.clone()),
        watch_interval: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let primary_addr = primary.addr();

    // Two replicas, each starting from a nonexistent mirror directory.
    let mut replicas = Vec::new();
    let mut replica_addrs = Vec::new();
    for i in 0..2 {
        let handle = Server::bind_catalog(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 8,
            catalog_dir: Some(root.join(format!("replica{i}"))),
            replica_of: Some(format!("http://{primary_addr}")),
            sync_interval: Duration::from_millis(100),
            ..ServerConfig::default()
        })
        .unwrap()
        .spawn()
        .unwrap();
        replica_addrs.push(handle.addr());
        replicas.push(handle);
    }

    // Both replicas converge on the initial catalog.
    for &addr in &replica_addrs {
        wait_until(
            addr,
            "/pairs/alpha/sameas?iri=http://a/p1",
            "http://b/q1",
            "initial alpha",
        );
        wait_until(
            addr,
            "/pairs/beta/sameas?iri=http://a/p3",
            "http://b/q3",
            "initial beta",
        );
        let (_, health) = get(addr, "/healthz");
        assert!(health.contains("\"role\":\"replica\""), "{health}");
        assert!(
            health.contains(&format!("\"upstream\":\"http://{primary_addr}\"")),
            "{health}"
        );
        wait_until(
            addr,
            "/healthz",
            "\"last_sync_seconds_ago\"",
            "sync time reported",
        );
        // The v2 pair is served from its mmapped arena on the replica too.
        let (_, beta) = get(addr, "/pairs/beta/stats");
        assert!(beta.contains("\"format\":\"v2\""), "{beta}");
    }
    let (_, primary_health) = get(primary_addr, "/healthz");
    assert!(
        primary_health.contains("\"role\":\"primary\""),
        "{primary_health}"
    );

    // Hammer both replicas with keep-alive clients for the whole update
    // + corruption story below; every response must be a 200.
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));
    let successes = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = replica_addrs
        .iter()
        .flat_map(|&addr| [(addr, 0usize), (addr, 1usize)])
        .map(|(addr, offset)| {
            let stop = Arc::clone(&stop);
            let failures = Arc::clone(&failures);
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let paths = [
                    "/pairs/alpha/sameas?iri=http://a/p1",
                    "/pairs/beta/sameas?iri=http://a/p1",
                    "/pairs/alpha/stats",
                    "/pairs/beta/neighbors?iri=http://a/p0",
                ];
                let mut i = offset;
                while !stop.load(Ordering::Relaxed) {
                    match keep_alive_get(&mut stream, &mut reader, paths[i % paths.len()]) {
                        Ok((200, body)) if !body.is_empty() => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((status, body)) => {
                            eprintln!("client on {addr}: unexpected {status}: {body}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("client on {addr}: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    i += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // Publish a bigger alpha on the primary the supported way: replace
    // the snapshot file, then POST /pairs/alpha/reload.
    snapshot_of(6).save(primary_dir.join("alpha.snap")).unwrap();
    let (status, body) = post(primary_addr, "/pairs/alpha/reload");
    assert_eq!(status, 200, "{body}");
    for &addr in &replica_addrs {
        wait_until(
            addr,
            "/pairs/alpha/sameas?iri=http://a/p5",
            "http://b/q5",
            "alpha update",
        );
        wait_until(addr, "/healthz", "\"lag\":0", "lag back to zero");
    }

    // Corrupt beta *on the primary*: replicas must reject the transfer
    // (the bytes are not a valid snapshot) and keep serving their old
    // image without interruption.
    std::fs::write(primary_dir.join("beta.snap"), b"garbage, not a snapshot").unwrap();
    std::thread::sleep(Duration::from_millis(600));
    for &addr in &replica_addrs {
        wait_until(addr, "/healthz", "\"last_error\"", "beta failure visible");
        let (status, body) = get(addr, "/pairs/beta/sameas?iri=http://a/p3");
        assert_eq!(status, 200, "old beta must keep serving: {body}");
        assert!(body.contains("http://b/q3"), "{body}");
    }
    // The replicas' mirror files are untouched (still the old valid v2).
    for i in 0..2 {
        let bytes = std::fs::read(root.join(format!("replica{i}/beta.snap"))).unwrap();
        assert_ne!(
            &bytes[..7],
            b"garbage",
            "replica {i} must not install garbage"
        );
    }

    // Repair beta with a *new* snapshot: the failing pair recovers after
    // its backoff and both replicas converge on the repaired image.
    MappedPairSnapshot::save_v2(&snapshot_of(7), primary_dir.join("beta.snap")).unwrap();
    for &addr in &replica_addrs {
        wait_until(
            addr,
            "/pairs/beta/sameas?iri=http://a/p6",
            "http://b/q6",
            "beta repair",
        );
    }

    // Self-healing: a locally deleted mirror file is noticed (the
    // engine's checksum cache is file-signature-keyed, so the deletion
    // invalidates it) and re-downloaded within a poll — while the pair
    // keeps serving from its in-memory image the whole time.
    std::fs::remove_file(root.join("replica0/alpha.snap")).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while !root.join("replica0/alpha.snap").exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "deleted mirror file never re-synced"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    wait_until(
        replica_addrs[0],
        "/pairs/alpha/sameas?iri=http://a/p5",
        "http://b/q5",
        "alpha after self-heal",
    );

    // Stop the load; not a single request may have failed across the
    // update, the corruption window, and the repair swaps.
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "every concurrent replica read must succeed"
    );
    let ok = successes.load(Ordering::Relaxed);
    assert!(ok > 100, "clients must have made real progress (got {ok})");

    // Deletions propagate: removing alpha from the primary's directory
    // (picked up by its watch rescan) must drop it from the manifest,
    // from both replicas' catalogs, and from their mirror directories.
    std::fs::remove_file(primary_dir.join("alpha.snap")).unwrap();
    wait_until(
        primary_addr,
        "/pairs",
        "\"default\":\"beta\"",
        "primary rescan",
    );
    for (i, &addr) in replica_addrs.iter().enumerate() {
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            let (status, _) = get(addr, "/pairs/alpha/stats");
            if status == 404 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replica {i} never dropped alpha"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(
            !root.join(format!("replica{i}/alpha.snap")).exists(),
            "replica {i}'s mirror file must be deleted"
        );
        // No temp-file litter from all the transfers.
        let stray: Vec<_> = std::fs::read_dir(root.join(format!("replica{i}")))
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != "beta.snap")
            .collect();
        assert!(stray.is_empty(), "replica {i} litter: {stray:?}");
    }

    for r in replicas {
        r.shutdown();
    }
    primary.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
