//! End-to-end proof of out-of-core operation for `paris ingest`.
//!
//! A counting global allocator measures the real peak heap growth of the
//! heap build path (`parse → KbBuilder → Kb → kb_to_bytes_v2`); the ingest
//! budget is then set to a quarter of that measured peak, and the test
//! asserts the streaming pipeline (a) stays under the heap path's peak,
//! (b) still emits byte-identical output, and (c) produces a snapshot the
//! serving stack opens and answers from — `/sameas` and `/neighbors`
//! responses from a daemon built off the ingested images are bit-equal to
//! ones built off the heap images.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use paris_repro::datagen::{movies, MoviesConfig};
use paris_repro::kb::export::to_ntriples;
use paris_repro::kb::ingest::{ingest_reader, IngestOptions};
use paris_repro::kb::snapshot::load_kb;
use paris_repro::kb::snapshot_v2::kb_to_bytes_v2;
use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_repro::rdf::ntriples::Parser;
use paris_repro::server::{Server, ServerConfig};

// ---------------------------------------------------------------- allocator

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Tracks live heap bytes and their high-water mark.
struct CountingAlloc;

impl CountingAlloc {
    fn add(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn sub(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: pure pass-through to the System allocator; the only added
// behavior is relaxed atomic counter updates, which never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to System.alloc under the caller's contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::add(layout.size());
        }
        p
    }

    // SAFETY: delegates to System.dealloc under the caller's contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::sub(layout.size());
    }

    // SAFETY: delegates to System.realloc under the caller's contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::sub(layout.size());
            Self::add(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns (result, peak heap growth in bytes above the level
/// at entry).
fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(base))
}

// ---------------------------------------------------------------- HTTP bits

fn get(addr: std::net::SocketAddr, path_and_query: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path_and_query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Aligns two KBs and spawns a daemon serving the result; answers a probe
/// list of `/sameas` + `/neighbors` queries and returns the raw bodies.
fn serve_and_probe(kb1: Kb, kb2: Kb, probes: &[String]) -> Vec<(u16, String)> {
    let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    let server = Server::bind(
        AlignedPairSnapshot::new(kb1, kb2, owned),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();
    let answers = probes.iter().map(|p| get(addr, p)).collect();
    handle.shutdown();
    answers
}

// ---------------------------------------------------------------- the test

#[test]
fn ingest_is_out_of_core_and_serves_identically() {
    // A movies world big enough that the heap build's peak dwarfs the
    // ingest pipeline's bounded buffers.
    let pair = movies::generate(&MoviesConfig {
        num_movies: 400,
        ..MoviesConfig::default()
    });
    let left_doc = to_ntriples(&pair.kb1);
    let right_doc = to_ntriples(&pair.kb2);
    let probe_iri = pair
        .kb1
        .instances()
        .find_map(|e| pair.kb1.iri(e))
        .expect("an instance")
        .as_str()
        .to_owned();
    drop(pair);

    // Measure the heap path's true peak on the bigger side.
    let (heap_left, heap_peak) = measure_peak(|| {
        let triples = Parser::parse_all(&left_doc).unwrap();
        let mut b = KbBuilder::new("left");
        b.add_triples(&triples);
        kb_to_bytes_v2(&b.build())
    });

    // Budget: a quarter of the measured heap-path peak — an input this
    // size could NOT be built in-heap under it.
    let budget = (heap_peak / 4).max(64 << 10);
    assert!(
        budget < heap_peak,
        "heap peak {heap_peak} too small to demonstrate out-of-core operation"
    );

    let dir = std::env::temp_dir().join(format!("paris-ingest-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let left_snap = dir.join("left.snap");
    let right_snap = dir.join("right.snap");

    let opts = IngestOptions {
        name: "left".to_owned(),
        mem_budget: budget,
        threads: 2,
        ..IngestOptions::default()
    };
    let (report, ingest_peak) = measure_peak(|| {
        ingest_reader(left_doc.as_bytes(), &left_snap, &opts).expect("ingest succeeds")
    });

    // (a) Out-of-core: the streaming build stayed under the heap path's
    // peak (the budget bounds the sort buffers; parse chunks and section
    // buffers ride on top, which is why the assertion is against the heap
    // peak rather than the raw budget).
    assert!(
        ingest_peak < heap_peak,
        "ingest peak {ingest_peak} not below heap-path peak {heap_peak} (budget {budget})"
    );
    assert!(
        report.spill_runs > 0,
        "budget {budget} should force spilling"
    );

    // (b) Byte-identical output.
    assert_eq!(
        std::fs::read(&left_snap).unwrap(),
        heap_left,
        "ingested snapshot must be bit-identical to the heap-built one"
    );

    // (c) The serving stack consumes the ingested images unchanged. Build
    // the right side too, then serve one daemon from ingested snapshots
    // and one from heap KBs: probe answers must be bit-equal.
    let opts = IngestOptions {
        name: "right".to_owned(),
        mem_budget: budget,
        threads: 2,
        ..IngestOptions::default()
    };
    ingest_reader(right_doc.as_bytes(), &right_snap, &opts).expect("ingest succeeds");

    let probes = vec![
        format!("/v1/pairs/default/sameas?iri={probe_iri}"),
        format!("/v1/pairs/default/neighbors?iri={probe_iri}&limit=20"),
    ];
    // load_kb auto-detects the v2 images `paris ingest` writes.
    let from_ingest = serve_and_probe(
        load_kb(&left_snap).expect("ingested snapshot opens"),
        load_kb(&right_snap).expect("ingested snapshot opens"),
        &probes,
    );
    let heap_kb = |name: &str, doc: &str| {
        let mut b = KbBuilder::new(name);
        b.add_triples(&Parser::parse_all(doc).unwrap());
        b.build()
    };
    let from_heap = serve_and_probe(
        heap_kb("left", &left_doc),
        heap_kb("right", &right_doc),
        &probes,
    );
    for ((probe, got), want) in probes.iter().zip(&from_ingest).zip(&from_heap) {
        assert_eq!(got.0, 200, "{probe}: {}", got.1);
        assert_eq!(got, want, "{probe}: served answers must be bit-equal");
    }

    std::fs::remove_dir_all(&dir).ok();
}
