//! Snapshot round-tripping on real generated data: build → align →
//! snapshot → load must preserve statistics, alignments, and query
//! answers exactly; corrupt or truncated files must be rejected.

use paris_repro::datagen::{movies, persons, MoviesConfig, PersonsConfig};
use paris_repro::kb::snapshot::{load_kb, read_file, save_kb, SnapshotError};
use paris_repro::kb::KbStats;
use paris_repro::paris::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("paris_it_{name}"))
}

#[test]
fn kb_snapshot_preserves_stats_and_queries() {
    let pair = persons::generate(&PersonsConfig {
        num_persons: 60,
        ..Default::default()
    });
    let path = temp_path("kb_roundtrip.snap");
    save_kb(&pair.kb1, &path).unwrap();
    let loaded = load_kb(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(KbStats::of(&loaded), KbStats::of(&pair.kb1));

    // Every entity answers the same lookups.
    for e in pair.kb1.entities() {
        assert_eq!(loaded.kind(e), pair.kb1.kind(e));
        assert_eq!(loaded.term(e), pair.kb1.term(e));
        assert_eq!(loaded.facts(e), pair.kb1.facts(e));
        assert_eq!(loaded.types_of(e), pair.kb1.types_of(e));
    }
    for r in pair.kb1.directed_relations() {
        assert_eq!(loaded.functionality(r), pair.kb1.functionality(r));
        assert_eq!(loaded.num_pairs(r), pair.kb1.num_pairs(r));
    }
    for &c in pair.kb1.classes() {
        assert_eq!(loaded.members(c), pair.kb1.members(c));
        assert_eq!(loaded.superclasses(c), pair.kb1.superclasses(c));
    }
}

#[test]
fn aligned_pair_snapshot_preserves_alignment_and_answers() {
    let pair = movies::generate(&MoviesConfig {
        num_movies: 120,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();

    let expected_pairs = result.instance_pairs();
    let expected_rel_12 = result.relation_alignments_1to2(0.3);
    let expected_rel_21 = result.relation_alignments_2to1(0.3);
    let expected_sameas = result.sameas_triples(0.4);
    let sample_iris: Vec<String> = expected_pairs
        .iter()
        .take(20)
        .filter_map(|&(x, _, _)| pair.kb1.iri(x).map(|i| i.as_str().to_owned()))
        .collect();
    let expected_answers: Vec<_> = sample_iris
        .iter()
        .map(|iri| result.instance_alignment_by_iri(iri))
        .collect();

    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    let snap = AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned);
    let path = temp_path("pair_roundtrip.snap");
    snap.save(&path).unwrap();
    let loaded = AlignedPairSnapshot::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Stats of both KBs survive.
    assert_eq!(KbStats::of(&loaded.kb1), KbStats::of(&snap.kb1));
    assert_eq!(KbStats::of(&loaded.kb2), KbStats::of(&snap.kb2));

    // The alignment is bit-identical.
    assert_eq!(loaded.alignment.instance_pairs(&loaded.kb1), expected_pairs);
    assert_eq!(
        loaded
            .alignment
            .relation_alignments_1to2(&loaded.kb1, &loaded.kb2, 0.3),
        expected_rel_12
    );
    assert_eq!(
        loaded.alignment.num_instance_pairs(),
        snap.alignment.num_instance_pairs()
    );
    let rel_21_loaded: Vec<_> = loaded.alignment.subrelations.alignments_2to1().collect();
    let rel_21_orig: Vec<_> = snap.alignment.subrelations.alignments_2to1().collect();
    assert_eq!(rel_21_loaded, rel_21_orig);
    assert!(rel_21_orig.iter().filter(|&&(_, _, p)| p >= 0.3).count() == expected_rel_21.len());

    // Query answers are identical, one by one.
    for (iri, expected) in sample_iris.iter().zip(&expected_answers) {
        assert_eq!(
            loaded
                .alignment
                .instance_alignment_by_iri(&loaded.kb1, &loaded.kb2, iri)
                .as_ref(),
            expected.as_ref(),
            "{iri}"
        );
    }

    // The owl:sameAs rendering (what the CLI emits) also matches.
    let loaded_sameas: Vec<_> = loaded
        .alignment
        .instance_pairs(&loaded.kb1)
        .into_iter()
        .filter(|&(_, _, p)| p >= 0.4)
        .filter_map(|(x, x2, _)| Some((loaded.kb1.iri(x)?.clone(), loaded.kb2.iri(x2)?.clone())))
        .collect();
    let expected_sameas: Vec<_> = expected_sameas
        .into_iter()
        .map(|t| {
            let obj = t.object.as_iri().expect("sameAs object is an IRI").clone();
            (t.subject, obj)
        })
        .collect();
    assert_eq!(loaded_sameas, expected_sameas);
}

#[test]
fn corrupt_and_truncated_snapshots_are_rejected() {
    let pair = persons::generate(&PersonsConfig {
        num_persons: 20,
        ..Default::default()
    });
    let path = temp_path("corruption.snap");
    save_kb(&pair.kb1, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Corrupt header: bad magic.
    let mut bad = pristine.clone();
    bad[0] ^= 0xFF;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(load_kb(&path), Err(SnapshotError::BadMagic)));

    // Unsupported version.
    let mut bad = pristine.clone();
    bad[8..12].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        load_kb(&path),
        Err(SnapshotError::UnsupportedVersion(7))
    ));

    // Flipped payload byte: checksum failure.
    let mut bad = pristine.clone();
    let mid = pristine.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        load_kb(&path),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // Truncation at several points must never panic, always error.
    for frac in [0.1, 0.5, 0.99] {
        let cut = (pristine.len() as f64 * frac) as usize;
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(load_kb(&path).is_err(), "truncated at {cut} bytes");
    }

    // And the pristine file still loads (sanity check on the fixture).
    std::fs::write(&path, &pristine).unwrap();
    assert!(load_kb(&path).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn kind_confusion_is_rejected() {
    let pair = persons::generate(&PersonsConfig {
        num_persons: 10,
        ..Default::default()
    });
    let kb_path = temp_path("kind_kb.snap");
    save_kb(&pair.kb1, &kb_path).unwrap();

    // A single-KB snapshot is not an aligned pair…
    assert!(AlignedPairSnapshot::load(&kb_path).is_err());

    // …and an aligned pair is not a single KB.
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    let pair_path = temp_path("kind_pair.snap");
    AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned)
        .save(&pair_path)
        .unwrap();
    assert!(load_kb(&pair_path).is_err());

    // read_file exposes the kind for dispatchers.
    let (kind, _) = read_file(&kb_path).unwrap();
    assert_eq!(format!("{kind:?}"), "Kb");
    std::fs::remove_file(&kb_path).ok();
    std::fs::remove_file(&pair_path).ok();
}

/// Property test (satellite of the v2 arena work): flipping a *random*
/// byte anywhere in a snapshot image — v1 and v2 alike — must make the
/// load fail cleanly with a checksum/structure error. Never a panic,
/// never a silently wrong image. Every byte of both formats is covered
/// by either a validated header field or a (section) checksum, so there
/// is no flippable byte that legitimately loads.
#[test]
fn random_byte_flips_fail_cleanly_in_both_formats() {
    use paris_repro::paris::MappedPairSnapshot;
    use rand::{RngExt, SeedableRng};

    let pair = movies::generate(&MoviesConfig {
        num_movies: 40,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    let snap = AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned);

    let v1 = snap.to_bytes();
    let v2 = MappedPairSnapshot::encode(&snap);
    assert!(
        AlignedPairSnapshot::from_bytes(&v1).is_ok(),
        "pristine v1 loads"
    );
    assert!(
        MappedPairSnapshot::from_bytes(v2.clone()).is_ok(),
        "pristine v2 opens"
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EC7_10F1);
    for trial in 0..256 {
        // v1: decode path.
        let offset = rng.random_range(0..v1.len());
        let bit = 1u8 << rng.random_range(0..8u32);
        let mut corrupted = v1.clone();
        corrupted[offset] ^= bit;
        let err = AlignedPairSnapshot::from_bytes(&corrupted)
            .err()
            .unwrap_or_else(|| {
                panic!("v1 trial {trial}: flip of bit {bit:#x} at byte {offset} loaded silently")
            });
        // The error renders (no panic) and is one of the clean kinds.
        assert!(!err.to_string().is_empty());

        // v2: zero-copy open path.
        let offset = rng.random_range(0..v2.len());
        let bit = 1u8 << rng.random_range(0..8u32);
        let mut corrupted = v2.clone();
        corrupted[offset] ^= bit;
        let err = MappedPairSnapshot::from_bytes(corrupted)
            .err()
            .unwrap_or_else(|| {
                panic!("v2 trial {trial}: flip of bit {bit:#x} at byte {offset} opened silently")
            });
        assert!(!err.to_string().is_empty());
    }

    // Random truncations fail cleanly too.
    for _ in 0..64 {
        let cut = rng.random_range(0..v1.len());
        assert!(
            AlignedPairSnapshot::from_bytes(&v1[..cut]).is_err(),
            "v1 cut {cut}"
        );
        let cut = rng.random_range(0..v2.len());
        assert!(
            MappedPairSnapshot::from_bytes(v2[..cut].to_vec()).is_err(),
            "v2 cut {cut}"
        );
    }
}
