//! Byte-identity property test for `paris ingest`.
//!
//! The external-sort ingest pipeline promises output **bit-identical** to
//! the heap path (`parse → KbBuilder → Kb → kb_to_bytes_v2`) — that is the
//! contract that lets the whole serving/replication/explain stack consume
//! ingested images unchanged. This test drives both paths over ~10 seeded
//! random KBs plus the movies fixtures, under budgets small enough to force
//! multi-run spilling and at 1 vs 4 parser threads.

use paris_repro::datagen::{movies, MoviesConfig};
use paris_repro::kb::export::to_ntriples;
use paris_repro::kb::ingest::{ingest_reader, IngestOptions};
use paris_repro::kb::snapshot_v2::kb_to_bytes_v2;
use paris_repro::kb::KbBuilder;
use paris_repro::rdf::ntriples::Parser;

/// A tiny deterministic LCG — the test owns its randomness so a failing
/// seed reproduces exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates a random N-Triples document exercising every statement shape
/// the ingest pipeline distinguishes: plain facts (IRI and literal objects,
/// with duplicates), `rdf:type`, `rdfs:subClassOf` (including cycles and
/// self-loops), `rdfs:subPropertyOf`, and vocab statements with literal
/// objects (which the heap path drops whole).
fn random_doc(seed: u64, statements: usize) -> String {
    let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let entities = 40 + rng.below(80);
    let relations = 3 + rng.below(8);
    let classes = 4 + rng.below(10);
    let mut doc = String::new();
    for _ in 0..statements {
        let s = rng.below(entities);
        match rng.below(100) {
            0..=59 => {
                // A fact; ~1/3 literal objects, ~1/5 of the rest repeated.
                let r = rng.below(relations);
                match rng.below(3) {
                    0 => {
                        let v = rng.below(500);
                        match rng.below(3) {
                            0 => doc.push_str(&format!(
                                "<http://t/e{s}> <http://t/r{r}> \"v{v}\" .\n"
                            )),
                            1 => doc.push_str(&format!(
                                "<http://t/e{s}> <http://t/r{r}> \"v{v}\"@en .\n"
                            )),
                            _ => doc.push_str(&format!(
                                "<http://t/e{s}> <http://t/r{r}> \"{v}\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
                            )),
                        }
                    }
                    _ => {
                        let o = rng.below(entities);
                        let line = format!("<http://t/e{s}> <http://t/r{r}> <http://t/e{o}> .\n");
                        let repeats = if rng.below(5) == 0 { 2 } else { 1 };
                        for _ in 0..repeats {
                            doc.push_str(&line);
                        }
                    }
                }
            }
            60..=79 => {
                let c = rng.below(classes);
                doc.push_str(&format!(
                    "<http://t/e{s}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://t/C{c}> .\n"
                ));
            }
            80..=92 => {
                // Subclass edges; self-loops and cycles must be tolerated.
                let a = rng.below(classes);
                let b = if rng.below(10) == 0 {
                    a
                } else {
                    rng.below(classes)
                };
                doc.push_str(&format!(
                    "<http://t/C{a}> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://t/C{b}> .\n"
                ));
            }
            93..=97 => {
                let a = rng.below(relations);
                let b = rng.below(relations);
                doc.push_str(&format!(
                    "<http://t/r{a}> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://t/r{b}> .\n"
                ));
            }
            _ => {
                // Vocab statements with literal objects: dropped whole.
                doc.push_str(&format!(
                    "<http://t/e{s}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \"not a class\" .\n"
                ));
            }
        }
    }
    doc
}

/// The heap path: parse everything, intern into a `KbBuilder`, serialize.
fn heap_bytes(name: &str, doc: &str) -> Vec<u8> {
    let triples = Parser::parse_all(doc).expect("generated doc must parse");
    let mut b = KbBuilder::new(name);
    b.add_triples(&triples);
    kb_to_bytes_v2(&b.build())
}

/// Ingests `doc` under the given budget/threads and returns the snapshot
/// bytes plus the number of spill runs taken.
fn ingest_bytes(name: &str, doc: &str, mem_budget: usize, threads: usize) -> (Vec<u8>, u64) {
    let dir = std::env::temp_dir().join(format!(
        "paris-ingest-identity-{}-{name}-{mem_budget}-{threads}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("out.snap");
    let opts = IngestOptions {
        name: name.to_owned(),
        mem_budget,
        threads,
        ..IngestOptions::default()
    };
    let report = ingest_reader(doc.as_bytes(), &out, &opts).expect("ingest succeeds");
    let bytes = std::fs::read(&out).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    (bytes, report.spill_runs)
}

#[test]
fn seeded_random_kbs_are_byte_identical_under_spilling() {
    for seed in 0..10u64 {
        let doc = random_doc(seed, 1500);
        let expected = heap_bytes("t", &doc);
        // Floor budget (64 KiB) forces multi-run spilling on this input;
        // the default budget keeps everything in memory. Both must agree
        // with the heap path at 1 and 4 threads.
        let mut spill_seen = false;
        for (budget, threads) in [(1, 1), (1, 4), (256 << 20, 1), (256 << 20, 4)] {
            let (bytes, spills) = ingest_bytes("t", &doc, budget, threads);
            assert_eq!(
                bytes, expected,
                "seed {seed}: budget {budget}, threads {threads} diverged from heap path"
            );
            spill_seen |= spills > 1;
        }
        assert!(
            spill_seen,
            "seed {seed}: the tiny budget was expected to force multi-run spills"
        );
    }
}

#[test]
fn movies_fixtures_are_byte_identical_under_spilling() {
    let pair = movies::generate(&MoviesConfig {
        num_movies: 60,
        ..MoviesConfig::default()
    });
    for (name, kb) in [("left", &pair.kb1), ("right", &pair.kb2)] {
        let doc = to_ntriples(kb);
        let expected = heap_bytes(name, &doc);
        for threads in [1, 4] {
            let (bytes, spills) = ingest_bytes(name, &doc, 1, threads);
            assert_eq!(
                bytes, expected,
                "movies {name} (threads {threads}) diverged from heap path"
            );
            assert!(spills > 1, "movies {name}: expected multi-run spilling");
        }
    }
}
