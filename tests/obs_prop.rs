//! Property tests for the observability kernel, driven by the in-tree
//! deterministic `StdRng`:
//!
//! * [`HistogramSnapshot::merge`] is commutative and associative, and
//!   merging two snapshots is *exact* — identical to having recorded
//!   the concatenated sample stream into one histogram;
//! * [`flame::aggregate`] conserves time on random well-nested span
//!   forests: the self times across every tree sum to exactly the root
//!   spans' wall time, regardless of depth, fan-out, gaps, orphans,
//!   open spans, or input order.

use paris_repro::obs::flame::{aggregate, total_root_ns, total_self_ns};
use paris_repro::obs::span::{Span, SpanId, TraceId};
use paris_repro::obs::{Histogram, HistogramSnapshot};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Samples spread across the histogram's bucket range: small latencies,
/// mid-range, and far-tail values in one stream.
fn random_samples(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| match rng.random_range(0..3u32) {
            0 => rng.random_range(0..100u64),
            1 => rng.random_range(0..100_000u64),
            _ => rng.random_range(0..10_000_000_000u64),
        })
        .collect()
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn assert_snapshots_equal(a: &HistogramSnapshot, b: &HistogramSnapshot, what: &str) {
    assert_eq!(a.buckets, b.buckets, "{what}: buckets");
    assert_eq!(a.count, b.count, "{what}: count");
    assert_eq!(a.sum, b.sum, "{what}: sum");
    assert_eq!(a.max, b.max, "{what}: max");
}

#[test]
fn histogram_merge_is_commutative_associative_and_exact() {
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(0..200usize);
        let xs = random_samples(&mut rng, n);
        let n = rng.random_range(0..200usize);
        let ys = random_samples(&mut rng, n);
        let n = rng.random_range(0..200usize);
        let zs = random_samples(&mut rng, n);
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));

        assert_snapshots_equal(&merged(&a, &b), &merged(&b, &a), "commutativity");
        assert_snapshots_equal(
            &merged(&merged(&a, &b), &c),
            &merged(&a, &merged(&b, &c)),
            "associativity",
        );

        // Merging snapshots loses nothing: same state as recording the
        // concatenated stream into a single histogram.
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        assert_snapshots_equal(
            &merged(&merged(&a, &b), &c),
            &snapshot_of(&all),
            "exactness vs one histogram",
        );
    }
}

const NAMES: [&str; 6] = ["request", "lookup", "render", "decode", "iteration", "pass"];

/// Fills `[parent.start_ns, parent.end_ns)` with 0–3 disjoint child
/// spans (random gaps between them), recursing up to depth 4. This is
/// exactly the well-nested shape every span collector in the workspace
/// produces: children contained in their parent, siblings disjoint.
fn generate_children(
    rng: &mut StdRng,
    trace: TraceId,
    parent: &Span,
    depth: u32,
    out: &mut Vec<Span>,
) {
    if depth >= 4 {
        return;
    }
    let mut cursor = parent.start_ns;
    for _ in 0..rng.random_range(0..4usize) {
        let remaining = parent.end_ns.saturating_sub(cursor);
        if remaining < 4 {
            break;
        }
        let start = cursor + rng.random_range(0..remaining / 2);
        let len = rng.random_range(1..=(parent.end_ns - start));
        let mut child = Span::begin(
            NAMES[rng.random_range(0..NAMES.len())],
            trace,
            Some(parent.id),
        );
        child.start_ns = start;
        child.end_ns = start + len;
        generate_children(rng, trace, &child, depth + 1, out);
        cursor = child.end_ns;
        out.push(child);
    }
}

#[test]
fn flame_aggregation_conserves_self_time_on_random_forests() {
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let trace = TraceId::random();
        let mut forest = Vec::new();
        let mut expected_wall = 0u64;

        // Locally-rooted trees with random (possibly overlapping
        // across roots) intervals.
        for _ in 0..rng.random_range(1..5usize) {
            let start = rng.random_range(0..1_000_000u64);
            let len = rng.random_range(100..1_000_000u64);
            let mut root = Span::begin(NAMES[rng.random_range(0..NAMES.len())], trace, None);
            root.start_ns = start;
            root.end_ns = start + len;
            expected_wall += len;
            generate_children(&mut rng, trace, &root, 0, &mut forest);
            forest.push(root);
        }

        // Orphans — a parent id absent from the input (ring eviction)
        // roots its own tree and contributes its own wall time.
        for _ in 0..rng.random_range(0..3usize) {
            let len = rng.random_range(1..10_000u64);
            let mut orphan = Span::begin("pass", trace, Some(SpanId::random()));
            orphan.start_ns = 0;
            orphan.end_ns = len;
            expected_wall += len;
            forest.push(orphan);
        }

        // Open spans are skipped: completed work only.
        forest.push(Span::begin("pending", trace, None));

        // Input order must not matter: Fisher–Yates shuffle.
        for i in (1..forest.len()).rev() {
            forest.swap(i, rng.random_range(0..=i));
        }

        let nodes = aggregate(&forest, None);
        assert_eq!(
            total_root_ns(&nodes),
            expected_wall,
            "seed {seed}: roots account for every closed root span"
        );
        assert_eq!(
            total_self_ns(&nodes),
            total_root_ns(&nodes),
            "seed {seed}: self times must sum to the root wall time"
        );
    }
}
