//! Determinism guarantees: identical runs produce identical alignments,
//! thread count does not affect results, and θ does not affect the final
//! assignment (§6.3 experiment 1).

use paris_repro::datagen::{restaurants, RestaurantsConfig};
use paris_repro::kb::EntityId;
use paris_repro::paris::{Aligner, AlignmentResult, ParisConfig};

fn assignments(result: &AlignmentResult<'_>) -> Vec<Option<(EntityId, f64)>> {
    result.instances.maximal_assignment()
}

#[test]
fn identical_runs_are_bit_identical() {
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let a = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let b = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    assert_eq!(assignments(&a), assignments(&b));
    assert_eq!(a.iterations.len(), b.iterations.len());
    assert_eq!(a.subrelations.num_entries(), b.subrelations.num_entries());
}

#[test]
fn thread_count_does_not_change_results() {
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let seq = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default().with_threads(1)).run();
    let par = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default().with_threads(4)).run();
    assert_eq!(assignments(&seq), assignments(&par));
}

#[test]
fn theta_does_not_change_final_assignment() {
    // §6.3 experiment 1, as a regression test on a smaller dataset.
    let pair = restaurants::generate(&RestaurantsConfig {
        num_matched: 60,
        ..RestaurantsConfig::default()
    });
    let reference: Vec<Option<EntityId>> = {
        let r = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        assignments(&r)
            .into_iter()
            .map(|a| a.map(|(e, _)| e))
            .collect()
    };
    for theta in [0.001, 0.01, 0.05, 0.2] {
        let r = Aligner::new(
            &pair.kb1,
            &pair.kb2,
            ParisConfig::default().with_theta(theta),
        )
        .run();
        let got: Vec<Option<EntityId>> = assignments(&r)
            .into_iter()
            .map(|a| a.map(|(e, _)| e))
            .collect();
        assert_eq!(reference, got, "θ = {theta} changed the assignment");
    }
}

#[test]
fn different_seeds_produce_different_data_same_quality() {
    let a = restaurants::generate(&RestaurantsConfig {
        seed: 1,
        ..Default::default()
    });
    let b = restaurants::generate(&RestaurantsConfig {
        seed: 2,
        ..Default::default()
    });
    // The structural sizes are seed-independent; the literal content is not.
    assert_ne!(
        paris_repro::kb::export::to_ntriples(&a.kb1),
        paris_repro::kb::export::to_ntriples(&b.kb1)
    );

    for pair in [&a, &b] {
        let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
        let counts = paris_repro::eval::evaluate_instances(&result, &pair.gold);
        assert!(counts.f1() > 0.8, "seed robustness: {counts:?}");
    }
}
