//! End-to-end alignment on every synthetic dataset, asserting the paper's
//! result *shapes* (who wins, roughly by how much, where the errors come
//! from) rather than exact figures.

use paris_repro::baselines::label_baseline;
use paris_repro::datagen::{
    encyclopedia, movies, persons, restaurants, EncyclopediaConfig, MoviesConfig, PersonsConfig,
    RestaurantsConfig,
};
use paris_repro::eval::{
    evaluate_classes_1to2, evaluate_classes_2to1, evaluate_instances, evaluate_relations, Counts,
};
use paris_repro::literals::LiteralSimilarity;
use paris_repro::paris::{Aligner, ParisConfig};

#[test]
fn persons_aligns_perfectly_like_table_1() {
    let pair = persons::generate(&PersonsConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();

    let instances = evaluate_instances(&result, &pair.gold);
    assert_eq!(instances.precision(), 1.0, "{instances:?}");
    assert_eq!(instances.recall(), 1.0, "{instances:?}");

    let (rel_12, rel_21) = evaluate_relations(&result, &pair.gold);
    assert_eq!(rel_12.counts.precision(), 1.0);
    assert_eq!(rel_12.counts.recall(), 1.0);
    assert_eq!(rel_21.counts.precision(), 1.0);

    let classes = evaluate_classes_1to2(&result, &pair.gold, 0.4);
    assert_eq!(classes.precision(), 1.0);
    assert_eq!(classes.recall(), 1.0);

    assert!(
        result.iterations.len() <= 4,
        "paper: converged after 2 iterations"
    );
}

#[test]
fn restaurants_matches_table_1_shape() {
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let counts = evaluate_instances(&result, &pair.gold);
    // Paper: P 95 %, R 88 %, F 91 % — precision above recall, both high.
    assert!(counts.precision() >= 0.90, "{counts:?}");
    assert!(
        counts.precision() < 1.0,
        "chains must cost some precision: {counts:?}"
    );
    assert!((0.75..0.95).contains(&counts.recall()), "{counts:?}");
    assert!(counts.precision() > counts.recall(), "paper shape: P > R");
}

#[test]
fn restaurants_normalized_literals_fix_recall() {
    // §6.3: the normalized string measure repairs the phone-format
    // mismatch; with our noise model it recovers all matches.
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let config = ParisConfig::default().with_literal_similarity(LiteralSimilarity::Normalized);
    let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
    let counts = evaluate_instances(&result, &pair.gold);
    assert_eq!(counts.precision(), 1.0, "{counts:?}");
    assert!(counts.recall() >= 0.95, "{counts:?}");
}

#[test]
fn restaurants_negative_evidence_destroys_identity_matches() {
    // §6.3 experiment 3: Eq. 14 + identity literals ⇒ PARIS gives up
    // (nearly) all matches because phones systematically differ.
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let config = ParisConfig::default().with_negative_evidence(true);
    let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
    let counts = evaluate_instances(&result, &pair.gold);
    assert!(
        counts.recall() < 0.15,
        "paper: 'give up all matches': {counts:?}"
    );
}

#[test]
fn restaurants_negative_evidence_with_normalized_keeps_precision() {
    // §6.3 experiment 3 continued: Eq. 14 + normalized ⇒ P = 100 %,
    // recall reduced (paper: 70 %).
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let config = ParisConfig::default()
        .with_negative_evidence(true)
        .with_literal_similarity(LiteralSimilarity::Normalized);
    let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
    let counts = evaluate_instances(&result, &pair.gold);
    assert_eq!(counts.precision(), 1.0, "{counts:?}");
    assert!((0.6..0.95).contains(&counts.recall()), "{counts:?}");
}

#[test]
fn encyclopedia_recall_rises_over_iterations_like_table_3() {
    let pair = encyclopedia::generate(&EncyclopediaConfig {
        num_people: 800,
        ..EncyclopediaConfig::default()
    });
    let recall_after = |k: usize| {
        let config = ParisConfig {
            max_iterations: k,
            convergence_change: 0.0,
            ..ParisConfig::default()
        };
        let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
        evaluate_instances(&result, &pair.gold).recall()
    };
    let r1 = recall_after(1);
    let r3 = recall_after(3);
    assert!(
        r3 > r1 + 0.02,
        "recall must rise via cross-fertilization: {r1} → {r3}"
    );
    assert!(r3 > 0.85, "final recall high: {r3}");
}

#[test]
fn encyclopedia_finds_inverted_and_split_relations() {
    let pair = encyclopedia::generate(&EncyclopediaConfig {
        num_people: 800,
        ..EncyclopediaConfig::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();

    // Table-4-style phenomena, mechanically checked:
    let find = |list: &[(String, String, f64)], sub: &str, sup: &str| {
        list.iter()
            .find(|(a, b, _)| a == sub && b == sup)
            .map(|&(_, _, p)| p)
    };
    let one = result.relation_alignments_1to2(0.05);
    let two = result.relation_alignments_2to1(0.05);

    // inverted: hasChild ⊆ parent⁻ (fact drops on both sides keep this
    // below the clean relations, like the paper's hasChild ⊆ parent⁻¹ 0.53)
    // The exact value hovers around 0.18–0.27 depending on the RNG stream
    // behind the generator; the claim is only that the inverted relation is
    // found far above the listing threshold, not its precise score.
    assert!(
        find(&one, "hasChild", "parent⁻").unwrap_or(0.0) > 0.15,
        "{one:?}"
    );
    // split: author/composer/director ⊆ created⁻ (each near 1)
    for sub in ["author", "composer", "director"] {
        assert!(
            find(&two, sub, "created⁻").unwrap_or(0.0) > 0.5,
            "{sub}: {two:?}"
        );
    }
    // coarse ⊇ fine: headquarter ⊆ isLocatedIn
    assert!(find(&two, "headquarter", "isLocatedIn").unwrap_or(0.0) > 0.3);
    // the split direction has fractional scores: created ⊆ author⁻ well below 1
    let created_author = find(&one, "created", "author⁻").unwrap_or(0.0);
    assert!(
        created_author > 0.05 && created_author < 0.8,
        "{created_author}"
    );
}

#[test]
fn encyclopedia_class_threshold_curve_has_figure_1_shape() {
    let pair = encyclopedia::generate(&EncyclopediaConfig {
        num_people: 800,
        ..EncyclopediaConfig::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let curve = paris_repro::eval::threshold_curve(&result, &pair.gold, &[0.1, 0.3, 0.5, 0.7, 0.9]);
    // Precision at high thresholds beats precision at low thresholds.
    assert!(
        curve.last().unwrap().precision >= curve.first().unwrap().precision,
        "{curve:?}"
    );
    // Assignment counts decrease monotonically.
    for w in curve.windows(2) {
        assert!(w[0].assignments >= w[1].assignments);
    }
    // Class alignments exist in both directions at 0.4.
    assert!(evaluate_classes_1to2(&result, &pair.gold, 0.4).precision() > 0.85);
    assert!(evaluate_classes_2to1(&result, &pair.gold, 0.4).precision() > 0.85);
}

#[test]
fn movies_beats_label_baseline_like_table_5() {
    let pair = movies::generate(&MoviesConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let paris = evaluate_instances(&result, &pair.gold);

    let baseline = label_baseline(&pair.kb1, &pair.kb2);
    let gold: std::collections::HashSet<(&str, &str)> = pair
        .gold
        .instances
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let correct = baseline
        .pairs
        .iter()
        .filter(|&&(e1, e2)| match (pair.kb1.iri(e1), pair.kb2.iri(e2)) {
            (Some(a), Some(b)) => gold.contains(&(a.as_str(), b.as_str())),
            _ => false,
        })
        .count();
    let base = Counts::new(
        correct,
        baseline.pairs.len() - correct,
        gold.len() - correct,
    );

    // Paper: baseline P=97 R=70 F=82; PARIS F=92.
    assert!(
        base.precision() > 0.9,
        "label matching is precise: {base:?}"
    );
    assert!(
        base.recall() < 0.9,
        "label variants cap baseline recall: {base:?}"
    );
    assert!(
        paris.f1() > base.f1() + 0.03,
        "PARIS {} vs baseline {}",
        paris.f1(),
        base.f1()
    );
    assert!(paris.f1() > 0.85, "{paris:?}");
}

#[test]
fn movies_relations_align_inverted() {
    let pair = movies::generate(&MoviesConfig {
        num_movies: 300,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let (rel_12, rel_21) = evaluate_relations(&result, &pair.gold);
    assert!(rel_12.counts.precision() >= 0.8, "{:?}", rel_12.judged);
    assert!(rel_21.counts.precision() >= 0.8, "{:?}", rel_21.judged);
    // The paper's y:actedIn ⊆ imdb:cast⁻¹ analogue must be found.
    let found = result
        .relation_alignments_1to2(0.3)
        .iter()
        .any(|(a, b, _)| a == "actedIn" && b == "cast⁻");
    assert!(found, "{:?}", result.relation_alignments_1to2(0.1));
}
