//! End-to-end test of the persisted run history over real TCP:
//!
//! 1. a completed align job on a daemon started with a run-history file
//!    appends a generation-1 record served by `GET /v1/debug/runs`;
//! 2. the record survives a daemon restart (the file is reloaded on
//!    startup);
//! 3. re-running the *same* pair is generation 2 with agreement ≈ 1.0
//!    and no drift flag, while a third run against a perturbed KB
//!    (> 5% of assignments changed) drops the agreement below the
//!    drift threshold and flags `drift: true`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use paris_repro::client::json::{self, Json};
use paris_repro::datagen::{movies, MoviesConfig};
use paris_repro::kb::snapshot::save_kb;
use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_repro::rdf::Literal;
use paris_repro::server::{Server, ServerConfig, ServerHandle};

fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// A tiny KB pair aligned purely via shared e-mail literals, with the
/// first `moved` right-side addresses rewritten so those instances no
/// longer match — a controlled way to change exactly `moved`/`n` of
/// the final assignment between runs.
fn people_pair(n: usize, moved: usize) -> (Kb, Kb) {
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..n {
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(format!("p{i}@x.org")),
        );
        let address = if i < moved {
            format!("p{i}@moved.example")
        } else {
            format!("p{i}@x.org")
        };
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/mail",
            Literal::plain(address),
        );
    }
    (a.build(), b.build())
}

fn movies_snapshot(n: usize) -> AlignedPairSnapshot {
    let pair = movies::generate(&MoviesConfig {
        num_movies: n,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let owned = OwnedAlignment::from_result(&result);
    drop(result);
    AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned)
}

fn bind(history: &Path) -> ServerHandle {
    Server::bind(
        movies_snapshot(10),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            run_history: Some(history.to_owned()),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap()
}

/// Submits an align job for `left.snap`/`right.snap` in `dir` and polls
/// it to completion.
fn run_align_job(addr: std::net::SocketAddr, dir: &Path, job: u64) {
    let (status, body) = post(
        addr,
        "/v1/align",
        &format!(
            "left={}&right={}&max_iterations=4",
            dir.join("left.snap").display(),
            dir.join("right.snap").display()
        ),
    );
    assert_eq!(status, 202, "{body}");
    for _ in 0..600 {
        let (status, body) = get(addr, &format!("/v1/jobs/{job}"));
        assert_eq!(status, 200, "{body}");
        if body.contains("\"status\":\"failed\"") {
            panic!("job failed: {body}");
        }
        if body.contains("\"status\":\"done\"") {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("job {job} did not finish in time");
}

/// Fetches `/v1/debug/runs` and returns the parsed record array.
fn fetch_records(addr: std::net::SocketAddr) -> Vec<Json> {
    let (status, body) = get(addr, "/v1/debug/runs");
    assert_eq!(status, 200, "{body}");
    let envelope = json::parse(&body).expect("runs body parses");
    let data = envelope.get("data").expect("data envelope");
    data.get("records")
        .and_then(Json::as_array)
        .expect("records array")
        .to_vec()
}

#[test]
fn run_history_survives_restart_and_flags_drift() {
    let dir = std::env::temp_dir().join(format!("paris_runs_e2e_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let history = dir.join("runs.jsonl");

    // Generation 1: a clean pair of 40 people matched by e-mail.
    let (kb1, kb2) = people_pair(40, 0);
    save_kb(&kb1, dir.join("left.snap")).unwrap();
    save_kb(&kb2, dir.join("right.snap")).unwrap();

    let first = bind(&history);
    run_align_job(first.addr(), &dir, 1);
    let records = fetch_records(first.addr());
    assert_eq!(records.len(), 1, "one run recorded");
    let r = &records[0];
    assert_eq!(r.get("pair").and_then(Json::as_str), Some("left+right"));
    assert_eq!(r.get("generation").and_then(Json::as_u64), Some(1));
    let aligned = r
        .get("aligned_instances")
        .and_then(Json::as_u64)
        .expect("aligned_instances");
    assert!(aligned >= 35, "the people pair aligns by e-mail: {r:?}");
    assert!(
        r.get("agreement").and_then(Json::as_f64).is_none(),
        "generation 1 has nothing to agree with: {r:?}"
    );
    assert_eq!(r.get("drift").and_then(Json::as_bool), Some(false));
    first.shutdown();

    // Restart: the daemon reloads the history file and keeps serving
    // the generation-1 record.
    let second = bind(&history);
    let records = fetch_records(second.addr());
    assert_eq!(records.len(), 1, "history survived the restart");
    assert_eq!(records[0].get("generation").and_then(Json::as_u64), Some(1));

    // Generation 2: identical inputs — agreement ≈ 1.0, no drift.
    run_align_job(second.addr(), &dir, 1);
    let records = fetch_records(second.addr());
    assert_eq!(records.len(), 2);
    let r = &records[1];
    assert_eq!(r.get("generation").and_then(Json::as_u64), Some(2));
    let agreement = r
        .get("agreement")
        .and_then(Json::as_f64)
        .expect("generation 2 compares against generation 1");
    assert!(agreement > 0.99, "identical runs agree: {agreement}");
    assert_eq!(r.get("drift").and_then(Json::as_bool), Some(false));

    // Generation 3: 10 of the 40 right-side addresses moved, so a
    // quarter of the assignment disappears — far past the 5% drift
    // threshold.
    let (_, kb2_moved) = people_pair(40, 10);
    save_kb(&kb2_moved, dir.join("right.snap")).unwrap();
    run_align_job(second.addr(), &dir, 2);
    let records = fetch_records(second.addr());
    assert_eq!(records.len(), 3);
    let r = &records[2];
    assert_eq!(r.get("generation").and_then(Json::as_u64), Some(3));
    let agreement = r
        .get("agreement")
        .and_then(Json::as_f64)
        .expect("generation 3 compares against generation 2");
    assert!(
        agreement < 0.95,
        "a quarter of the assignment moved: {agreement}"
    );
    assert_eq!(
        r.get("drift").and_then(Json::as_bool),
        Some(true),
        "drift must be flagged: {r:?}"
    );

    second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Without `--run-history` the route 404s with a hint.
#[test]
fn runs_route_is_404_when_history_is_disabled() {
    let handle = Server::bind(
        movies_snapshot(10),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let (status, body) = get(handle.addr(), "/v1/debug/runs");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("--run-history"), "{body}");
    handle.shutdown();
}
