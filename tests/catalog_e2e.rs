//! End-to-end test of the multi-pair serving catalog over real TCP: one
//! daemon serves three alignment pairs (a mix of decoded v1 and mmapped
//! v2 snapshots) from a catalog directory, under concurrent keep-alive
//! load, with **independent per-pair reload generations** and zero
//! failed responses — the acceptance harness of the snapshot-arena /
//! catalog subsystem. Also exercises the HTTP conformance satellites on
//! the wire: `405`s carry `Allow`, unknown routes return JSON.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{
    AlignedPairSnapshot, Aligner, MappedPairSnapshot, OwnedAlignment, ParisConfig,
};
use paris_repro::rdf::Literal;
use paris_repro::server::{Server, ServerConfig};

/// A pair of KBs with `n` aligned people; a snapshot built from a larger
/// `n` strictly extends the previous answers.
fn people_pair(n: usize) -> (Kb, Kb) {
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..n {
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(format!("p{i}@x.org")),
        );
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/mail",
            Literal::plain(format!("p{i}@x.org")),
        );
    }
    (a.build(), b.build())
}

fn snapshot_of(n: usize) -> AlignedPairSnapshot {
    let (kb1, kb2) = people_pair(n);
    let owned = {
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_threads(1)).run();
        OwnedAlignment::from_result(&result)
    };
    AlignedPairSnapshot::new(kb1, kb2, owned)
}

/// Reads one `Content-Length`-framed HTTP response; returns
/// `(status, headers, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<(u16, Vec<String>, String), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("header: {e}"))?;
        let line = line.trim_end().to_owned();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().map_err(|e| format!("content-length: {e}"))?;
        }
        headers.push(line);
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    String::from_utf8(body)
        .map(|b| (status, headers, b))
        .map_err(|e| format!("utf8: {e}"))
}

/// One keep-alive GET on an existing connection.
fn keep_alive_get(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    path: &str,
) -> Result<(u16, String), String> {
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    read_response(reader).map(|(s, _, b)| (s, b))
}

/// One request on a fresh connection.
fn oneshot(addr: std::net::SocketAddr, raw: &str) -> (u16, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    read_response(&mut reader).expect("response")
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<String>, String) {
    oneshot(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, Vec<String>, String) {
    oneshot(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn catalog_serves_three_pairs_with_independent_reloads_under_load() {
    let dir = std::env::temp_dir().join("paris_catalog_e2e");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Three pairs of distinguishable sizes; beta is a zero-copy v2 file.
    snapshot_of(3).save(dir.join("alpha.snap")).unwrap();
    MappedPairSnapshot::save_v2(&snapshot_of(5), dir.join("beta.snap")).unwrap();
    snapshot_of(7).save(dir.join("gamma.snap")).unwrap();

    let server = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        // 4 keep-alive clients pin 4 workers; the extra workers serve
        // the control-plane requests (reloads, assertions).
        threads: 8,
        catalog_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    assert_eq!(server.pair_names(), ["alpha", "beta", "gamma"]);
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Touch every pair once so all three are resident (generation 1)
    // before the load starts, and check per-pair answers.
    for (pair, largest) in [("alpha", 2), ("beta", 4), ("gamma", 6)] {
        let (status, _, body) = get(
            addr,
            &format!("/pairs/{pair}/sameas?iri=http://a/p{largest}"),
        );
        assert_eq!(status, 200, "{pair}: {body}");
        assert!(
            body.contains(&format!("http://b/q{largest}")),
            "{pair}: {body}"
        );
    }
    // beta really is served from the mmapped v2 arena.
    let (_, _, beta_stats) = get(addr, "/pairs/beta/stats");
    assert!(beta_stats.contains("\"format\":\"v2\""), "{beta_stats}");

    // Concurrent keep-alive clients hammer all three pairs for the whole
    // duration of the reloads below. Every single response must be a 200.
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));
    let successes = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let failures = Arc::clone(&failures);
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let paths = [
                    "/pairs/alpha/sameas?iri=http://a/p1",
                    "/pairs/beta/sameas?iri=http://a/p1",
                    "/pairs/gamma/sameas?iri=http://a/p1",
                    "/pairs/beta/stats",
                    "/pairs/gamma/neighbors?iri=http://a/p0",
                    "/healthz",
                ];
                let mut i = c;
                while !stop.load(Ordering::Relaxed) {
                    match keep_alive_get(&mut stream, &mut reader, paths[i % paths.len()]) {
                        Ok((200, body)) if !body.is_empty() => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((status, body)) => {
                            eprintln!("client {c}: unexpected {status}: {body}");
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("client {c}: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    i += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    // Reload beta twice (replacing it with a bigger v2 snapshot first)
    // and gamma once — generations move independently, under load.
    MappedPairSnapshot::save_v2(&snapshot_of(6), dir.join("beta.snap")).unwrap();
    let (status, _, body) = post(addr, "/pairs/beta/reload", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":2"), "{body}");
    assert!(body.contains("\"aligned_instances\":6"), "{body}");
    // The new entity answers only on beta.
    let (status, _, body) = get(addr, "/pairs/beta/sameas?iri=http://a/p5");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("http://b/q5"), "{body}");
    assert_eq!(get(addr, "/pairs/alpha/sameas?iri=http://a/p5").0, 404);

    std::thread::sleep(Duration::from_millis(50));
    let (status, _, body) = post(addr, "/pairs/beta/reload", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":3"), "{body}");
    let (status, _, body) = post(addr, "/pairs/gamma/reload", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\":2"), "{body}");

    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "every concurrent request must succeed across per-pair reloads"
    );
    let ok = successes.load(Ordering::Relaxed);
    assert!(ok > 50, "clients must have made real progress (got {ok})");

    // Per-pair generations are independent: alpha untouched.
    let (_, _, alpha) = get(addr, "/pairs/alpha/healthz");
    assert!(alpha.contains("\"generation\":1"), "{alpha}");
    let (_, _, beta) = get(addr, "/pairs/beta/healthz");
    assert!(beta.contains("\"generation\":3"), "{beta}");
    assert!(beta.contains("\"reloads\":2"), "{beta}");
    let (_, _, gamma) = get(addr, "/pairs/gamma/stats");
    assert!(gamma.contains("\"generation\":2"), "{gamma}");

    // Bare legacy routes alias the default pair (alpha, first sorted).
    let (_, _, bare) = get(addr, "/stats");
    assert!(bare.contains("\"pair\":\"alpha\""), "{bare}");
    let (_, _, health) = get(addr, "/healthz");
    assert!(health.contains("\"pairs\":3"), "{health}");
    assert!(health.contains("\"version\":"), "{health}");

    // /pairs lists all three with their states.
    let (_, _, listing) = get(addr, "/pairs");
    for name in ["alpha", "beta", "gamma"] {
        assert!(
            listing.contains(&format!("\"name\":\"{name}\"")),
            "{listing}"
        );
    }

    // HTTP conformance on the wire: 405 carries Allow; unknown routes
    // return a JSON error body, whatever the method.
    let (status, headers, _) = oneshot(
        addr,
        "DELETE /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert!(
        headers.iter().any(|h| h.eq_ignore_ascii_case("allow: GET")),
        "{headers:?}"
    );
    let (status, headers, body) = oneshot(
        addr,
        "POST /no/such/route HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, 404);
    assert!(
        headers
            .iter()
            .any(|h| h.eq_ignore_ascii_case("content-type: application/json")),
        "{headers:?}"
    );
    assert!(body.contains("\"error\""), "{body}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn catalog_watch_discovers_new_pairs_and_reloads_changed_ones() {
    let dir = std::env::temp_dir().join("paris_catalog_watch_e2e");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    snapshot_of(3).save(dir.join("alpha.snap")).unwrap();

    let server = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        catalog_dir: Some(dir.clone()),
        watch_interval: Some(Duration::from_millis(25)),
        ..ServerConfig::default()
    })
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Load alpha, then replace its file: the watch thread must swap it.
    assert_eq!(get(addr, "/pairs/alpha/sameas?iri=http://a/p1").0, 200);
    std::thread::sleep(Duration::from_millis(30));
    snapshot_of(5).save(dir.join("alpha.snap")).unwrap();
    wait_until(addr, "/pairs/alpha/healthz", "\"generation\":2");

    // Drop a brand-new pair into the directory: the rescan publishes it.
    MappedPairSnapshot::save_v2(&snapshot_of(4), dir.join("delta.snap")).unwrap();
    wait_until(addr, "/pairs", "\"name\":\"delta\"");
    let (status, _, body) = get(addr, "/pairs/delta/sameas?iri=http://a/p3");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("http://b/q3"), "{body}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

fn wait_until(addr: std::net::SocketAddr, path: &str, needle: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, body) = get(addr, path);
        if body.contains(needle) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{path} never contained {needle}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
