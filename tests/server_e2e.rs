//! End-to-end test of the serving subsystem over real TCP: snapshot a
//! generated pair, start the daemon on an ephemeral port, and check that
//! every endpoint answers — including that `GET /sameas` agrees with the
//! in-process alignment, and that a `POST /align` job completes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use paris_repro::datagen::{movies, MoviesConfig};
use paris_repro::kb::snapshot::save_kb;
use paris_repro::paris::{AlignedPairSnapshot, Aligner, OwnedAlignment, ParisConfig};
use paris_repro::server::{Server, ServerConfig};

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path_and_query: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path_and_query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn daemon_serves_the_snapshot() {
    let dir = std::env::temp_dir().join("paris_server_e2e");
    std::fs::create_dir_all(&dir).unwrap();

    // Align a movies pair in-process; keep reference answers.
    let pair = movies::generate(&MoviesConfig {
        num_movies: 80,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let reference: Vec<(String, String)> = result
        .instance_pairs()
        .iter()
        .take(10)
        .filter_map(|&(x, x2, _)| {
            Some((
                pair.kb1.iri(x)?.as_str().to_owned(),
                pair.kb2.iri(x2)?.as_str().to_owned(),
            ))
        })
        .collect();
    assert!(!reference.is_empty());
    let owned = OwnedAlignment::from_result(&result);
    drop(result);

    // Single-KB snapshots for the POST /align job.
    let left_snap = dir.join("left.snap");
    let right_snap = dir.join("right.snap");
    save_kb(&pair.kb1, &left_snap).unwrap();
    save_kb(&pair.kb2, &right_snap).unwrap();

    // Spawn the daemon on an ephemeral port.
    let snapshot = AlignedPairSnapshot::new(pair.kb1, pair.kb2, owned);
    let server = Server::bind(
        snapshot,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    // Liveness and stats.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"aligned_instances\""), "{body}");
    assert!(body.contains("\"converged\""), "{body}");

    // /sameas agrees with the in-process alignment, both directions.
    for (left_iri, right_iri) in &reference {
        let (status, body) = get(addr, &format!("/sameas?iri={left_iri}"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(right_iri.as_str()), "{left_iri}: {body}");
        let (status, body) = get(addr, &format!("/sameas?iri={right_iri}&side=right"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(left_iri.as_str()), "{right_iri}: {body}");
    }

    // /neighbors lists facts; unknown IRIs are 404s; bad input is 400.
    let (status, body) = get(addr, &format!("/neighbors?iri={}&limit=5", reference[0].0));
    assert_eq!(status, 200);
    assert!(body.contains("\"facts\":["), "{body}");
    assert_eq!(get(addr, "/sameas?iri=http://nope/x").0, 404);
    assert_eq!(get(addr, "/sameas").0, 400);
    assert_eq!(get(addr, "/nosuchroute").0, 404);

    // POST /align runs a job over the two single-KB snapshots.
    let out = dir.join("job-out.snap");
    let (status, body) = post(
        addr,
        "/align",
        &format!(
            "left={}&right={}&out={}&max_iterations=3",
            left_snap.display(),
            right_snap.display(),
            out.display()
        ),
    );
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"job\":1"), "{body}");

    // Poll until done (bounded).
    let mut done = false;
    for _ in 0..600 {
        let (status, body) = get(addr, "/jobs/1");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"status\":\"done\"") {
            assert!(body.contains("\"aligned_instances\""), "{body}");
            done = true;
            break;
        }
        if body.contains("\"status\":\"failed\"") {
            panic!("job failed: {body}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(done, "job did not finish in time");

    // The job's output snapshot is loadable and matches the reference.
    let job_result = AlignedPairSnapshot::load(&out).unwrap();
    let (ref_left, ref_right) = &reference[0];
    assert_eq!(
        job_result
            .alignment
            .instance_alignment_by_iri(&job_result.kb1, &job_result.kb2, ref_left)
            .unwrap()
            .as_str(),
        ref_right
    );

    // Malformed request gets a 400, not a hang or crash.
    let (status, _) = request(addr, "NONSENSE\r\n\r\n");
    assert_eq!(status, 400);

    // Keep-alive: two requests on one connection.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut first = [0u8; 512];
    let n = stream.read(&mut first).unwrap();
    assert!(String::from_utf8_lossy(&first[..n]).contains("200 OK"));
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut rest = String::new();
    stream.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("200 OK"), "{rest}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
