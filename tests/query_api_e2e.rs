//! End-to-end test of the versioned `/v1` query API over real TCP: one
//! catalog daemon serving the **same** aligned pair twice — once as a
//! decoded v1 snapshot (`alpha`), once as a zero-copy v2 snapshot
//! (`beta`) — driven through the typed `paris-client` crate and through
//! raw HTTP where headers matter.
//!
//! Covered: the `{"data"}/{"error":{code,message}}` envelope, batch
//! queries answered from one image acquisition, explain evidence that
//! recomputes bit-exactly to its served score and is **byte-identical**
//! across snapshot formats, neighbors pagination, legacy aliases
//! (same bytes + one deprecation warning, structured errors), and zero
//! failed responses under concurrent mixed clients.

use std::path::PathBuf;
use std::time::Duration;

use paris_repro::client::{
    BatchAnswer, ClientError, HttpClient, ParisClient, Query, Side, Upstream,
};
use paris_repro::kb::KbBuilder;
use paris_repro::paris::{
    AlignedPairSnapshot, Aligner, MappedPairSnapshot, OwnedAlignment, ParisConfig,
};
use paris_repro::rdf::Literal;
use paris_repro::server::{Server, ServerConfig};

const N: usize = 8;

/// An aligned pair with literal *and* entity evidence: e-mails are
/// unique (strong), cities are shared (weak), so explanations carry
/// several factors of different strengths.
fn snapshot() -> AlignedPairSnapshot {
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..N {
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(format!("p{i}@x.org")),
        );
        a.add_fact(
            format!("http://a/p{i}"),
            "http://a/livesIn",
            format!("http://a/c{}", i % 2),
        );
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/mail",
            Literal::plain(format!("p{i}@x.org")),
        );
        b.add_fact(
            format!("http://b/q{i}"),
            "http://b/city",
            format!("http://b/d{}", i % 2),
        );
    }
    let (kb1, kb2) = (a.build(), b.build());
    let owned = {
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
        OwnedAlignment::from_result(&result)
    };
    AlignedPairSnapshot::new(kb1, kb2, owned)
}

fn catalog_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paris_query_api_e2e_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One raw HTTP exchange, returning (status, headers, body).
fn raw_get(addr: &std::net::SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut client = HttpClient::new(
        Upstream::parse(&format!("http://{addr}")).unwrap(),
        Duration::from_secs(10),
    );
    let r = client.get(path, None, 1 << 30).expect("raw GET");
    (r.status, r.headers, r.body)
}

#[test]
fn v1_query_api_end_to_end() {
    let dir = catalog_dir();
    let snap = snapshot();
    snap.save(dir.join("alpha.snap")).unwrap();
    MappedPairSnapshot::save_v2(&snap, dir.join("beta.snap")).unwrap();

    // Enough workers for the concurrency phase's 4 keep-alive clients
    // plus the sequential client and raw probes.
    let server = Server::bind_catalog(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 8,
        catalog_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();
    let url = format!("http://{addr}");

    let mut client = ParisClient::new(&url).unwrap();

    // ---- typed health + catalog
    let health = client.healthz().expect("healthz");
    assert_eq!(health.status, "ok");
    assert_eq!(health.role, "primary");
    assert_eq!(health.pairs, 2);
    let (default, pairs) = client.pairs().expect("pairs");
    assert_eq!(default, "alpha");
    assert_eq!(
        pairs.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
        ["alpha", "beta"]
    );

    // ---- sameas + neighbors, both formats, typed
    for pair in ["alpha", "beta"] {
        let a = client
            .sameas(Some(pair), "http://a/p1", Side::Left, None)
            .expect("sameas");
        assert_eq!(a.sameas.as_deref(), Some("http://b/q1"), "{pair}");
        assert!(a.score > 0.5, "{pair}: {}", a.score);
        let rev = client
            .sameas(Some(pair), "http://b/q2", Side::Right, None)
            .expect("sameas rev");
        assert_eq!(rev.sameas.as_deref(), Some("http://a/p2"), "{pair}");

        // Pagination: p0 has 2 facts; page size 1 walks them.
        let n0 = client
            .neighbors(Some(pair), "http://a/p0", Side::Left, Some(1), 0)
            .expect("neighbors page 0");
        let n1 = client
            .neighbors(Some(pair), "http://a/p0", Side::Left, Some(1), 1)
            .expect("neighbors page 1");
        assert_eq!(n0.total_facts, 2, "{pair}");
        assert_eq!((n0.facts.len(), n1.facts.len()), (1, 1), "{pair}");
        assert_ne!(n0.facts[0], n1.facts[0], "{pair}: pages must differ");
        let past = client
            .neighbors(Some(pair), "http://a/p0", Side::Left, None, 10)
            .expect("past-the-end page");
        assert!(past.facts.is_empty(), "{pair}");
        assert_eq!(past.total_facts, 2, "{pair}");
    }

    // ---- stats typed; the two formats serve the same alignment
    let stats_alpha = client.stats(Some("alpha")).unwrap();
    let stats_beta = client.stats(Some("beta")).unwrap();
    assert_eq!(stats_alpha.format, "v1");
    assert_eq!(stats_beta.format, "v2");
    assert_eq!(
        stats_alpha.aligned_instances, stats_beta.aligned_instances,
        "same alignment"
    );
    assert_eq!(stats_alpha.aligned_instances, N as u64);

    // ---- batch: mixed lookups, one round-trip, per-query errors in place
    let queries: Vec<Query> = (0..N)
        .map(|i| Query::sameas(format!("http://a/p{i}")))
        .chain([
            Query::neighbors("http://a/p0"),
            Query::sameas("http://a/definitely-not-here"),
            Query::Sameas {
                iri: "http://b/q3".into(),
                side: Side::Right,
                threshold: None,
            },
        ])
        .collect();
    let results = client.batch(Some("beta"), &queries).expect("batch");
    assert_eq!(results.len(), N + 3);
    for (i, result) in results.iter().take(N).enumerate() {
        match result {
            Ok(BatchAnswer::Sameas(a)) => {
                assert_eq!(a.sameas.as_deref(), Some(format!("http://b/q{i}").as_str()));
                // The batch answer must agree with the sequential route,
                // bit for bit.
                let single = client
                    .sameas(Some("beta"), &a.iri, Side::Left, None)
                    .unwrap();
                assert_eq!(a, &single, "batch vs sequential #{i}");
            }
            other => panic!("query #{i}: {other:?}"),
        }
    }
    assert!(matches!(&results[N], Ok(BatchAnswer::Neighbors(n)) if n.total_facts == 2));
    assert!(
        matches!(&results[N + 1], Err(ClientError::Api { code, .. }) if code == "not_found"),
        "{:?}",
        results[N + 1]
    );
    assert!(
        matches!(&results[N + 2], Ok(BatchAnswer::Sameas(a)) if a.sameas.as_deref() == Some("http://a/p3"))
    );

    // ---- explain: evidence recomputes to the served score, assignment
    // matches sameas bit-for-bit, and v1/v2 bodies are byte-identical
    for i in 0..N {
        let left = format!("http://a/p{i}");
        let right = format!("http://b/q{i}");
        let ex = client
            .explain(Some("alpha"), &left, &right)
            .expect("explain");
        assert!(ex.assigned, "p{i}");
        assert!(!ex.evidence.is_empty(), "p{i}");
        // Bit-exact recomputation from the served factors.
        let product: f64 = ex.evidence.iter().fold(1.0, |p, e| p * e.factor);
        assert_eq!(
            (1.0 - product).to_bits(),
            ex.score.to_bits(),
            "p{i}: served evidence must fold to the served score"
        );
        // The assignment member is exactly the sameas answer.
        let sameas = client
            .sameas(Some("alpha"), &left, Side::Left, None)
            .unwrap();
        assert_eq!(ex.assignment, sameas, "p{i}");
        assert_eq!(
            ex.assignment.score.to_bits(),
            ex.stored_score.to_bits(),
            "p{i}: assigned pair's stored score is the served sameas score"
        );

        // Byte-identical across snapshot formats (decoded v1 vs mapped v2).
        let path = |pair: &str| {
            format!(
                "/v1/pairs/{pair}/explain?left=http%3A%2F%2Fa%2Fp{i}&right=http%3A%2F%2Fb%2Fq{i}"
            )
        };
        let (s1, _, body_v1) = raw_get(&addr, &path("alpha"));
        let (s2, _, body_v2) = raw_get(&addr, &path("beta"));
        assert_eq!((s1, s2), (200, 200));
        let strip = |body: &[u8]| {
            // Identical up to the pair name each answer embeds.
            String::from_utf8(body.to_vec())
                .unwrap()
                .replace("\"pair\":\"alpha\"", "\"pair\":\"#\"")
                .replace("\"pair\":\"beta\"", "\"pair\":\"#\"")
        };
        assert_eq!(strip(&body_v1), strip(&body_v2), "p{i}");
    }

    // A non-assigned candidate explains too, with a lower score.
    let cross = client
        .explain(Some("alpha"), "http://a/p0", "http://b/q2")
        .expect("cross explain");
    assert!(!cross.assigned);
    assert_eq!(cross.stored_score, 0.0);
    let assigned = client
        .explain(Some("alpha"), "http://a/p0", "http://b/q0")
        .unwrap();
    assert!(cross.score < assigned.score);

    // ---- legacy aliases: same bytes as /v1, one deprecation warning,
    // structured errors
    let (status, headers, legacy_body) = raw_get(&addr, "/sameas?iri=http%3A%2F%2Fa%2Fp1");
    assert_eq!(status, 200);
    let warnings: Vec<&(String, String)> = headers.iter().filter(|(k, _)| k == "warning").collect();
    assert_eq!(warnings.len(), 1, "{headers:?}");
    assert!(warnings[0].1.contains("deprecated"), "{warnings:?}");
    let (_, v1_headers, v1_body) = raw_get(&addr, "/v1/pairs/alpha/sameas?iri=http%3A%2F%2Fa%2Fp1");
    assert_eq!(legacy_body, v1_body, "legacy delegates to the v1 handler");
    assert!(
        !v1_headers.iter().any(|(k, _)| k == "warning"),
        "{v1_headers:?}"
    );
    // Legacy pair routes warn too.
    let (_, headers, _) = raw_get(&addr, "/pairs/beta/stats");
    assert!(headers.iter().any(|(k, _)| k == "warning"), "{headers:?}");

    // Structured legacy errors: 400 / 404 / 405 all wear the envelope.
    for (path, expected_status, expected_code) in [
        ("/sameas", 400, "bad_request"),
        ("/pairs/nope/stats", 404, "not_found"),
        ("/nope", 404, "not_found"),
    ] {
        let (status, _, body) = raw_get(&addr, path);
        assert_eq!(status, expected_status, "{path}");
        let text = String::from_utf8(body).unwrap();
        assert!(
            text.starts_with(&format!("{{\"error\":{{\"code\":\"{expected_code}\"")),
            "{path}: {text}"
        );
    }

    // ---- concurrency: mixed typed clients, zero failed responses.
    // Drop the sequential client first so its idle keep-alive connection
    // does not pin a server worker for the whole phase.
    drop(client);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let url = url.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ParisClient::new(&url).unwrap();
                barrier.wait();
                for round in 0..25 {
                    let i = (w + round) % N;
                    let pair = if (w + round) % 2 == 0 {
                        "alpha"
                    } else {
                        "beta"
                    };
                    let iri = format!("http://a/p{i}");
                    let a = client.sameas(Some(pair), &iri, Side::Left, None)?;
                    if a.sameas.as_deref() != Some(format!("http://b/q{i}").as_str()) {
                        return Err(ClientError::Protocol(format!("wrong match for {iri}")));
                    }
                    client.neighbors(Some(pair), &iri, Side::Left, Some(1), 0)?;
                    client.explain(Some(pair), &iri, &format!("http://b/q{i}"))?;
                    let batch = client.batch(
                        Some(pair),
                        &[Query::sameas(iri.clone()), Query::neighbors(iri.clone())],
                    )?;
                    for r in batch {
                        r?;
                    }
                }
                Ok::<u64, ClientError>(client.cache_hits())
            })
        })
        .collect();
    for (w, worker) in workers.into_iter().enumerate() {
        let cache_hits = worker
            .join()
            .expect("worker panicked")
            .unwrap_or_else(|e| panic!("worker {w}: {e}"));
        // Repeated identical GETs must have been served from the ETag
        // cache via 304s (each worker repeats its N-cycle ~3×).
        assert!(cache_hits > 0, "worker {w} never hit its ETag cache");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
