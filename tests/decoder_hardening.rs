//! Wire-level regression tests for the decoder hardening pass.
//!
//! Every decode path reachable from untrusted bytes — v1 snapshot
//! frames, v2 section-table snapshots, deltas, N-Triples documents,
//! HTTP requests, JSON — is fed the specific hostile shapes the
//! `no-panic-decode` audit (docs/CORRECTNESS.md) exists to prevent:
//! truncations at every length, flipped bytes, hostile section
//! offsets, invalid UTF-8, broken escapes, and oversized
//! declarations. The contract everywhere is *Err, not panic*.

use std::io::BufReader;

use paris_repro::client::json;
use paris_repro::kb::snapshot::{decode_kb, kb_to_bytes, read_payload, PayloadReader};
use paris_repro::kb::snapshot_v2::{kb_to_bytes_v2, KB1_BASE};
use paris_repro::kb::{KbBuilder, KbDelta, KbLayout, SnapshotArena};
use paris_repro::rdf::ntriples::{parse_chunked, ChunkOptions, Parser};
use paris_repro::rdf::Literal;
use paris_repro::server::http::{percent_decode, read_request};

fn sample_kb_bytes() -> Vec<u8> {
    let mut b = KbBuilder::new("hardening");
    b.add_fact("http://a/x", "http://a/p", "http://a/y");
    b.add_literal_fact("http://a/x", "http://a/label", Literal::plain("x marks"));
    kb_to_bytes(&b.build())
}

fn decode_v1(bytes: &[u8]) -> Result<(), String> {
    let (_, payload) = read_payload(&mut &bytes[..]).map_err(|e| e.to_string())?;
    let mut r = PayloadReader::new(&payload);
    decode_kb(&mut r).map(drop).map_err(|e| e.to_string())
}

// ------------------------------------------------------------ v1 snapshot

#[test]
fn snapshot_truncated_at_every_length_errors() {
    let bytes = sample_kb_bytes();
    assert!(decode_v1(&bytes).is_ok(), "intact snapshot must decode");
    for cut in 0..bytes.len() {
        let truncated = bytes.get(..cut).unwrap_or_default();
        assert!(
            decode_v1(truncated).is_err(),
            "truncation at {cut}/{} must be rejected",
            bytes.len()
        );
    }
}

#[test]
fn snapshot_bit_flips_never_panic() {
    let bytes = sample_kb_bytes();
    for at in 0..bytes.len() {
        let mut flipped = bytes.clone();
        if let Some(b) = flipped.get_mut(at) {
            *b ^= 1;
        }
        // Most flips fail the frame checksum; the bare decoder also has
        // to survive whatever the flip did to the payload structure.
        let _ = decode_v1(&flipped);
        let mut r = PayloadReader::new(&flipped);
        let _ = decode_kb(&mut r);
    }
}

// ------------------------------------------------------------ v2 snapshot

const V2_HEADER_LEN: usize = 24;
const V2_ENTRY_LEN: usize = 32;

fn v2_decode(bytes: &[u8]) -> Result<(), String> {
    let exercise = |arena: SnapshotArena| {
        let layout = KbLayout::validate(&arena, KB1_BASE).map_err(|e| e.to_string())?;
        let view = layout.view(&arena);
        let _ = (view.name().len(), view.num_facts());
        Ok(())
    };
    let verified = SnapshotArena::from_bytes(bytes.to_vec())
        .map_err(|e| e.to_string())
        .and_then(&exercise);
    let deferred = SnapshotArena::from_bytes_deferred(bytes.to_vec())
        .map_err(|e| e.to_string())
        .and_then(&exercise);
    verified.or(deferred)
}

#[test]
fn snapshot_v2_hostile_section_entries_error() {
    let mut b = KbBuilder::new("hardening");
    b.add_fact("http://a/x", "http://a/p", "http://a/y");
    let bytes = kb_to_bytes_v2(&b.build());
    assert!(v2_decode(&bytes).is_ok(), "intact v2 snapshot must decode");

    let count_bytes = bytes
        .get(16..20)
        .and_then(|w| <[u8; 4]>::try_from(w).ok())
        .map(u32::from_le_bytes)
        .unwrap_or(0) as usize;
    assert!(count_bytes > 0, "sample snapshot has sections");

    // Rewriting any entry's offset or length to a hostile value must be
    // rejected by BOTH the checksum-verified and the deferred path.
    for entry in 0..count_bytes {
        for field_offset in [8usize, 16] {
            for hostile in [u64::MAX, u64::MAX / 2, 1u64 << 32] {
                let mut tampered = bytes.clone();
                let at = V2_HEADER_LEN + entry * V2_ENTRY_LEN + field_offset;
                if let Some(w) = tampered.get_mut(at..at + 8) {
                    w.copy_from_slice(&hostile.to_le_bytes());
                }
                assert!(
                    v2_decode(&tampered).is_err(),
                    "entry {entry} field +{field_offset} = {hostile:#x} must be rejected"
                );
            }
        }
    }
}

#[test]
fn snapshot_v2_truncated_at_every_length_errors() {
    let mut b = KbBuilder::new("hardening");
    b.add_fact("http://a/x", "http://a/p", "http://a/y");
    let bytes = kb_to_bytes_v2(&b.build());
    for cut in 0..bytes.len() {
        let truncated = bytes.get(..cut).unwrap_or_default();
        assert!(
            v2_decode(truncated).is_err(),
            "v2 truncation at {cut}/{} must be rejected",
            bytes.len()
        );
    }
}

// ------------------------------------------------------------------ delta

#[test]
fn delta_truncations_and_flips_never_panic() {
    let mut delta = KbDelta::new("hardening");
    delta.add_fact("http://a/x", "http://a/p", "http://a/z");
    delta.add_literal_fact("http://a/x", "http://a/label", Literal::plain("x"));
    delta.remove_fact("http://a/x", "http://a/p", "http://a/y");
    let bytes = delta.to_bytes();
    let decode = |bytes: &[u8]| -> Result<(), String> {
        let (_, payload) = read_payload(&mut &bytes[..]).map_err(|e| e.to_string())?;
        let mut r = PayloadReader::new(&payload);
        KbDelta::decode(&mut r).map(drop).map_err(|e| e.to_string())
    };
    assert!(decode(&bytes).is_ok(), "intact delta must decode");
    for cut in 0..bytes.len() {
        assert!(
            decode(bytes.get(..cut).unwrap_or_default()).is_err(),
            "delta truncation at {cut} must be rejected"
        );
    }
    for at in 0..bytes.len() {
        let mut flipped = bytes.clone();
        if let Some(b) = flipped.get_mut(at) {
            *b ^= 0x80;
        }
        let _ = decode(&flipped);
        let mut r = PayloadReader::new(&flipped);
        let _ = KbDelta::decode(&mut r);
    }
}

// -------------------------------------------------------------- N-Triples

#[test]
fn ntriples_hostile_documents_error_cleanly() {
    // Non-ASCII IRIs are accepted (the multi-byte resync path); they
    // just must not panic the cursor.
    assert!(Parser::parse_all("<http://a/caf\u{e9}> <http://a/p> <http://a/y> .").is_ok());
    let hostile = [
        "<http://a/x> <http://a/p> \"bad \\u12\" .", // truncated \u escape
        "<http://a/x> <http://a/p> \"bad \\q\" .",   // unknown escape
        "<http://a/x> <http://a/p> \"open",          // unterminated literal
        "<http://a/x> <http://a/p>",                 // missing object
        "_:b1 <http://a/p> _: .",                    // empty blank-node label
        "<http://a/x> <http://a/p> \"v\"@ .",        // empty language tag
        "\\",                                        // lone backslash
    ];
    for doc in hostile {
        assert!(Parser::parse_all(doc).is_err(), "must reject: {doc:?}");
    }
}

#[test]
fn ntriples_chunked_survives_invalid_utf8_and_split_chars() {
    let opts = ChunkOptions {
        threads: 2,
        chunk_bytes: 8, // forces chunk boundaries inside multi-byte chars
        quads: false,
    };
    // Invalid UTF-8 mid-stream must surface as Err with a line number,
    // not a panic in the boundary scanner.
    let mut bad = b"<http://a/x> <http://a/p> <http://a/y> .\n".to_vec();
    bad.extend_from_slice(&[0xFF, 0xFE, 0xFD]);
    assert!(parse_chunked(&bad[..], &opts, |_| Ok(())).is_err());

    // Valid multi-byte content split across tiny chunks must parse to
    // the same triples as the sequential parser.
    let doc = "<http://a/x> <http://a/p> \"caf\u{e9} \u{1F600}\"@fr .\n".repeat(5);
    let mut chunked_count = 0usize;
    parse_chunked(doc.as_bytes(), &opts, |batch| {
        chunked_count += batch.len();
        Ok(())
    })
    .expect("valid document parses in chunks");
    let sequential = Parser::parse_all(&doc).expect("valid document parses sequentially");
    assert_eq!(chunked_count, sequential.len());
}

// ------------------------------------------------------------------- HTTP

#[test]
fn http_hostile_requests_error_cleanly() {
    let hostile: &[&[u8]] = &[
        b"",
        b"GET",
        b"GET /x",                  // no terminator
        b"GET /x HTTP/1.1\r\nHost", // torn header
        b"GET /x HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n",
        b"POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\nshort",
        b"\xFF\xFE /x HTTP/1.1\r\n\r\n", // non-UTF-8 method
    ];
    for bytes in hostile {
        let mut r = BufReader::new(*bytes);
        assert!(
            read_request(&mut r).is_err(),
            "must reject request {:?}",
            String::from_utf8_lossy(bytes)
        );
    }
}

#[test]
fn percent_decode_survives_malformed_escapes() {
    // Lossy by design: malformed escapes pass through undecoded, and
    // nothing here may panic or read out of bounds.
    for s in ["%", "%z", "%4", "%zz", "%%%", "%ff%", "a%2", "%E9caf\u{e9}"] {
        let _ = percent_decode(s);
    }
    assert_eq!(percent_decode("%2Fa%20b"), "/a b");
}

// ------------------------------------------------------------------- JSON

#[test]
fn json_hostile_documents_error_cleanly() {
    let valid = r#"{"pairs": [{"name": "default", "etag": "abc"}], "n": 1.5e3}"#;
    assert!(json::parse(valid).is_ok());
    // Every truncation of a valid document must be an error (none of
    // its prefixes are themselves complete JSON).
    for cut in 0..valid.len() {
        let prefix = valid.get(..cut).unwrap_or_default();
        assert!(
            json::parse(prefix).is_err(),
            "prefix {cut} must be rejected"
        );
    }
    for doc in [
        "1e",
        "-",
        "+1",
        "\"\\ud800\"",
        "\"\\q\"",
        "{\"a\" 1}",
        "[1,]",
        "nul",
    ] {
        assert!(json::parse(doc).is_err(), "must reject {doc:?}");
    }
}

#[test]
fn json_deep_nesting_hits_depth_limit_not_the_stack() {
    let deep = "[".repeat(100_000);
    assert!(json::parse(&deep).is_err(), "unterminated nesting rejected");
    let mut balanced = "[".repeat(100_000);
    balanced.push_str(&"]".repeat(100_000));
    assert!(
        json::parse(&balanced).is_err(),
        "nesting past MAX_DEPTH must be rejected, not recursed into"
    );
}
