//! Property-based invariants of the full pipeline on randomly generated
//! knowledge-base pairs.

use proptest::prelude::*;

use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{Aligner, ParisConfig};
use paris_repro::rdf::Literal;

/// A compact random-world model: `n` entities, `r` relations, literal
/// values drawn from a pool whose size controls ambiguity.
#[derive(Clone, Debug)]
struct RandomWorld {
    facts: Vec<(u8, u8, u8)>,
    literal_facts: Vec<(u8, u8, u8)>,
    types: Vec<(u8, u8)>,
}

fn arb_world() -> impl Strategy<Value = RandomWorld> {
    (
        proptest::collection::vec((any::<u8>(), 0u8..4, any::<u8>()), 0..60),
        proptest::collection::vec((any::<u8>(), 4u8..8, 0u8..30), 0..60),
        proptest::collection::vec((any::<u8>(), 0u8..5), 0..20),
    )
        .prop_map(|(facts, literal_facts, types)| RandomWorld { facts, literal_facts, types })
}

/// Renders the world into one KB with a namespace — two renders of
/// overlapping worlds give an alignable pair.
fn render(world: &RandomWorld, ns: &str) -> Kb {
    let mut b = KbBuilder::new(ns);
    for &(s, r, o) in &world.facts {
        b.add_fact(
            format!("http://{ns}/e{}", s % 40),
            format!("http://{ns}/r{r}"),
            format!("http://{ns}/e{}", o % 40),
        );
    }
    for &(s, r, v) in &world.literal_facts {
        b.add_literal_fact(
            format!("http://{ns}/e{}", s % 40),
            format!("http://{ns}/r{r}"),
            Literal::plain(format!("value-{v}")), // shared across namespaces
        );
    }
    for &(e, c) in &world.types {
        b.add_type(format!("http://{ns}/e{}", e % 40), format!("http://{ns}/C{c}"));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every probability the algorithm produces is in [0, 1].
    #[test]
    fn all_scores_are_probabilities(wa in arb_world(), wb in arb_world()) {
        let kb1 = render(&wa, "left");
        let kb2 = render(&wb, "right");
        let config = ParisConfig::default().with_max_iterations(3);
        let result = Aligner::new(&kb1, &kb2, config).run();

        for x in kb1.entities() {
            for &(_, p) in result.instances.candidates(x) {
                prop_assert!((0.0..=1.0).contains(&p), "instance prob {p}");
            }
        }
        for (_, _, p) in result.subrelations.alignments_1to2() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "subrel prob {p}");
        }
        for (_, _, p) in result.subrelations.alignments_2to1() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "subrel prob {p}");
        }
        for s in result.classes.one_to_two.iter().chain(&result.classes.two_to_one) {
            prop_assert!((0.0..=1.0).contains(&s.prob), "class prob {}", s.prob);
        }
    }

    /// Functionalities are in (0, 1] for every variant.
    #[test]
    fn functionalities_in_unit_interval(w in arb_world()) {
        let kb = render(&w, "x");
        for variant in paris_repro::kb::FunctionalityVariant::ALL {
            for f in kb.functionalities_with(variant) {
                prop_assert!(f > 0.0 && f <= 1.0, "{variant:?}: {f}");
            }
        }
    }

    /// Stored equivalences respect the truncation threshold.
    #[test]
    fn truncation_is_enforced(wa in arb_world(), wb in arb_world()) {
        let kb1 = render(&wa, "left");
        let kb2 = render(&wb, "right");
        let config = ParisConfig::default().with_truncation(0.3).with_max_iterations(2);
        let cutoff = config.effective_cutoff(true).min(config.effective_cutoff(false));
        let result = Aligner::new(&kb1, &kb2, config).run();
        for x in kb1.entities() {
            for &(_, p) in result.instances.candidates(x) {
                prop_assert!(p >= cutoff, "stored {p} below cutoff {cutoff}");
            }
        }
    }

    /// The maximal assignment only contains entities of the right KBs and
    /// is consistent with the stored candidates.
    #[test]
    fn maximal_assignment_is_consistent(wa in arb_world(), wb in arb_world()) {
        let kb1 = render(&wa, "left");
        let kb2 = render(&wb, "right");
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_max_iterations(2)).run();
        let assignment = result.instances.maximal_assignment();
        prop_assert_eq!(assignment.len(), kb1.num_entities());
        for (i, a) in assignment.iter().enumerate() {
            if let Some((e2, p)) = a {
                prop_assert!(e2.index() < kb2.num_entities());
                let x = paris_repro::kb::EntityId::from_index(i);
                let best = result
                    .instances
                    .candidates(x)
                    .iter()
                    .map(|&(_, q)| q)
                    .fold(0.0f64, f64::max);
                prop_assert!((best - p).abs() < 1e-12, "max {best} vs assigned {p}");
            }
        }
    }

    /// The identity alignment: a world aligned against itself (different
    /// namespaces) maps shared-literal entities onto themselves — and
    /// never crosses two entities with disjoint literal sets.
    #[test]
    fn self_alignment_is_sane(w in arb_world()) {
        let kb1 = render(&w, "left");
        let kb2 = render(&w, "right");
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_max_iterations(3)).run();
        for (x, x2, _) in result.instance_pairs() {
            let id1 = kb1.iri(x).unwrap().local_name().to_owned();
            // With identical worlds, literal evidence can never prefer a
            // different entity over the twin; ties break by id order, so a
            // mismatch is only legal if the twin has identical evidence
            // (duplicate literal profiles). Check the weaker invariant:
            // the matched pair shares at least one literal value, or is
            // reached through matched neighbours.
            let id2 = kb2.iri(x2).unwrap().local_name().to_owned();
            if id1 == id2 {
                continue;
            }
            let lits = |kb: &Kb, e| {
                kb.facts(e)
                    .iter()
                    .filter_map(|&(_, y)| kb.literal(y).map(|l| l.value().to_owned()))
                    .collect::<std::collections::BTreeSet<_>>()
            };
            let shared = lits(&kb1, x).intersection(&lits(&kb2, x2)).count();
            let has_instance_neighbor = kb1
                .facts(x)
                .iter()
                .any(|&(_, y)| kb1.literal(y).is_none());
            prop_assert!(
                shared > 0 || has_instance_neighbor,
                "{id1} ≠ {id2} matched without any shared evidence"
            );
        }
    }
}
