//! Randomized invariants of the full pipeline on generated knowledge-base
//! pairs. Cases are drawn from a seeded in-workspace RNG, so every run
//! checks the same deterministic batch of random worlds.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{Aligner, ParisConfig};
use paris_repro::rdf::Literal;

const CASES: u64 = 48;

/// A compact random-world model: entity ids, relation ids, and literal
/// values drawn from small pools whose sizes control ambiguity.
#[derive(Clone, Debug)]
struct RandomWorld {
    facts: Vec<(u8, u8, u8)>,
    literal_facts: Vec<(u8, u8, u8)>,
    types: Vec<(u8, u8)>,
}

fn random_world(rng: &mut StdRng) -> RandomWorld {
    let facts = (0..rng.random_range(0usize..60))
        .map(|_| {
            (
                rng.random_range(0u8..=255),
                rng.random_range(0u8..4),
                rng.random_range(0u8..=255),
            )
        })
        .collect();
    let literal_facts = (0..rng.random_range(0usize..60))
        .map(|_| {
            (
                rng.random_range(0u8..=255),
                rng.random_range(4u8..8),
                rng.random_range(0u8..30),
            )
        })
        .collect();
    let types = (0..rng.random_range(0usize..20))
        .map(|_| (rng.random_range(0u8..=255), rng.random_range(0u8..5)))
        .collect();
    RandomWorld {
        facts,
        literal_facts,
        types,
    }
}

/// Renders the world into one KB with a namespace — two renders of
/// overlapping worlds give an alignable pair.
fn render(world: &RandomWorld, ns: &str) -> Kb {
    let mut b = KbBuilder::new(ns);
    for &(s, r, o) in &world.facts {
        b.add_fact(
            format!("http://{ns}/e{}", s % 40),
            format!("http://{ns}/r{r}"),
            format!("http://{ns}/e{}", o % 40),
        );
    }
    for &(s, r, v) in &world.literal_facts {
        b.add_literal_fact(
            format!("http://{ns}/e{}", s % 40),
            format!("http://{ns}/r{r}"),
            Literal::plain(format!("value-{v}")), // shared across namespaces
        );
    }
    for &(e, c) in &world.types {
        b.add_type(
            format!("http://{ns}/e{}", e % 40),
            format!("http://{ns}/C{c}"),
        );
    }
    b.build()
}

/// Every probability the algorithm produces is in [0, 1].
#[test]
fn all_scores_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    for case in 0..CASES {
        let kb1 = render(&random_world(&mut rng), "left");
        let kb2 = render(&random_world(&mut rng), "right");
        let config = ParisConfig::default().with_max_iterations(3);
        let result = Aligner::new(&kb1, &kb2, config).run();

        for x in kb1.entities() {
            for &(_, p) in result.instances.candidates(x) {
                assert!((0.0..=1.0).contains(&p), "case {case}: instance prob {p}");
            }
        }
        for (_, _, p) in result.subrelations.alignments_1to2() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&p),
                "case {case}: subrel prob {p}"
            );
        }
        for (_, _, p) in result.subrelations.alignments_2to1() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&p),
                "case {case}: subrel prob {p}"
            );
        }
        for s in result
            .classes
            .one_to_two
            .iter()
            .chain(&result.classes.two_to_one)
        {
            assert!(
                (0.0..=1.0).contains(&s.prob),
                "case {case}: class prob {}",
                s.prob
            );
        }
    }
}

/// Functionalities are in (0, 1] for every variant.
#[test]
fn functionalities_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    for case in 0..CASES {
        let kb = render(&random_world(&mut rng), "x");
        for variant in paris_repro::kb::FunctionalityVariant::ALL {
            for f in kb.functionalities_with(variant) {
                assert!(f > 0.0 && f <= 1.0, "case {case}: {variant:?}: {f}");
            }
        }
    }
}

/// Stored equivalences respect the truncation threshold.
#[test]
fn truncation_is_enforced() {
    let mut rng = StdRng::seed_from_u64(0x7A0);
    for case in 0..CASES {
        let kb1 = render(&random_world(&mut rng), "left");
        let kb2 = render(&random_world(&mut rng), "right");
        let config = ParisConfig::default()
            .with_truncation(0.3)
            .with_max_iterations(2);
        let cutoff = config
            .effective_cutoff(true)
            .min(config.effective_cutoff(false));
        let result = Aligner::new(&kb1, &kb2, config).run();
        for x in kb1.entities() {
            for &(_, p) in result.instances.candidates(x) {
                assert!(p >= cutoff, "case {case}: stored {p} below cutoff {cutoff}");
            }
        }
    }
}

/// The maximal assignment only contains entities of the right KBs and is
/// consistent with the stored candidates.
#[test]
fn maximal_assignment_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0x3A3);
    for case in 0..CASES {
        let kb1 = render(&random_world(&mut rng), "left");
        let kb2 = render(&random_world(&mut rng), "right");
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_max_iterations(2)).run();
        let assignment = result.instances.maximal_assignment();
        assert_eq!(assignment.len(), kb1.num_entities());
        for (i, a) in assignment.iter().enumerate() {
            if let Some((e2, p)) = a {
                assert!(e2.index() < kb2.num_entities());
                let x = paris_repro::kb::EntityId::from_index(i);
                let best = result
                    .instances
                    .candidates(x)
                    .iter()
                    .map(|&(_, q)| q)
                    .fold(0.0f64, f64::max);
                assert!(
                    (best - p).abs() < 1e-12,
                    "case {case}: max {best} vs assigned {p}"
                );
            }
        }
    }
}

/// The identity alignment: a world aligned against itself (different
/// namespaces) maps shared-literal entities onto themselves — and never
/// crosses two entities with disjoint evidence.
#[test]
fn self_alignment_is_sane() {
    let mut rng = StdRng::seed_from_u64(0x5E1F);
    for case in 0..CASES {
        let w = random_world(&mut rng);
        let kb1 = render(&w, "left");
        let kb2 = render(&w, "right");
        let result = Aligner::new(&kb1, &kb2, ParisConfig::default().with_max_iterations(3)).run();
        for (x, x2, _) in result.instance_pairs() {
            let id1 = kb1.iri(x).unwrap().local_name().to_owned();
            // With identical worlds, literal evidence can never prefer a
            // different entity over the twin; ties break by id order, so a
            // mismatch is only legal if the twin has identical evidence
            // (duplicate literal profiles). Check the weaker invariant:
            // the matched pair shares at least one literal value, or is
            // reached through matched neighbours.
            let id2 = kb2.iri(x2).unwrap().local_name().to_owned();
            if id1 == id2 {
                continue;
            }
            let lits = |kb: &Kb, e| {
                kb.facts(e)
                    .iter()
                    .filter_map(|&(_, y)| kb.literal(y).map(|l| l.value().to_owned()))
                    .collect::<std::collections::BTreeSet<_>>()
            };
            let shared = lits(&kb1, x).intersection(&lits(&kb2, x2)).count();
            let has_instance_neighbor = kb1.facts(x).iter().any(|&(_, y)| kb1.literal(y).is_none());
            assert!(
                shared > 0 || has_instance_neighbor,
                "case {case}: {id1} ≠ {id2} matched without any shared evidence"
            );
        }
    }
}
