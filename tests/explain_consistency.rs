//! Property test: the stored-evidence explanations served by
//! `/v1/pairs/<name>/explain` are **consistent with the served sameas
//! scores and identical across snapshot formats**, on randomized
//! worlds. Cases are drawn from a seeded in-workspace RNG, so every run
//! checks the same deterministic batch.
//!
//! For every aligned pair of every random world, loaded both as a
//! decoded v1 image and as a zero-copy v2 image:
//!
//! 1. re-multiplying the explanation's evidence factors (in listed
//!    order) reproduces its `score` **bit-exactly** — the served
//!    evidence fully accounts for the served score;
//! 2. the explanation's `stored_prob` of the assigned pair is
//!    **bit-equal** to the probability `sameas` serves for it;
//! 3. the v1-decoded and v2-mapped images produce identical evidence
//!    (every rendered string and every float bit) and identical scores.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use paris_repro::kb::{Kb, KbBuilder};
use paris_repro::paris::{
    explain_stored, AlignedPairSnapshot, Aligner, MappedPairSnapshot, OwnedAlignment, PairImage,
    PairSide, ParisConfig,
};
use paris_repro::rdf::Literal;

const CASES: u64 = 10;

/// A compact random world: persons with e-mail-like unique literals,
/// shared low-functionality literals (cities), and entity-valued
/// relations, rendered into two namespaces with overlap — the same
/// generation style as `tests/invariants.rs`, tuned so alignments (and
/// therefore explanations) are non-trivial.
fn random_pair(rng: &mut StdRng) -> (Kb, Kb) {
    let num_people = rng.random_range(4usize..14);
    let num_cities = rng.random_range(1usize..4);
    let mut a = KbBuilder::new("left");
    let mut b = KbBuilder::new("right");
    for i in 0..num_people {
        let email = format!("p{i}@x.org");
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/email",
            Literal::plain(email.clone()),
        );
        // The right KB drops some e-mails, so some pairs rest on weak
        // evidence only.
        if rng.random_range(0.0..1.0) < 0.8 {
            b.add_literal_fact(
                format!("http://b/q{i}"),
                "http://b/mail",
                Literal::plain(email),
            );
        }
        let city = rng.random_range(0usize..num_cities.max(1));
        a.add_literal_fact(
            format!("http://a/p{i}"),
            "http://a/city",
            Literal::plain(format!("City{city}")),
        );
        b.add_literal_fact(
            format!("http://b/q{i}"),
            "http://b/town",
            Literal::plain(format!("City{city}")),
        );
        // Entity-valued evidence: friendship edges to a random person.
        if num_people > 1 && rng.random_range(0.0..1.0) < 0.5 {
            let j = rng.random_range(0usize..num_people);
            a.add_fact(
                format!("http://a/p{i}"),
                "http://a/knows",
                format!("http://a/p{j}"),
            );
            b.add_fact(
                format!("http://b/q{i}"),
                "http://b/friendOf",
                format!("http://b/q{j}"),
            );
        }
    }
    (a.build(), b.build())
}

#[test]
fn explain_recomputes_to_the_served_score_on_both_image_formats() {
    let dir = std::env::temp_dir().join(format!("paris_explain_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(0x9e3779b97f4a7c15);
    let mut explained = 0usize;

    for case in 0..CASES {
        let (kb1, kb2) = random_pair(&mut rng);
        let owned = {
            let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
            OwnedAlignment::from_result(&result)
        };
        let snap = AlignedPairSnapshot::new(kb1, kb2, owned);
        let v1_path = dir.join(format!("case{case}_v1.snap"));
        let v2_path = dir.join(format!("case{case}_v2.snap"));
        snap.save(&v1_path).unwrap();
        MappedPairSnapshot::save_v2(&snap, &v2_path).unwrap();
        let v1 = PairImage::load(&v1_path).unwrap();
        let v2 = PairImage::load(&v2_path).unwrap();
        assert!(matches!(v1, PairImage::Decoded(_)));
        assert!(matches!(v2, PairImage::Mapped(_)));

        // Every KB-1 instance, against its assigned match and one fixed
        // wrong candidate.
        let instances: Vec<_> = snap.kb1.instances().collect();
        let some_kb2_instance = snap.kb2.instances().next();
        for &x in &instances {
            let assigned = snap.alignment.best_match(x);
            let mut candidates: Vec<_> = assigned.map(|(e, _)| e).into_iter().collect();
            if let Some(other) =
                some_kb2_instance.filter(|&e| Some(e) != candidates.first().copied())
            {
                candidates.push(other);
            }
            for x2 in candidates {
                let a = explain_stored(&v1, x, x2);
                let b = explain_stored(&v2, x, x2);

                // (3) identical across formats: every string, every bit.
                assert_eq!(a.evidence, b.evidence, "case {case}: {x:?}/{x2:?}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "case {case}: {x:?}/{x2:?}"
                );
                assert_eq!(
                    a.stored_prob.to_bits(),
                    b.stored_prob.to_bits(),
                    "case {case}: {x:?}/{x2:?}"
                );

                // (1) the served evidence folds back to the served score,
                // bit for bit, on both images.
                for ex in [&a, &b] {
                    assert_eq!(
                        ex.score.to_bits(),
                        ex.recompute_score().to_bits(),
                        "case {case}: {x:?}/{x2:?}"
                    );
                }

                // (2) for the assigned pair, the explanation's stored
                // probability is exactly the sameas-served score — on
                // both images.
                if Some(x2) == assigned.map(|(e, _)| e) {
                    let (_, served) = assigned.unwrap();
                    for (img, ex) in [(&v1, &a), (&v2, &b)] {
                        let from_image = img
                            .best_match_from(PairSide::Kb1, x)
                            .expect("assigned pair has a match");
                        assert_eq!(from_image.0, x2, "case {case}");
                        assert_eq!(from_image.1.to_bits(), served.to_bits(), "case {case}");
                        assert_eq!(
                            ex.stored_prob.to_bits(),
                            served.to_bits(),
                            "case {case}: explain stored_prob vs sameas score"
                        );
                    }
                    // An assigned pair backed by any shared evidence must
                    // not explain to zero.
                    if !a.evidence.is_empty() {
                        assert!(a.score > 0.0, "case {case}: {x:?}");
                    }
                    explained += 1;
                }
            }
        }
    }
    assert!(
        explained >= 20,
        "the random batch must exercise a meaningful number of assigned pairs, got {explained}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
