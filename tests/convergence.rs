//! Fixed-point behaviour: iteration caps, convergence detection, and the
//! stability of the converged state.

use paris_repro::datagen::{persons, restaurants, PersonsConfig, RestaurantsConfig};
use paris_repro::paris::{Aligner, ParisConfig};

#[test]
fn max_iterations_is_respected() {
    let pair = persons::generate(&PersonsConfig {
        num_persons: 30,
        ..Default::default()
    });
    for cap in [1, 2, 3] {
        let config = ParisConfig {
            max_iterations: cap,
            convergence_change: 0.0,
            ..ParisConfig::default()
        };
        let result = Aligner::new(&pair.kb1, &pair.kb2, config).run();
        assert_eq!(result.iterations.len(), cap);
    }
}

#[test]
fn clean_data_converges_quickly() {
    // Paper: person converged after 2 iterations; allow a small margin for
    // the score-stability criterion.
    let pair = persons::generate(&PersonsConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    assert!(result.converged(), "must converge before the cap");
    assert!(result.iterations.len() <= 4, "{}", result.iterations.len());
}

#[test]
fn converged_state_is_a_fixpoint() {
    // Running longer than convergence must not change the assignment.
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let short = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let long = Aligner::new(
        &pair.kb1,
        &pair.kb2,
        ParisConfig {
            max_iterations: 8,
            convergence_change: 0.0,
            ..ParisConfig::default()
        },
    )
    .run();
    let a: Vec<_> = short
        .instances
        .maximal_assignment()
        .iter()
        .map(|x| x.map(|(e, _)| e))
        .collect();
    let b: Vec<_> = long
        .instances
        .maximal_assignment()
        .iter()
        .map(|x| x.map(|(e, _)| e))
        .collect();
    assert_eq!(a, b, "post-convergence iterations changed the assignment");
}

#[test]
fn change_fraction_decreases_broadly() {
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let changes: Vec<f64> = result
        .iterations
        .iter()
        .map(|s| s.changed_fraction)
        .collect();
    assert!(changes.len() >= 2);
    assert!(
        changes.last().unwrap() < &0.02,
        "converged run ends with a small change fraction: {changes:?}"
    );
}

#[test]
fn iteration_stats_are_coherent() {
    let pair = persons::generate(&PersonsConfig {
        num_persons: 40,
        ..Default::default()
    });
    let result = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    for s in &result.iterations {
        assert!(s.assigned_instances <= pair.kb1.num_instances());
        assert!(s.instance_equivalences >= s.assigned_instances);
        assert!(s.instance_seconds >= 0.0);
        assert!(s.changed_fraction >= 0.0);
    }
    assert!(result.literal_pairs > 0);
    // Progress callback sees the same stats the result records.
    let mut seen = Vec::new();
    let r2 = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default())
        .run_with_progress(|s| seen.push(s.iteration));
    assert_eq!(seen.len(), r2.iterations.len());
}

#[test]
fn damping_preserves_result_quality() {
    // §5.1: dampening enforces convergence; it must not change the
    // converged answer on a well-behaved dataset.
    let pair = restaurants::generate(&RestaurantsConfig::default());
    let plain = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let damped = Aligner::new(
        &pair.kb1,
        &pair.kb2,
        ParisConfig::default().with_damping(0.5),
    )
    .run();
    let assignments = |r: &paris_repro::paris::AlignmentResult<'_>| {
        r.instances
            .maximal_assignment()
            .into_iter()
            .map(|a| a.map(|(e, _)| e))
            .collect::<Vec<_>>()
    };
    assert_eq!(assignments(&plain), assignments(&damped));

    let p = paris_repro::eval::evaluate_instances(&plain, &pair.gold);
    let d = paris_repro::eval::evaluate_instances(&damped, &pair.gold);
    assert_eq!(p, d);
}

#[test]
fn damping_zero_is_identity() {
    let pair = persons::generate(&PersonsConfig {
        num_persons: 25,
        ..Default::default()
    });
    let a = Aligner::new(&pair.kb1, &pair.kb2, ParisConfig::default()).run();
    let b = Aligner::new(
        &pair.kb1,
        &pair.kb2,
        ParisConfig::default().with_damping(0.0),
    )
    .run();
    assert_eq!(a.instances.num_pairs(), b.instances.num_pairs());
    assert_eq!(a.iterations.len(), b.iterations.len());
}
