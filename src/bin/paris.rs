//! `paris` — command-line ontology alignment.
//!
//! The front door for using this reproduction as a tool rather than a
//! library:
//!
//! ```text
//! paris align left.nt right.nt --sameas links.nt     # align two RDF files
//! paris stats dump.nt                                # Table-2-style statistics
//! paris generate movies --out /tmp/movies            # emit a benchmark pair
//! paris snapshot left.nt right.nt --out pair.snap    # align once, persist
//! paris delta pair.snap --add-left new.nt --out v2.snap  # incremental update
//! paris convert pair.snap --out pair2.snap           # migrate v1 → v2 (mmap)
//! paris serve pair.snap --addr 127.0.0.1:7070        # serve one alignment
//! paris serve --catalog snaps/                       # serve a directory of pairs
//! paris serve --catalog mirror/ --replica-of http://primary:7070
//!                                                    # serve as a read replica
//! paris sync http://primary:7070 mirror/             # one-shot catalog mirror
//! paris query http://host:7070 sameas http://a/p6    # typed /v1 client
//! ```
//!
//! Arguments are parsed by hand — the tool's surface is small and the
//! workspace deliberately avoids dependencies beyond the approved set.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use paris_repro::datagen;
use paris_repro::eval::Counts;
use paris_repro::kb::{kb_from_file, Kb, KbStats};
use paris_repro::literals::LiteralSimilarity;
use paris_repro::paris::{Aligner, ParisConfig};
use paris_repro::rdf::Iri;

const USAGE: &str = "\
paris — Probabilistic Alignment of Relations, Instances, and Schema

USAGE:
  paris align <LEFT> <RIGHT> [OPTIONS]
  paris stats <FILE>...
  paris generate <persons|restaurants|encyclopedia|movies> --out <DIR> [--seed N] [--scale N]
  paris snapshot <LEFT> <RIGHT> --out <FILE.snap> [--format v1|v2] [CONFIG OPTIONS]
  paris snapshot <FILE> --out <FILE.snap> [--format v1|v2]
  paris ingest <IN.nt> <OUT.snap> [--mem-budget <BYTES>] [--threads N] [--name S] [--tmp <DIR>]
  paris convert <PAIR.snap> --out <FILE.snap> [--format v1|v2]
  paris delta <PAIR.snap> --out <FILE.snap> [DELTA OPTIONS] [CONFIG OPTIONS]
  paris serve <FILE.snap> [SERVE OPTIONS]
  paris serve --catalog <DIR> [SERVE OPTIONS]
  paris sync <URL> <DIR>
  paris query <URL[,URL…]> <health|pairs|stats|diagnostics|metrics|traces|profile|runs|sameas|neighbors|explain|batch> [ARGS]
  paris version

Input files may be N-Triples (.nt), Turtle (.ttl/.turtle), tab-separated
facts (.tsv: subject TAB relation TAB object, quoted objects are literals),
or single-KB snapshots (.snap, as written by `paris snapshot <FILE>` or
`paris ingest`).

ALIGN OPTIONS:
  --literals <identity|normalized|tokensort|edit:<min>|numeric:<tol>>
                          literal similarity function   [default: identity]
  --theta <F>             bootstrap sub-relation score  [default: 0.1]
  --truncation <F>        probability truncation        [default: 0.1]
  --max-iterations <N>    iteration cap                 [default: 10]
  --threads <N>           worker threads (0 = auto)     [default: 0]
  --negative-evidence     use Eq. 14 instead of Eq. 13
  --propagate-all         propagate all equalities, not just the maximal assignment
  --threshold <F>         minimum score for printed/emitted alignments [default: 0.4]
  --sameas <FILE.nt>      write instance alignments as owl:sameAs N-Triples
  --gold <FILE.tsv>       score the alignment against a tab-separated gold standard
  --relations             print relation alignments
  --classes               print class alignments
  --explain <IRI1> <IRI2> print the evidence for one candidate pair

SNAPSHOT:
  With two inputs: parse both, run the full alignment, and write a
  versioned binary aligned-pair snapshot (KBs + alignment) to --out.
  With one input: write a single-KB snapshot (the unit POST /align jobs
  consume). Snapshots load in milliseconds — no re-parsing, no re-aligning.
  --format v1 (default) writes the decode-on-load stream format;
  --format v2 writes the zero-copy section-table format — for aligned
  pairs the one `paris serve` opens via mmap without decoding the body
  (O(validation) startup, page-cache-resident data, built for very
  large KBs), for a single input the same image `paris ingest` streams
  out (useful as the heap-path reference to diff an ingest against). CONFIG OPTIONS are the algorithm-configuration subset of ALIGN
  OPTIONS: --literals, --theta, --truncation, --max-iterations,
  --threads, --negative-evidence, --propagate-all. Output options
  (--threshold, --sameas, --gold, …) do not apply: the snapshot stores
  all scores.

INGEST:
  Stream an N-Triples/N-Quads file straight into a single-KB v2 snapshot
  in bounded memory — the heap `Kb` is never materialized, so the input
  can be far larger than RAM. Parsing is line-parallel (chunks split at
  line boundaries); sorting spills runs to temp files under --mem-budget
  and k-way merges them back. The output is byte-identical to the heap
  path (`paris snapshot IN --format v2 --out OUT`), so everything that
  reads single-KB snapshots (POST /v1/align, `paris align`/`snapshot`
  with .snap inputs) works on ingested images unchanged. `.nq`/`.nquads`
  inputs parse as N-Quads (graph labels validated, then discarded).
  --mem-budget <BYTES>    sort-buffer budget, suffixes K/M/G
                          (floor 64K)             [default: 256M]
  --threads <N>           parser threads (0 = auto)  [default: 0]
  --name <S>              KB name stored in the snapshot
                          [default: input file stem]
  --tmp <DIR>             spill directory [default: the output's]

CONVERT:
  Re-encode an existing aligned-pair snapshot between format versions
  (the input version is auto-detected; --format defaults to v2). Answers
  are bit-identical across formats.

DELTA:
  Apply fact additions/removals to an aligned-pair snapshot and re-align
  *incrementally*: the fixpoint restarts from the stored scores and only
  entries whose support sets were touched are recomputed. Writes the
  updated aligned-pair snapshot to --out (hot-reloadable via
  POST /reload). Deltas carry plain facts only; schema changes need a
  full rebuild. RDF inputs are .nt/.ttl (no .tsv).
  --add-left <FILE>           facts to add to the left KB
  --remove-left <FILE>        facts to remove from the left KB
  --add-right <FILE>          facts to add to the right KB
  --remove-right <FILE>       facts to remove from the right KB
  --delta-left <FILE.delta>   pre-built binary delta for the left KB
  --delta-right <FILE.delta>  pre-built binary delta for the right KB
  --save-delta-left <FILE.delta>   also persist the assembled left delta
  --save-delta-right <FILE.delta>  also persist the assembled right delta
  --full                      run a full from-scratch re-alignment on the
                              delta-updated KBs instead (for comparison)

SERVE:
  Serve one aligned-pair snapshot (positional FILE.snap) or a whole
  directory of them (--catalog DIR: every NAME.snap becomes the pair
  NAME, opened lazily on first hit — v1 files decode, v2 files mmap)
  over HTTP/1.1. The API is the versioned /v1 namespace; every JSON
  answer is enveloped ({\"data\":...} / {\"error\":{code,message}}):
    GET  /v1/pairs                the catalog: names, generations, state
    GET  /v1/pairs/<p>/sameas?iri=I   best match of an instance
                                  (&side=right, &threshold=T to filter)
    GET  /v1/pairs/<p>/neighbors?iri=I   facts around an entity,
                                  paginated (&limit=N cap 1000, &offset=K)
    GET  /v1/pairs/<p>/explain?left=L&right=R   the stored Eq. 13
                                  evidence for one candidate pair
    POST /v1/pairs/<p>/query      batch: up to 256 mixed lookups in one
                                  round-trip (JSON body {\"queries\":[...]})
    GET  /v1/pairs/<p>/stats      KB + alignment statistics of one pair
    GET  /v1/pairs/<p>/healthz    per-pair liveness + generation
    GET  /v1/pairs/<p>/snapshot   raw snapshot bytes (checksum ETag; a
                                  matching If-None-Match costs 0 bytes)
    GET  /v1/pairs/manifest       replication manifest: every pair's
                                  format, generation, length, checksum
    POST /v1/pairs/<p>/reload     atomically swap that pair's snapshot
    GET  /v1/healthz              liveness, version, role, pair count
                                  (on a replica: upstream, last sync,
                                  per-pair generation lag)
    GET  /v1/metrics              telemetry: request/route/status counts,
                                  latency histograms (p50/p90/p99), cache
                                  + eviction counters, per-pair generation
                                  and replication lag — Prometheus text by
                                  default, ?format=json for the envelope
    POST /v1/align                enqueue alignment of two single-KB
                                  snapshots (form fields left=, right=,
                                  optional out=, max_iterations=)
    GET  /v1/jobs/<id>            poll a job (running jobs report live
                                  fixpoint progress from the span tree)
    GET  /v1/debug/traces         recent spans + tail-sampled slowest
                                  traces (see --trace-buffer)
    GET  /v1/debug/traces/<id>    one trace rendered as a span tree
    GET  /v1/pairs/<p>/diagnostics  gold-standard-free quality summary:
                                  coverage, score distribution, aligned
                                  relation/class counts
    GET  /v1/debug/profile        the span ring folded into a flame tree
                                  (?root=NAME re-roots, e.g. iteration)
    GET  /v1/debug/runs           persisted align-run history with drift
                                  flags (see --run-history)
  Every pre-v1 route keeps working as a deprecated alias (same bytes,
  one Warning header); the bare /sameas, /neighbors, /stats, /reload
  aliases answer for the default pair ('default' if present, else
  alphabetically first). See docs/HTTP_API.md for the full reference.
  --catalog <DIR>         serve every *.snap in DIR as a named pair
  --addr <HOST:PORT>      bind address             [default: 127.0.0.1:7070]
  --threads <N>           request worker threads   [default: 4]
  --max-resident <BYTES>  budget for decoded v1 images (suffixes K/M/G);
                          least-recently-used pairs are evicted and
                          transparently re-loaded on the next hit.
                          Mapped v2 arenas cost nothing against it.
  --no-jobs               disable POST /align and client-named reload
                          paths (these make the server read/write
                          server-local files named by the client; there is
                          no authentication — keep the loopback bind or
                          pass --no-jobs on exposed interfaces)
  --watch <SECS>          poll snapshot mtimes every SECS seconds and
                          hot-reload changed pairs; with --catalog, also
                          pick up added and removed snapshot files
  --replica-of <URL>      serve as a read replica of the daemon at URL
                          (http://host:port): continuously mirror its
                          catalog into the --catalog directory (required;
                          created if missing, may start empty), validate
                          and atomically install changed snapshots, and
                          hot-reload them. Composes with --watch and
                          --max-resident. See docs/REPLICATION.md.
  --sync-interval <SECS>  replica manifest poll cadence  [default: 1]
  --log-format <text|json|off>  per-request log lines on stderr (request
                          id, route, pair, status, bytes, latency µs);
                          json emits one machine-ingestable object per
                          line                           [default: text]
  --trace-buffer <N>      span ring-buffer capacity behind the
                          /v1/debug/traces routes; the slowest traces
                          are tail-sampled and kept past eviction;
                          0 disables tracing          [default: 512]
  --slow-ms <MS>          also log one slow_request line (with the
                          pair and trace id) for every request at or
                          above MS milliseconds       [default: off]
  --trace-pinned <N>      how many slowest traces the tail sampler
                          keeps past ring eviction; 0 disables
                          pinning                     [default: 8]
  --run-history <FILE>    append every completed align job to FILE
                          (JSONL) and serve it at /v1/debug/runs;
                          reloaded on restart, consecutive runs of a
                          pair are compared and flagged on drift

QUERY:
  `paris query` speaks the daemon's versioned /v1 API through the typed
  `paris-client` crate — ETag-cached conditional GETs, and transparent
  failover across a comma-separated upstream list (reads go to whichever
  answers; probe roles with `health`).
    paris query URL health                          role, version, pair count
    paris query URL pairs                           the catalog
    paris query URL stats [--pair NAME]             one pair's statistics
    paris query URL metrics [--format prometheus|json]
                                the daemon's /v1/metrics telemetry
    paris query URL traces [--format json]
                                recent spans + slowest traces
    paris query URL traces <TRACE-ID> [--format json]
                                one trace's span tree, indented
    paris query URL diagnostics [--pair NAME] [--format json]
                                alignment quality summary of one pair
    paris query URL profile [--root NAME] [--format json]
                                the daemon's flame profile
    paris query URL runs [--format json]
                                the persisted align-run history
    paris query URL sameas <IRI> [--pair NAME] [--side left|right]
                                [--threshold F]     best match of an instance
    paris query URL neighbors <IRI> [--pair NAME] [--side left|right]
                                [--limit N] [--offset N]   facts, paginated
    paris query URL explain <LEFT_IRI> <RIGHT_IRI> [--pair NAME]
                                the stored Eq. 13 evidence: every factor's
                                relations, functionalities, neighbor pair
                                probability, and the assignment decision
    paris query URL batch <FILE.json|-> [--pair NAME]
                                up to 256 mixed lookups in ONE round-trip
                                (FILE holds the /v1 batch body or the bare
                                queries array; '-' reads stdin)

SYNC:
  `paris sync <URL> <DIR>` runs exactly one replication cycle against
  the daemon at URL, mirroring its catalog into DIR (cron-style
  mirroring without a serving daemon): fetch the manifest, download
  only changed pairs, validate framing + checksums, atomic-rename into
  DIR, delete pairs the primary no longer serves. Exits non-zero if any
  pair failed to transfer.

VERSION:
  `paris version` (or --version/-V) prints the crate version and the
  snapshot/delta format versions this build reads and writes.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("align") => align(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("snapshot") => snapshot(&args[1..]),
        Some("ingest") => ingest(&args[1..]),
        Some("convert") => convert(&args[1..]),
        Some("delta") => delta(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("sync") => sync(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("version") | Some("--version") | Some("-V") => {
            println!("{}", version_string());
            Ok(())
        }
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

/// What `paris version` prints (and `/healthz` reports in parts): the
/// crate version plus every snapshot/delta format version this build
/// understands.
fn version_string() -> String {
    use paris_repro::kb::snapshot::{DELTA_FORMAT_VERSION, SUPPORTED_SNAPSHOT_VERSIONS};
    let formats = SUPPORTED_SNAPSHOT_VERSIONS
        .iter()
        .map(|v| format!("v{v}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "paris {}\nsnapshot formats: {formats} (v1 decode-on-load, v2 zero-copy mmap arena)\n\
         delta format: v{DELTA_FORMAT_VERSION}",
        env!("CARGO_PKG_VERSION"),
    )
}

/// Options accepted by `paris align`, parsed from the raw arguments.
struct AlignOptions {
    left: PathBuf,
    right: PathBuf,
    config: ParisConfig,
    threshold: f64,
    sameas: Option<PathBuf>,
    gold: Option<PathBuf>,
    show_relations: bool,
    show_classes: bool,
    explain: Option<(String, String)>,
}

fn parse_literals(spec: &str) -> Result<LiteralSimilarity, String> {
    match spec {
        "identity" => Ok(LiteralSimilarity::Identity),
        "normalized" => Ok(LiteralSimilarity::Normalized),
        "tokensort" => Ok(LiteralSimilarity::TokenSort),
        other => {
            if let Some(min) = other.strip_prefix("edit:") {
                let min: f64 = min
                    .parse()
                    .map_err(|_| format!("bad edit threshold '{min}'"))?;
                Ok(LiteralSimilarity::EditDistance {
                    min_similarity: min,
                })
            } else if let Some(tol) = other.strip_prefix("numeric:") {
                let tol: f64 = tol
                    .parse()
                    .map_err(|_| format!("bad numeric tolerance '{tol}'"))?;
                Ok(LiteralSimilarity::NumericProportional { tolerance: tol })
            } else {
                Err(format!("unknown literal similarity '{other}'"))
            }
        }
    }
}

/// One flag of the shared `ParisConfig` surface (`--literals`, `--theta`,
/// `--truncation`, `--max-iterations`, `--threads`, `--negative-evidence`,
/// `--propagate-all`) — used identically by `paris align` and
/// `paris snapshot` so the two subcommands cannot drift. Returns
/// `Ok(false)` when `arg` is not a config flag.
fn parse_config_flag(
    arg: &str,
    config: &mut ParisConfig,
    mut value_of: impl FnMut(&str) -> Result<String, String>,
) -> Result<bool, String> {
    match arg {
        "--literals" => config.literal_similarity = parse_literals(&value_of("--literals")?)?,
        "--theta" => {
            config.theta = value_of("--theta")?
                .parse()
                .map_err(|_| "bad --theta value".to_owned())?
        }
        "--truncation" => {
            config.truncation = value_of("--truncation")?
                .parse()
                .map_err(|_| "bad --truncation value".to_owned())?
        }
        "--max-iterations" => {
            config.max_iterations = value_of("--max-iterations")?
                .parse()
                .map_err(|_| "bad --max-iterations value".to_owned())?
        }
        "--threads" => {
            config.threads = value_of("--threads")?
                .parse()
                .map_err(|_| "bad --threads value".to_owned())?
        }
        "--negative-evidence" => config.negative_evidence = true,
        "--propagate-all" => config.propagate_all_equalities = true,
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_align(args: &[String]) -> Result<AlignOptions, String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut config = ParisConfig::default();
    let mut threshold = 0.4;
    let mut sameas = None;
    let mut gold = None;
    let mut show_relations = false;
    let mut show_classes = false;
    let mut explain = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
                .cloned()
        };
        if parse_config_flag(arg, &mut config, &mut value_of)? {
            continue;
        }
        match arg.as_str() {
            "--threshold" => {
                threshold = value_of("--threshold")?
                    .parse()
                    .map_err(|_| "bad --threshold value".to_owned())?
            }
            "--sameas" => sameas = Some(PathBuf::from(value_of("--sameas")?)),
            "--gold" => gold = Some(PathBuf::from(value_of("--gold")?)),
            "--relations" => show_relations = true,
            "--classes" => show_classes = true,
            "--explain" => {
                let a = value_of("--explain")?;
                let b = iter.next().ok_or("--explain needs two IRIs")?.clone();
                explain = Some((a, b));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            _ => positional.push(arg),
        }
    }
    let [left, right] = positional.as_slice() else {
        return Err("align needs exactly two N-Triples files".to_owned());
    };
    Ok(AlignOptions {
        left: PathBuf::from(left),
        right: PathBuf::from(right),
        config,
        threshold,
        sameas,
        gold,
        show_relations,
        show_classes,
        explain,
    })
}

fn align(args: &[String]) -> Result<(), String> {
    let opts = parse_align(args)?;
    let kb1 = load(&opts.left)?;
    let kb2 = load(&opts.right)?;
    eprintln!("loaded {}", KbStats::of(&kb1));
    eprintln!("loaded {}", KbStats::of(&kb2));

    let aligner = Aligner::new(&kb1, &kb2, opts.config.clone());
    let result = aligner.run_with_progress(|stats| {
        eprintln!(
            "iteration {}: {} assigned, {:.1}% changed, {:.2}s",
            stats.iteration,
            stats.assigned_instances,
            stats.changed_fraction * 100.0,
            stats.instance_seconds + stats.subrelation_seconds,
        );
    });

    let pairs = result.instance_pairs();
    println!(
        "aligned {} instances ({} above threshold {})",
        pairs.len(),
        pairs
            .iter()
            .filter(|&&(_, _, p)| p >= opts.threshold)
            .count(),
        opts.threshold,
    );

    if opts.show_relations {
        println!("\nrelation alignments (left ⊆ right):");
        for (sub, sup, p) in result.relation_alignments_1to2(opts.threshold) {
            println!("  {sub} ⊆ {sup}  {p:.2}");
        }
        println!("relation alignments (right ⊆ left):");
        for (sub, sup, p) in result.relation_alignments_2to1(opts.threshold) {
            println!("  {sub} ⊆ {sup}  {p:.2}");
        }
    }
    if opts.show_classes {
        println!("\nclass alignments (left ⊆ right):");
        for s in result.classes.above_1to2(opts.threshold) {
            let (Some(sub), Some(sup)) = (kb1.iri(s.sub), kb2.iri(s.sup)) else {
                continue;
            };
            println!(
                "  {} ⊆ {}  {:.2}",
                sub.local_name(),
                sup.local_name(),
                s.prob
            );
        }
    }

    if let Some(path) = &opts.sameas {
        let links = result.sameas_triples(opts.threshold);
        let doc = paris_repro::rdf::ntriples::to_string(&links);
        std::fs::write(path, doc).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "\nwrote {} owl:sameAs links to {}",
            links.len(),
            path.display()
        );
    }

    if let Some(path) = &opts.gold {
        let gold = read_gold(path)?;
        let counts = score_against_gold(&result.instance_pairs(), &kb1, &kb2, &gold);
        println!(
            "\ngold standard ({} pairs): {}",
            gold.len(),
            counts.summary()
        );
    }

    if let Some((iri1, iri2)) = &opts.explain {
        match result.explain(iri1, iri2) {
            Some(explanation) => println!("\n{}", explanation.render(&kb1, &kb2)),
            None => return Err(format!("unknown IRI in --explain ({iri1} / {iri2})")),
        }
    }
    Ok(())
}

/// Input formats `paris align` / `paris stats` / `paris snapshot` accept.
const SUPPORTED_EXTENSIONS: [&str; 6] = ["nt", "ntriples", "ttl", "turtle", "tsv", "snap"];

/// Checks that an input path exists and carries a supported extension,
/// returning the lower-cased extension. Produces an error naming the file
/// and the reason, instead of letting a parser fail obscurely later.
fn check_input(path: &Path) -> Result<String, String> {
    if !path.exists() {
        return Err(format!(
            "cannot read {}: no such file or directory",
            path.display()
        ));
    }
    if path.is_dir() {
        return Err(format!(
            "cannot read {}: is a directory, expected a file",
            path.display()
        ));
    }
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase);
    match ext {
        Some(e) if SUPPORTED_EXTENSIONS.contains(&e.as_str()) => Ok(e),
        Some(e) => Err(format!(
            "cannot read {}: unsupported extension '.{e}' (expected one of: .nt, .ntriples, .ttl, .turtle, .tsv, .snap)",
            path.display()
        )),
        None => Err(format!(
            "cannot read {}: missing file extension (expected one of: .nt, .ntriples, .ttl, .turtle, .tsv, .snap)",
            path.display()
        )),
    }
}

fn load(path: &Path) -> Result<Kb, String> {
    let ext = check_input(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kb")
        .to_owned();
    let result = if ext == "snap" {
        // A pre-built single-KB snapshot (v1 stream or v2 section image,
        // e.g. from `paris ingest`) — load it instead of parsing RDF.
        return paris_repro::kb::snapshot::load_kb(path)
            .map_err(|e| format!("loading {}: {e}", path.display()));
    } else if ext == "tsv" {
        // The paper's IMDb path: ad-hoc tabular facts → triples (§6.4).
        paris_repro::kb::tsv::kb_from_tsv_file(&name, path, &format!("urn:{name}:"))
    } else {
        // .ttl/.turtle parse as Turtle, everything else as N-Triples.
        kb_from_file(&name, path)
    };
    result.map_err(|e| format!("loading {}: {e}", path.display()))
}

fn read_gold(path: &Path) -> Result<Vec<(String, String)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((a, b)) = line.split_once('\t') else {
            return Err(format!(
                "{}:{}: expected two tab-separated IRIs",
                path.display(),
                number + 1
            ));
        };
        out.push((a.trim().to_owned(), b.trim().to_owned()));
    }
    Ok(out)
}

fn score_against_gold(
    pairs: &[(paris_repro::kb::EntityId, paris_repro::kb::EntityId, f64)],
    kb1: &Kb,
    kb2: &Kb,
    gold: &[(String, String)],
) -> Counts {
    let mut counts = Counts::default();
    let predicted: std::collections::HashMap<_, _> =
        pairs.iter().map(|&(x, y, _)| (x, y)).collect();
    for (a, b) in gold {
        let (Some(e1), Some(e2)) = (kb1.entity_by_iri(a), kb2.entity_by_iri(b)) else {
            continue;
        };
        match predicted.get(&e1) {
            Some(&p) if p == e2 => counts.true_positives += 1,
            Some(_) => {
                counts.false_positives += 1;
                counts.false_negatives += 1;
            }
            None => counts.false_negatives += 1,
        }
    }
    counts
}

fn stats(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err("stats needs at least one N-Triples file".to_owned());
    }
    println!("{}", KbStats::table_header());
    for path in args {
        let kb = load(Path::new(path))?;
        println!("{}", KbStats::of(&kb).table_row());
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let mut dataset: Option<&str> = None;
    let mut out: Option<PathBuf> = None;
    let mut seed: Option<u64> = None;
    let mut scale: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    iter.next().ok_or("--out requires a directory")?,
                ))
            }
            "--seed" => {
                seed = Some(
                    iter.next()
                        .ok_or("--seed requires a value")?
                        .parse()
                        .map_err(|_| "bad --seed value".to_owned())?,
                )
            }
            "--scale" => {
                scale = Some(
                    iter.next()
                        .ok_or("--scale requires a value")?
                        .parse()
                        .map_err(|_| "bad --scale value".to_owned())?,
                )
            }
            name if !name.starts_with("--") && dataset.is_none() => dataset = Some(name),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let dataset = dataset.ok_or("generate needs a dataset name")?;
    let out = out.ok_or("generate needs --out <DIR>")?;

    let pair = match dataset {
        "persons" => {
            let mut c = datagen::PersonsConfig::default();
            if let Some(s) = seed {
                c.seed = s;
            }
            if let Some(n) = scale {
                c.num_persons = n;
            }
            datagen::persons::generate(&c)
        }
        "restaurants" => {
            let mut c = datagen::RestaurantsConfig::default();
            if let Some(s) = seed {
                c.seed = s;
            }
            if let Some(n) = scale {
                c.num_matched = n;
            }
            datagen::restaurants::generate(&c)
        }
        "encyclopedia" => {
            let mut c = datagen::EncyclopediaConfig::default();
            if let Some(s) = seed {
                c.seed = s;
            }
            if let Some(n) = scale {
                c.num_people = n;
            }
            datagen::encyclopedia::generate(&c)
        }
        "movies" => {
            let mut c = datagen::MoviesConfig::default();
            if let Some(s) = seed {
                c.seed = s;
            }
            if let Some(n) = scale {
                c.num_movies = n;
            }
            datagen::movies::generate(&c)
        }
        other => return Err(format!("unknown dataset '{other}'")),
    };

    std::fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let write = |name: &str, content: String| -> Result<(), String> {
        let path = out.join(name);
        std::fs::write(&path, content).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("left.nt", paris_repro::kb::export::to_ntriples(&pair.kb1))?;
    write("right.nt", paris_repro::kb::export::to_ntriples(&pair.kb2))?;
    write("gold.tsv", gold_tsv(&pair.gold.instances))?;
    println!(
        "wrote left.nt ({}), right.nt ({}), gold.tsv ({} pairs) to {}",
        KbStats::of(&pair.kb1),
        KbStats::of(&pair.kb2),
        pair.gold.num_instances(),
        out.display(),
    );
    Ok(())
}

/// A snapshot format selector (`--format v1|v2`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SnapFormat {
    V1,
    V2,
}

fn parse_format(spec: &str) -> Result<SnapFormat, String> {
    match spec {
        "v1" | "1" => Ok(SnapFormat::V1),
        "v2" | "2" => Ok(SnapFormat::V2),
        other => Err(format!(
            "unknown snapshot format '{other}' (expected v1 or v2)"
        )),
    }
}

/// Writes an aligned pair in the requested format.
fn save_pair(
    snap: &paris_repro::paris::AlignedPairSnapshot,
    format: SnapFormat,
    out: &Path,
) -> Result<(), String> {
    match format {
        SnapFormat::V1 => snap.save(out),
        SnapFormat::V2 => paris_repro::paris::MappedPairSnapshot::save_v2(snap, out),
    }
    .map_err(|e| format!("writing {}: {e}", out.display()))
}

/// `paris snapshot`: persist one KB, or align a pair and persist the
/// result, as a versioned binary snapshot.
fn snapshot(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut config = ParisConfig::default();
    let mut format = SnapFormat::V1;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
                .cloned()
        };
        if parse_config_flag(arg, &mut config, &mut value_of)? {
            continue;
        }
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--format" => format = parse_format(&value_of("--format")?)?,
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            _ => positional.push(arg),
        }
    }
    let out = out.ok_or("snapshot needs --out <FILE.snap>")?;

    let t0 = std::time::Instant::now();
    match positional.as_slice() {
        [single] => {
            let kb = load(Path::new(single))?;
            match format {
                SnapFormat::V1 => paris_repro::kb::snapshot::save_kb(&kb, &out),
                SnapFormat::V2 => paris_repro::kb::snapshot_v2::save_kb_v2(&kb, &out),
            }
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
            println!(
                "wrote {} single-KB snapshot of {} to {} ({} bytes, {:.2}s)",
                if format == SnapFormat::V2 { "v2" } else { "v1" },
                KbStats::of(&kb),
                out.display(),
                file_size(&out),
                t0.elapsed().as_secs_f64(),
            );
        }
        [left, right] => {
            let kb1 = load(Path::new(left))?;
            let kb2 = load(Path::new(right))?;
            eprintln!("loaded {}", KbStats::of(&kb1));
            eprintln!("loaded {}", KbStats::of(&kb2));
            let result = Aligner::new(&kb1, &kb2, config).run();
            let aligned = result.instance_pairs().len();
            let iterations = result.iterations.len();
            let owned = result.detach();
            let snap = paris_repro::paris::AlignedPairSnapshot::new(kb1, kb2, owned);
            save_pair(&snap, format, &out)?;
            println!(
                "wrote {} aligned-pair snapshot to {} ({} bytes): {aligned} instances aligned in {iterations} iterations, {:.2}s total",
                if format == SnapFormat::V2 { "v2" } else { "v1" },
                out.display(),
                file_size(&out),
                t0.elapsed().as_secs_f64(),
            );
        }
        _ => {
            return Err("snapshot needs one input file (KB snapshot) or two (aligned pair)".into())
        }
    }
    Ok(())
}

/// `paris ingest`: stream an N-Triples/N-Quads file into a single-KB v2
/// snapshot in bounded memory, never materializing a heap `Kb`.
fn ingest(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut opts = paris_repro::kb::ingest::IngestOptions {
        threads: 0,
        ..Default::default()
    };
    let mut name: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
                .cloned()
        };
        match arg.as_str() {
            "--mem-budget" => {
                let bytes = parse_byte_size(&value_of("--mem-budget")?)?;
                opts.mem_budget = usize::try_from(bytes)
                    .map_err(|_| format!("--mem-budget {bytes} does not fit this platform"))?;
            }
            "--threads" => {
                opts.threads = value_of("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads value".to_owned())?
            }
            "--name" => name = Some(value_of("--name")?),
            "--quads" => opts.quads = true,
            "--tmp" => opts.tmp_dir = Some(PathBuf::from(value_of("--tmp")?)),
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            _ => positional.push(arg),
        }
    }
    let [input, output] = positional.as_slice() else {
        return Err("ingest needs exactly two arguments: <IN.nt> <OUT.snap>".to_owned());
    };
    let input = Path::new(input);
    let output = Path::new(output);
    if !input.exists() {
        return Err(format!(
            "cannot read {}: no such file or directory",
            input.display()
        ));
    }
    let ext = input
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .unwrap_or_default();
    match ext.as_str() {
        "nt" | "ntriples" => {}
        "nq" | "nquads" => opts.quads = true,
        other => {
            return Err(format!(
                "cannot ingest {}: unsupported extension '.{other}' (expected .nt, .ntriples, \
                 .nq, or .nquads — Turtle and TSV need the heap path, `paris snapshot`)",
                input.display()
            ))
        }
    }
    if opts.threads == 0 {
        opts.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    opts.name = name.unwrap_or_else(|| {
        input
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("kb")
            .to_owned()
    });

    let t0 = std::time::Instant::now();
    let report = paris_repro::kb::ingest::ingest_file(input, output, &opts)
        .map_err(|e| format!("ingesting {}: {e}", input.display()))?;
    println!(
        "ingested {} ({} triples, {} lines, {} bytes) into {}: \
         {} terms, {} relations, {} classes, {} pairs → {} bytes; \
         {} spill runs ({} bytes) under a {} byte budget; {:.2}s",
        input.display(),
        report.triples,
        report.lines,
        report.bytes_in,
        output.display(),
        report.entities,
        report.relations,
        report.classes,
        report.pairs,
        report.output_bytes,
        report.spill_runs,
        report.spill_bytes,
        opts.mem_budget,
        t0.elapsed().as_secs_f64(),
    );
    Ok(())
}

/// `paris convert`: re-encode an aligned-pair snapshot between format
/// versions (v1 ↔ v2). The input version is auto-detected.
fn convert(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut format = SnapFormat::V2;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
                .cloned()
        };
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--format" => format = parse_format(&value_of("--format")?)?,
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            _ => positional.push(arg),
        }
    }
    let [input] = positional.as_slice() else {
        return Err("convert needs exactly one aligned-pair snapshot".to_owned());
    };
    let out = out.ok_or("convert needs --out <FILE.snap>")?;

    let t0 = std::time::Instant::now();
    let image = paris_repro::paris::PairImage::load(input.as_str())
        .map_err(|e| format!("loading {input}: {e}"))?;
    let from = image.format_version();
    // Hydration is the expensive half of a v2 → v1 conversion; v1 → v2
    // just re-encodes the decoded image.
    let snap = image.into_decoded();
    save_pair(&snap, format, &out)?;
    println!(
        "converted {input} (v{from}) to {} ({}, {} bytes, {:.2}s)",
        out.display(),
        if format == SnapFormat::V2 { "v2" } else { "v1" },
        file_size(&out),
        t0.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn file_size(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Parses an RDF file into triples for delta assembly (.nt/.ttl only —
/// the .tsv importer synthesizes IRIs and is not delta-addressable).
fn read_delta_triples(path: &Path) -> Result<Vec<paris_repro::rdf::Triple>, String> {
    let ext = check_input(path)?;
    let result = match ext.as_str() {
        "tsv" => {
            return Err(format!(
                "cannot read {}: .tsv is not supported for deltas (use .nt or .ttl)",
                path.display()
            ))
        }
        "ttl" | "turtle" => paris_repro::rdf::turtle::parse_turtle_file(path),
        _ => paris_repro::rdf::ntriples::parse_file(path),
    };
    result.map_err(|e| format!("loading {}: {e}", path.display()))
}

/// Assembles one side's delta from an optional pre-built binary delta
/// plus optional add/remove RDF files. Returns `None` when the side is
/// untouched.
fn assemble_delta(
    binary: Option<&PathBuf>,
    add: Option<&PathBuf>,
    remove: Option<&PathBuf>,
) -> Result<Option<paris_repro::kb::KbDelta>, String> {
    if binary.is_none() && add.is_none() && remove.is_none() {
        return Ok(None);
    }
    let mut delta = match binary {
        Some(path) => paris_repro::kb::KbDelta::load(path)
            .map_err(|e| format!("loading {}: {e}", path.display()))?,
        // Wildcard target: snapshot KB names come from the original file
        // stems, which the delta author need not know.
        None => paris_repro::kb::KbDelta::new(""),
    };
    for (path, remove_flag) in [(add, false), (remove, true)] {
        if let Some(path) = path {
            let triples = read_delta_triples(path)?;
            delta
                .add_triples(&triples, remove_flag)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
    }
    Ok(Some(delta))
}

/// `paris delta`: apply deltas to an aligned-pair snapshot and re-align
/// incrementally (or fully with `--full`), writing the updated snapshot.
fn delta(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut config = ParisConfig::default();
    let mut full = false;
    let mut paths: [Option<PathBuf>; 8] = Default::default();
    const ADD_LEFT: usize = 0;
    const REMOVE_LEFT: usize = 1;
    const ADD_RIGHT: usize = 2;
    const REMOVE_RIGHT: usize = 3;
    const DELTA_LEFT: usize = 4;
    const DELTA_RIGHT: usize = 5;
    const SAVE_LEFT: usize = 6;
    const SAVE_RIGHT: usize = 7;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
                .cloned()
        };
        if parse_config_flag(arg, &mut config, &mut value_of)? {
            continue;
        }
        let slot = match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(value_of("--out")?));
                continue;
            }
            "--full" => {
                full = true;
                continue;
            }
            "--add-left" => ADD_LEFT,
            "--remove-left" => REMOVE_LEFT,
            "--add-right" => ADD_RIGHT,
            "--remove-right" => REMOVE_RIGHT,
            "--delta-left" => DELTA_LEFT,
            "--delta-right" => DELTA_RIGHT,
            "--save-delta-left" => SAVE_LEFT,
            "--save-delta-right" => SAVE_RIGHT,
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            _ => {
                positional.push(arg);
                continue;
            }
        };
        paths[slot] = Some(PathBuf::from(value_of(arg)?));
    }
    let [pair_path] = positional.as_slice() else {
        return Err("delta needs exactly one aligned-pair snapshot".to_owned());
    };
    let out = out.ok_or("delta needs --out <FILE.snap>")?;

    let delta1 = assemble_delta(
        paths[DELTA_LEFT].as_ref(),
        paths[ADD_LEFT].as_ref(),
        paths[REMOVE_LEFT].as_ref(),
    )?;
    let delta2 = assemble_delta(
        paths[DELTA_RIGHT].as_ref(),
        paths[ADD_RIGHT].as_ref(),
        paths[REMOVE_RIGHT].as_ref(),
    )?;
    if delta1.is_none() && delta2.is_none() {
        return Err("delta needs at least one of --add/--remove/--delta-left/-right".to_owned());
    }
    for (assembled, save_slot) in [(&delta1, SAVE_LEFT), (&delta2, SAVE_RIGHT)] {
        if let (Some(d), Some(path)) = (assembled, &paths[save_slot]) {
            d.save(path)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!(
                "wrote binary delta ({} changes) to {}",
                d.len(),
                path.display()
            );
        }
    }

    let t0 = std::time::Instant::now();
    // Deltas rewrite the KBs, so a v2 input is hydrated into the owned
    // representation first (v1 inputs decode directly).
    let snap = paris_repro::paris::PairImage::load(pair_path.as_str())
        .map_err(|e| format!("loading {pair_path}: {e}"))?
        .into_decoded();
    let load_seconds = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    if full {
        // Comparison mode: apply the deltas, then a from-scratch run.
        let mut kb1 = snap.kb1;
        let mut kb2 = snap.kb2;
        let mut counts = (0usize, 0usize);
        for (delta, kb) in [(&delta1, &mut kb1), (&delta2, &mut kb2)] {
            if let Some(d) = delta {
                let applied = paris_repro::kb::delta::apply(kb, d).map_err(|e| e.to_string())?;
                counts.0 += applied.added;
                counts.1 += applied.removed;
                *kb = applied.kb;
            }
        }
        let result = Aligner::new(&kb1, &kb2, config).run();
        let aligned = result.instance_pairs().len();
        let iterations = result.iterations.len();
        let owned = result.detach();
        paris_repro::paris::AlignedPairSnapshot::new(kb1, kb2, owned)
            .save(&out)
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!(
            "full re-alignment after delta (+{} −{} facts): {aligned} instances \
             aligned in {iterations} iterations, {:.2}s (+ {load_seconds:.2}s load), \
             wrote {} ({} bytes)",
            counts.0,
            counts.1,
            t1.elapsed().as_secs_f64(),
            out.display(),
            file_size(&out),
        );
        return Ok(());
    }

    let (updated, report) = paris_repro::paris::update_snapshot(
        snap,
        delta1.as_ref(),
        delta2.as_ref(),
        &config,
        &paris_repro::paris::IncrementalOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    updated
        .save(&out)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "incremental re-alignment (+{} −{} facts left, +{} −{} right): rescored \
         {}/{} instance rows and {} relation rows over {} iterations, {:.2}s \
         (+ {load_seconds:.2}s load), wrote {} ({} bytes)",
        report.added1,
        report.removed1,
        report.added2,
        report.removed2,
        report.incremental.rescored_rows,
        report.incremental.total_instances,
        report.incremental.rescored_relation_rows,
        report.iterations,
        t1.elapsed().as_secs_f64(),
        out.display(),
        file_size(&out),
    );
    Ok(())
}

/// Parses a byte count with an optional K/M/G suffix (binary units).
fn parse_byte_size(spec: &str) -> Result<u64, String> {
    let spec = spec.trim();
    let (digits, multiplier) = match spec.chars().last() {
        Some('k') | Some('K') => (&spec[..spec.len() - 1], 1u64 << 10),
        Some('m') | Some('M') => (&spec[..spec.len() - 1], 1u64 << 20),
        Some('g') | Some('G') => (&spec[..spec.len() - 1], 1u64 << 30),
        _ => (spec, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad byte size '{spec}' (expected e.g. 1048576, 512M, 2G)"))?;
    n.checked_mul(multiplier)
        .ok_or_else(|| format!("byte size '{spec}' overflows"))
}

/// `paris serve`: serve one snapshot, or a catalog directory of them,
/// over HTTP.
fn serve(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut config = paris_repro::server::ServerConfig {
        // A daemon run from a terminal should say what it is doing; the
        // library default stays Off so embedding a Server is silent.
        log_format: paris_repro::server::LogFormat::Text,
        ..Default::default()
    };

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
                .cloned()
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--threads" => {
                config.threads = value_of("--threads")?
                    .parse()
                    .map_err(|_| "bad --threads value".to_owned())?
            }
            "--no-jobs" => config.enable_jobs = false,
            "--catalog" => config.catalog_dir = Some(PathBuf::from(value_of("--catalog")?)),
            "--max-resident" => {
                config.max_resident_bytes = Some(parse_byte_size(&value_of("--max-resident")?)?)
            }
            "--watch" => {
                let seconds: f64 = value_of("--watch")?
                    .parse()
                    .map_err(|_| "bad --watch value".to_owned())?;
                if !seconds.is_finite() || seconds <= 0.0 {
                    return Err("--watch needs a positive number of seconds".to_owned());
                }
                config.watch_interval = Some(std::time::Duration::from_secs_f64(seconds));
            }
            "--log-format" => {
                let value = value_of("--log-format")?;
                config.log_format =
                    paris_repro::server::LogFormat::parse(&value).ok_or_else(|| {
                        format!("--log-format must be text, json, or off, not '{value}'")
                    })?
            }
            "--replica-of" => config.replica_of = Some(value_of("--replica-of")?),
            "--trace-buffer" => {
                config.trace_buffer = value_of("--trace-buffer")?
                    .parse()
                    .map_err(|_| "bad --trace-buffer value (spans, 0 disables)".to_owned())?
            }
            "--slow-ms" => {
                config.slow_ms = Some(
                    value_of("--slow-ms")?
                        .parse()
                        .map_err(|_| "bad --slow-ms value (milliseconds)".to_owned())?,
                )
            }
            "--trace-pinned" => {
                config.trace_pinned = value_of("--trace-pinned")?
                    .parse()
                    .map_err(|_| "bad --trace-pinned value (slow traces, 0 disables)".to_owned())?
            }
            "--run-history" => config.run_history = Some(PathBuf::from(value_of("--run-history")?)),
            "--sync-interval" => {
                let seconds: f64 = value_of("--sync-interval")?
                    .parse()
                    .map_err(|_| "bad --sync-interval value".to_owned())?;
                if !seconds.is_finite() || seconds <= 0.0 {
                    return Err("--sync-interval needs a positive number of seconds".to_owned());
                }
                config.sync_interval = std::time::Duration::from_secs_f64(seconds);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            _ => positional.push(arg),
        }
    }
    if config.replica_of.is_some() && config.catalog_dir.is_none() {
        return Err(
            "--replica-of needs --catalog DIR (the local mirror directory, created if missing)"
                .into(),
        );
    }

    let server = match (config.catalog_dir.clone(), positional.as_slice()) {
        (Some(dir), []) => {
            let replica_of = config.replica_of.clone();
            let server = paris_repro::server::Server::bind_catalog(config)
                .map_err(|e| format!("opening catalog {}: {e}", dir.display()))?;
            match replica_of {
                Some(upstream) => eprintln!(
                    "replica of {upstream}: mirroring into {} ({} pair(s) already local)",
                    dir.display(),
                    server.pair_names().len(),
                ),
                None => eprintln!(
                    "catalog {}: serving {} pair(s): {}",
                    dir.display(),
                    server.pair_names().len(),
                    server.pair_names().join(", "),
                ),
            }
            server
        }
        (Some(_), _) => {
            return Err("serve takes either --catalog DIR or one snapshot file, not both".into())
        }
        (None, [snapshot_path]) => {
            // The serve-time file is the default source for POST /reload
            // and the --watch re-check.
            config.snapshot_path = Some(PathBuf::from(snapshot_path.as_str()));
            let t0 = std::time::Instant::now();
            let image = paris_repro::paris::PairImage::load(snapshot_path.as_str())
                .map_err(|e| format!("loading {snapshot_path}: {e}"))?;
            eprintln!(
                "loaded v{} snapshot in {:.1} ms ({}): {} / {} — {} aligned instances",
                image.format_version(),
                t0.elapsed().as_secs_f64() * 1000.0,
                if image.is_mapped() {
                    "mmap, zero-copy"
                } else {
                    "decoded"
                },
                image.kb_stats(paris_repro::paris::PairSide::Kb1),
                image.kb_stats(paris_repro::paris::PairSide::Kb2),
                image.aligned_instances(),
            );
            paris_repro::server::Server::bind_image(image, config)
                .map_err(|e| format!("binding listener: {e}"))?
        }
        (None, _) => {
            return Err("serve needs exactly one snapshot file (or --catalog DIR)".to_owned())
        }
    };
    let addr = server
        .local_addr()
        .map_err(|e| format!("resolving bound address: {e}"))?;
    eprintln!("serving on http://{addr}  (try: curl 'http://{addr}/v1/healthz')");
    server.run().map_err(|e| format!("server error: {e}"))
}

/// `paris sync`: one replication cycle — mirror a primary's catalog
/// into a local directory (the cron-style counterpart of
/// `paris serve --replica-of`).
fn sync(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown option '{flag}'"));
    }
    let [url, dir] = positional.as_slice() else {
        return Err("sync needs exactly an upstream URL and a mirror directory".to_owned());
    };

    let t0 = std::time::Instant::now();
    let mut engine = paris_repro::replica::SyncEngine::new(url, dir.as_str())?;
    let outcome = engine
        .sync_once()
        .map_err(|e| format!("sync against {url}: {e}"))?;
    println!(
        "synced {url} -> {dir}: {} updated, {} unchanged, {} removed \
         ({} snapshot bytes transferred, {:.2}s)",
        outcome.updated.len(),
        outcome.unchanged,
        outcome.removed.len(),
        outcome.snapshot_bytes,
        t0.elapsed().as_secs_f64(),
    );
    for name in &outcome.updated {
        println!("  updated  {name}");
    }
    for name in &outcome.removed {
        println!("  removed  {name}");
    }
    if !outcome.failed.is_empty() {
        for (name, why) in &outcome.failed {
            eprintln!("  FAILED   {name}: {why}");
        }
        return Err(format!(
            "{} pair(s) failed to transfer (the mirror keeps its previous copies)",
            outcome.failed.len()
        ));
    }
    Ok(())
}

/// `paris query`: the typed `/v1` client — sameas/neighbors/explain/
/// batch/stats against one daemon or a failover list.
fn query(args: &[String]) -> Result<(), String> {
    use paris_repro::client::{ParisClient, Query, Side};

    let (positional, flags) = split_query_args(args)?;
    let [urls, command, rest @ ..] = positional.as_slice() else {
        return Err("query needs an upstream URL (or comma-separated list) and a command".into());
    };
    let upstreams: Vec<&str> = urls.split(',').filter(|u| !u.is_empty()).collect();
    let mut client =
        ParisClient::with_upstreams(&upstreams).map_err(|e| format!("bad upstream: {e}"))?;

    let flag = |name: &str| {
        flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let pair = flag("--pair");
    let side = match flag("--side") {
        None | Some("left") => Side::Left,
        Some("right") => Side::Right,
        Some(other) => return Err(format!("--side must be left or right, not '{other}'")),
    };
    let parse_num = |name: &str| -> Result<Option<u64>, String> {
        flag(name)
            .map(|v| v.parse().map_err(|_| format!("bad {name} value '{v}'")))
            .transpose()
    };
    let err = |e: paris_repro::client::ClientError| e.to_string();
    // `--format json` on the observability commands prints the raw
    // envelope body instead of the rendered view (mirrors `metrics`,
    // which additionally accepts `prometheus`).
    let wants_json = || -> Result<bool, String> {
        match flag("--format") {
            None => Ok(false),
            Some("json") => Ok(true),
            Some(other) => Err(format!("--format must be json, not '{other}'")),
        }
    };
    let print_raw = |body: String| {
        print!("{body}");
        if !body.ends_with('\n') {
            println!();
        }
    };

    match (command.as_str(), rest) {
        ("health", []) => {
            let h = client.healthz().map_err(err)?;
            println!(
                "{} paris {} ({}): {} pair(s), default generation {}",
                h.status, h.version, h.role, h.pairs, h.generation
            );
        }
        ("pairs", []) => {
            let (default, pairs) = client.pairs().map_err(err)?;
            for p in pairs {
                println!(
                    "{:<24} {:<9} generation {}{}",
                    p.name,
                    if p.loaded { "loaded" } else { "unloaded" },
                    p.generation,
                    if p.name == default { "  (default)" } else { "" },
                );
            }
        }
        ("stats", []) => {
            let s = client.stats(pair).map_err(err)?;
            println!(
                "pair {} ({}): {} aligned instances, {} equivalences, generation {}, converged {}",
                s.pair,
                s.format,
                s.aligned_instances,
                s.instance_equivalences,
                s.generation,
                s.converged,
            );
        }
        ("sameas", [iri]) => {
            let threshold = flag("--threshold")
                .map(|v| v.parse::<f64>().map_err(|_| "bad --threshold value"))
                .transpose()?;
            let a = client.sameas(pair, iri, side, threshold).map_err(err)?;
            match a.sameas {
                Some(m) => println!("{} ≡ {}  Pr={}", a.iri, m, a.score),
                None => println!("{}: no match", a.iri),
            }
        }
        ("neighbors", [iri]) => {
            let limit = parse_num("--limit")?;
            let offset = parse_num("--offset")?.unwrap_or(0);
            let n = client
                .neighbors(pair, iri, side, limit, offset)
                .map_err(err)?;
            println!(
                "{}: {} fact(s), showing {} from offset {}",
                n.iri,
                n.total_facts,
                n.facts.len(),
                n.offset
            );
            for f in n.facts {
                println!(
                    "  {}{:<1} {}  (fun {:.2})",
                    f.relation,
                    if f.inverse { "⁻" } else { "" },
                    f.value,
                    f.functionality
                );
            }
        }
        ("explain", [left, right]) => {
            let ex = client.explain(pair, left, right).map_err(err)?;
            println!(
                "Pr({} ≡ {}) = {:.4} from {} piece(s) of evidence (stored {:.4}, assigned: {})",
                ex.left,
                ex.right,
                ex.score,
                ex.evidence.len(),
                ex.stored_score,
                ex.assigned,
            );
            for e in &ex.evidence {
                println!(
                    "  {}({}) ~ {}({})  Pr(y≡y′)={:.2} fun⁻¹={:.2}/{:.2} → +{:.3}",
                    e.relation_left,
                    e.neighbor_left,
                    e.relation_right,
                    e.neighbor_right,
                    e.neighbor_prob,
                    e.inv_functionality_left,
                    e.inv_functionality_right,
                    1.0 - e.factor,
                );
            }
            match &ex.assignment.sameas {
                Some(m) => println!(
                    "assignment: {} ≡ {}  Pr={}",
                    ex.left, m, ex.assignment.score
                ),
                None => println!("assignment: {} is unassigned", ex.left),
            }
        }
        ("batch", [file]) => {
            let text = if file.as_str() == "-" {
                use std::io::Read;
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?
            };
            let queries = parse_batch_file(&text)?;
            let results = client.batch(pair, &queries).map_err(err)?;
            for (query, result) in queries.iter().zip(results) {
                let iri = match query {
                    Query::Sameas { iri, .. } | Query::Neighbors { iri, .. } => iri,
                };
                match result {
                    Ok(paris_repro::client::BatchAnswer::Sameas(a)) => match a.sameas {
                        Some(m) => println!("{iri} ≡ {m}  Pr={}", a.score),
                        None => println!("{iri}: no match"),
                    },
                    Ok(paris_repro::client::BatchAnswer::Neighbors(n)) => {
                        println!("{iri}: {} fact(s)", n.total_facts)
                    }
                    Err(e) => println!("{iri}: ERROR {e}"),
                }
            }
        }
        ("traces", []) => {
            use paris_repro::client::json::Json;
            if wants_json()? {
                print_raw(client.get_raw("/v1/debug/traces").map_err(err)?);
                return Ok(());
            }
            let d = client.debug_traces().map_err(err)?;
            let int = |k: &str| d.get(k).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "trace buffer: {} span(s) recorded, {} evicted (capacity {})",
                int("recorded"),
                int("dropped"),
                int("capacity"),
            );
            let slowest = d.get("slowest").and_then(Json::as_array).unwrap_or(&[]);
            if !slowest.is_empty() {
                println!("slowest traces:");
                for s in slowest {
                    println!(
                        "  {}  {:>10.3} ms  {:>4} span(s)  {}",
                        s.get("trace").and_then(Json::as_str).unwrap_or("?"),
                        s.get("duration_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
                        s.get("spans").and_then(Json::as_u64).unwrap_or(0),
                        s.get("root").and_then(Json::as_str).unwrap_or("?"),
                    );
                }
            }
            let recent = d.get("recent").and_then(Json::as_array).unwrap_or(&[]);
            if !recent.is_empty() {
                println!("recent spans (newest first):");
                for s in recent.iter().take(20) {
                    println!(
                        "  {}  {:>10.3} ms  {}",
                        s.get("trace").and_then(Json::as_str).unwrap_or("?"),
                        s.get("duration_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
                        s.get("name").and_then(Json::as_str).unwrap_or("?"),
                    );
                }
            }
        }
        ("traces", [id]) => {
            use paris_repro::client::json::Json;
            if wants_json()? {
                if id.len() != 32 || !id.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(format!("invalid trace id '{id}'"));
                }
                print_raw(
                    client
                        .get_raw(&format!("/v1/debug/traces/{id}"))
                        .map_err(err)?,
                );
                return Ok(());
            }
            let d = client.debug_trace(id).map_err(err)?;
            println!(
                "trace {} ({} span(s)):",
                d.get("trace").and_then(Json::as_str).unwrap_or(id),
                d.get("spans").and_then(Json::as_u64).unwrap_or(0),
            );
            for root in d.get("roots").and_then(Json::as_array).unwrap_or(&[]) {
                print_span_tree(root, 0);
            }
        }
        ("metrics", []) => {
            let body = match flag("--format") {
                None | Some("prometheus") | Some("text") => {
                    client.server_metrics(None).map_err(err)?
                }
                Some("json") => client.server_metrics(Some("json")).map_err(err)?,
                Some(other) => {
                    return Err(format!(
                        "--format must be prometheus or json, not '{other}'"
                    ))
                }
            };
            print_raw(body);
        }
        ("diagnostics", []) => {
            use paris_repro::client::json::Json;
            if wants_json()? {
                let path = client.diagnostics_path(pair).map_err(err)?;
                print_raw(client.get_raw(&path).map_err(err)?);
                return Ok(());
            }
            let d = client.diagnostics(pair).map_err(err)?;
            let int = |o: Option<&Json>, k: &str| {
                o.and_then(|o| o.get(k)).and_then(Json::as_u64).unwrap_or(0)
            };
            let num = |o: Option<&Json>, k: &str| {
                o.and_then(|o| o.get(k))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            let inst = d.get("instances");
            let scores = d.get("scores");
            let rel = d.get("relations");
            let classes = d.get("classes");
            println!(
                "pair {} (generation {}): {}/{} instances assigned, coverage {:.1}%",
                d.get("pair").and_then(Json::as_str).unwrap_or("?"),
                d.get("generation").and_then(Json::as_u64).unwrap_or(0),
                int(inst, "assigned"),
                int(inst, "kb1"),
                num(inst, "coverage") * 100.0,
            );
            println!(
                "scores: mean {:.3}  p50 {:.3}  p90 {:.3}  p99 {:.3}",
                num(scores, "mean"),
                num(scores, "p50"),
                num(scores, "p90"),
                num(scores, "p99"),
            );
            println!(
                "relations: {}/{} kb1→kb2, {}/{} kb2→kb1 aligned (threshold {})",
                int(rel, "aligned_1to2"),
                int(rel, "kb1"),
                int(rel, "aligned_2to1"),
                int(rel, "kb2"),
                num(rel, "threshold"),
            );
            println!(
                "classes: {} vs {}; {} iteration(s), converged {}",
                int(classes, "kb1"),
                int(classes, "kb2"),
                d.get("iterations").and_then(Json::as_u64).unwrap_or(0),
                d.get("converged").and_then(Json::as_bool).unwrap_or(false),
            );
        }
        ("profile", []) => {
            use paris_repro::client::json::Json;
            let root = flag("--root");
            if wants_json()? {
                print_raw(
                    client
                        .get_raw(&ParisClient::profile_path(root))
                        .map_err(err)?,
                );
                return Ok(());
            }
            let d = client.debug_profile(root).map_err(err)?;
            println!(
                "profile over {} span(s): total {:.3} ms, self-time sum {:.3} ms{}",
                d.get("spans").and_then(Json::as_u64).unwrap_or(0),
                d.get("total_root_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
                d.get("total_self_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
                d.get("root")
                    .and_then(Json::as_str)
                    .map(|r| format!("  (root filter: {r})"))
                    .unwrap_or_default(),
            );
            for node in d.get("roots").and_then(Json::as_array).unwrap_or(&[]) {
                print_flame_node(node, 0);
            }
        }
        ("runs", []) => {
            use paris_repro::client::json::Json;
            if wants_json()? {
                print_raw(client.get_raw("/v1/debug/runs").map_err(err)?);
                return Ok(());
            }
            let d = client.debug_runs().map_err(err)?;
            println!(
                "{} recorded run(s) in {}",
                d.get("runs").and_then(Json::as_u64).unwrap_or(0),
                d.get("file").and_then(Json::as_str).unwrap_or("?"),
            );
            for r in d.get("records").and_then(Json::as_array).unwrap_or(&[]) {
                let agreement = match r.get("agreement").and_then(Json::as_f64) {
                    Some(a) => format!("{a:.3}"),
                    None => "-".to_owned(),
                };
                println!(
                    "  job {:>4}  {:<24} gen {:>3}  {:>3} iter(s)  {:>6} aligned  \
                     {:>8.2}s  agreement {agreement}{}",
                    r.get("job").and_then(Json::as_u64).unwrap_or(0),
                    r.get("pair").and_then(Json::as_str).unwrap_or("?"),
                    r.get("generation").and_then(Json::as_u64).unwrap_or(0),
                    r.get("iterations").and_then(Json::as_u64).unwrap_or(0),
                    r.get("aligned_instances")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    r.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
                    if r.get("drift").and_then(Json::as_bool).unwrap_or(false) {
                        "  DRIFT"
                    } else {
                        ""
                    },
                );
            }
        }
        _ => {
            return Err(format!(
                "unknown query command '{command}' (or wrong arguments); \
                 expected health, pairs, stats, diagnostics, metrics, \
                 traces [TRACE-ID], profile, runs, sameas IRI, neighbors IRI, \
                 explain LEFT RIGHT, or batch FILE"
            ))
        }
    }
    Ok(())
}

/// Prints one node of a `/v1/debug/profile` flame tree, indented by
/// depth.
fn print_flame_node(node: &paris_repro::client::json::Json, depth: usize) {
    use paris_repro::client::json::Json;
    println!(
        "{:indent$}{}  ×{}  total {:.3} ms  self {:.3} ms  p50 {} µs  p99 {} µs",
        "",
        node.get("name").and_then(Json::as_str).unwrap_or("?"),
        node.get("count").and_then(Json::as_u64).unwrap_or(0),
        node.get("total_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
        node.get("self_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
        node.get("p50_us").and_then(Json::as_u64).unwrap_or(0),
        node.get("p99_us").and_then(Json::as_u64).unwrap_or(0),
        indent = depth * 2
    );
    for child in node.get("children").and_then(Json::as_array).unwrap_or(&[]) {
        print_flame_node(child, depth + 1);
    }
}

/// Prints one node of a `/v1/debug/traces/<id>` span tree, indented by
/// depth, with its attributes inline.
fn print_span_tree(node: &paris_repro::client::json::Json, depth: usize) {
    use paris_repro::client::json::Json;
    let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
    let ms = node.get("duration_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6;
    let mut attrs = String::new();
    if let Some(Json::Obj(members)) = node.get("attrs") {
        for (key, value) in members {
            let rendered = match value {
                Json::Str(s) => s.clone(),
                Json::Num(n) => {
                    if n.fract() == 0.0 {
                        format!("{}", *n as i64)
                    } else {
                        format!("{n:.3}")
                    }
                }
                other => format!("{other:?}"),
            };
            attrs.push_str(&format!(" {key}={rendered}"));
        }
    }
    println!(
        "{:indent$}{name}  {ms:.3} ms {attrs}",
        "",
        indent = depth * 2
    );
    for child in node.get("children").and_then(Json::as_array).unwrap_or(&[]) {
        print_span_tree(child, depth + 1);
    }
}

/// Positional arguments plus `--flag value` pairs of `paris query`.
type SplitQueryArgs = (Vec<String>, Vec<(String, String)>);

/// Splits `paris query` arguments into positionals and `--flag value`
/// pairs (every query flag takes a value).
fn split_query_args(args: &[String]) -> Result<SplitQueryArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.starts_with("--") {
            let value = iter
                .next()
                .ok_or_else(|| format!("{arg} requires a value"))?;
            flags.push((arg.clone(), value.clone()));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

/// Parses a batch file: either the full `/v1` body
/// (`{"queries":[…]}`) or the bare queries array.
fn parse_batch_file(text: &str) -> Result<Vec<paris_repro::client::Query>, String> {
    use paris_repro::client::json::{self, Json};
    use paris_repro::client::{Query, Side};
    let doc = json::parse(text).map_err(|e| format!("batch file is not valid JSON: {e}"))?;
    let items = doc
        .get("queries")
        .unwrap_or(&doc)
        .as_array()
        .ok_or("batch file must hold {\"queries\":[…]} or a bare array")?;
    items
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let s = |key: &str| q.get(key).and_then(Json::as_str);
            let iri = s("iri")
                .ok_or_else(|| format!("query #{i} has no 'iri'"))?
                .to_owned();
            let side = match s("side") {
                None | Some("left") => Side::Left,
                Some("right") => Side::Right,
                Some(other) => return Err(format!("query #{i}: bad side '{other}'")),
            };
            match s("op") {
                Some("sameas") => Ok(Query::Sameas {
                    iri,
                    side,
                    threshold: q.get("threshold").and_then(Json::as_f64),
                }),
                Some("neighbors") => Ok(Query::Neighbors {
                    iri,
                    side,
                    limit: q.get("limit").and_then(Json::as_u64),
                    offset: q.get("offset").and_then(Json::as_u64).unwrap_or(0),
                }),
                other => Err(format!("query #{i}: bad op {other:?}")),
            }
        })
        .collect()
}

fn gold_tsv(instances: &[(Iri, Iri)]) -> String {
    let mut s = String::from("# gold standard: <left IRI> TAB <right IRI>\n");
    for (a, b) in instances {
        s.push_str(a.as_str());
        s.push('\t');
        s.push_str(b.as_str());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_align_defaults() {
        let opts = parse_align(&strings(&["a.nt", "b.nt"])).unwrap();
        assert_eq!(opts.left, PathBuf::from("a.nt"));
        assert_eq!(opts.right, PathBuf::from("b.nt"));
        assert_eq!(opts.config.theta, 0.1);
        assert_eq!(opts.threshold, 0.4);
        assert!(!opts.show_relations);
    }

    #[test]
    fn parse_align_options() {
        let opts = parse_align(&strings(&[
            "a.nt",
            "--literals",
            "edit:0.8",
            "b.nt",
            "--theta",
            "0.05",
            "--negative-evidence",
            "--relations",
            "--sameas",
            "out.nt",
        ]))
        .unwrap();
        assert_eq!(
            opts.config.literal_similarity,
            LiteralSimilarity::EditDistance {
                min_similarity: 0.8
            }
        );
        assert_eq!(opts.config.theta, 0.05);
        assert!(opts.config.negative_evidence);
        assert!(opts.show_relations);
        assert_eq!(opts.sameas, Some(PathBuf::from("out.nt")));
    }

    #[test]
    fn parse_align_rejects_bad_input() {
        assert!(parse_align(&strings(&["only-one.nt"])).is_err());
        assert!(parse_align(&strings(&["a.nt", "b.nt", "--bogus"])).is_err());
        assert!(parse_align(&strings(&["a.nt", "b.nt", "--theta"])).is_err());
        assert!(parse_align(&strings(&["a.nt", "b.nt", "--theta", "xyz"])).is_err());
    }

    #[test]
    fn parse_literals_variants() {
        assert_eq!(
            parse_literals("identity").unwrap(),
            LiteralSimilarity::Identity
        );
        assert_eq!(
            parse_literals("normalized").unwrap(),
            LiteralSimilarity::Normalized
        );
        assert_eq!(
            parse_literals("tokensort").unwrap(),
            LiteralSimilarity::TokenSort
        );
        assert_eq!(
            parse_literals("numeric:0.02").unwrap(),
            LiteralSimilarity::NumericProportional { tolerance: 0.02 }
        );
        assert!(parse_literals("nope").is_err());
        assert!(parse_literals("edit:abc").is_err());
    }

    #[test]
    fn check_input_reports_missing_file_by_name() {
        let err = check_input(Path::new("/definitely/not/here.nt")).unwrap_err();
        assert!(err.contains("/definitely/not/here.nt"), "{err}");
        assert!(err.contains("no such file"), "{err}");
    }

    #[test]
    fn check_input_rejects_unsupported_extension() {
        let path = std::env::temp_dir().join("paris_cli_input_test.docx");
        std::fs::write(&path, "x").unwrap();
        let err = check_input(&path).unwrap_err();
        assert!(err.contains(".docx"), "{err}");
        assert!(err.contains(".nt"), "lists the supported formats: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_input_rejects_missing_extension_and_dirs() {
        let path = std::env::temp_dir().join("paris_cli_input_test_noext");
        std::fs::write(&path, "x").unwrap();
        let err = check_input(&path).unwrap_err();
        assert!(err.contains("missing file extension"), "{err}");
        std::fs::remove_file(&path).ok();

        let err = check_input(&std::env::temp_dir()).unwrap_err();
        assert!(err.contains("is a directory"), "{err}");
    }

    #[test]
    fn check_input_accepts_supported_extensions() {
        for ext in SUPPORTED_EXTENSIONS {
            let path = std::env::temp_dir().join(format!("paris_cli_input_test.{ext}"));
            std::fs::write(&path, "").unwrap();
            assert_eq!(check_input(&path).unwrap(), ext);
            std::fs::remove_file(&path).ok();
        }
        let upper = std::env::temp_dir().join("paris_cli_input_test.NT");
        std::fs::write(&upper, "").unwrap();
        assert_eq!(check_input(&upper).unwrap(), "nt");
        std::fs::remove_file(&upper).ok();
    }

    #[test]
    fn parse_byte_size_accepts_suffixes() {
        assert_eq!(parse_byte_size("1048576").unwrap(), 1 << 20);
        assert_eq!(parse_byte_size("4K").unwrap(), 4096);
        assert_eq!(parse_byte_size("512m").unwrap(), 512 << 20);
        assert_eq!(parse_byte_size("2G").unwrap(), 2 << 30);
        assert!(parse_byte_size("abc").is_err());
        assert!(parse_byte_size("999999999999G").is_err());
    }

    #[test]
    fn parse_format_variants() {
        assert_eq!(parse_format("v1").unwrap(), SnapFormat::V1);
        assert_eq!(parse_format("v2").unwrap(), SnapFormat::V2);
        assert_eq!(parse_format("2").unwrap(), SnapFormat::V2);
        assert!(parse_format("v3").is_err());
    }

    #[test]
    fn version_string_names_all_formats() {
        let v = version_string();
        assert!(v.contains(env!("CARGO_PKG_VERSION")), "{v}");
        assert!(v.contains("v1") && v.contains("v2"), "{v}");
        assert!(v.contains("delta format: v1"), "{v}");
    }

    #[test]
    fn split_query_args_separates_flags() {
        let (pos, flags) = split_query_args(&strings(&[
            "http://x:1",
            "sameas",
            "http://a/p1",
            "--pair",
            "movies",
            "--side",
            "right",
        ]))
        .unwrap();
        assert_eq!(pos, strings(&["http://x:1", "sameas", "http://a/p1"]));
        assert_eq!(flags.len(), 2);
        assert_eq!(flags[0], ("--pair".to_owned(), "movies".to_owned()));
        assert!(split_query_args(&strings(&["--pair"])).is_err());
    }

    #[test]
    fn parse_batch_file_accepts_both_shapes() {
        use paris_repro::client::Query;
        let wrapped = r#"{"queries":[{"op":"sameas","iri":"http://a/x"},
            {"op":"neighbors","iri":"http://a/y","side":"right","limit":5,"offset":2}]}"#;
        let bare = r#"[{"op":"sameas","iri":"http://a/x"},
            {"op":"neighbors","iri":"http://a/y","side":"right","limit":5,"offset":2}]"#;
        for text in [wrapped, bare] {
            let queries = parse_batch_file(text).unwrap();
            assert_eq!(queries.len(), 2, "{text}");
            assert!(matches!(&queries[0], Query::Sameas { iri, .. } if iri == "http://a/x"));
            assert!(matches!(
                &queries[1],
                Query::Neighbors {
                    limit: Some(5),
                    offset: 2,
                    ..
                }
            ));
        }
        assert!(parse_batch_file("3").is_err());
        assert!(parse_batch_file(r#"[{"op":"nope","iri":"x"}]"#).is_err());
        assert!(parse_batch_file(r#"[{"op":"sameas"}]"#).is_err());
    }

    #[test]
    fn gold_tsv_round_trips_through_reader() {
        let gold = vec![
            (Iri::new("http://a/x"), Iri::new("http://b/y")),
            (Iri::new("http://a/z"), Iri::new("http://b/w")),
        ];
        let text = gold_tsv(&gold);
        let path = std::env::temp_dir().join("paris_cli_gold_test.tsv");
        std::fs::write(&path, text).unwrap();
        let read = read_gold(&path).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0], ("http://a/x".to_owned(), "http://b/y".to_owned()));
        std::fs::remove_file(&path).ok();
    }
}
