//! # PARIS — Probabilistic Alignment of Relations, Instances, and Schema
//!
//! A from-scratch Rust reproduction of *PARIS* (Suchanek, Abiteboul &
//! Senellart, PVLDB 5(3), 2011): a probabilistic, parameter-free algorithm
//! that aligns two RDFS ontologies holistically — instances, relations
//! (as sub-relations), and classes (as sub-classes) — by letting instance
//! and schema evidence cross-fertilize through a fixed-point iteration.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`rdf`] — RDF model and N-Triples parsing,
//! * [`kb`] — interned, indexed in-memory knowledge bases,
//! * [`literals`] — literal similarity functions (§5.3 of the paper),
//! * [`paris`] — the alignment algorithm itself (Eq. 4–17),
//! * [`datagen`] — synthetic dataset generators standing in for OAEI /
//!   yago / DBpedia / IMDb,
//! * [`eval`] — precision/recall/F evaluation and threshold curves,
//! * [`baselines`] — the `rdfs:label` exact-match baseline,
//! * [`server`] — the snapshot-backed alignment-serving HTTP daemon
//!   (versioned `/v1` query API: sameas, neighbors, batch, explain),
//! * [`replica`] — read-replica catalog sync (manifest diffing, validated
//!   streamed snapshot transfer) behind `paris serve --replica-of` and
//!   `paris sync`,
//! * [`client`] — the typed `/v1` client (`ParisClient`: ETag caching,
//!   multi-upstream failover) behind `paris query`, plus the shared
//!   HTTP/1.1 client and JSON implementation the rest of the serving
//!   stack builds on,
//! * [`obs`] — the std-only telemetry kernel (lock-free counters,
//!   gauges, mergeable fixed-bucket latency histograms, Prometheus/JSON
//!   rendering, aligner trace sinks) behind `GET /v1/metrics`.
//!
//! # Quickstart
//!
//! ```
//! use paris_repro::kb::KbBuilder;
//! use paris_repro::paris::{Aligner, ParisConfig};
//! use paris_repro::rdf::Literal;
//!
//! // Two toy ontologies that share an e-mail address (a highly
//! // inverse-functional relation — the paper's canonical example).
//! let mut a = KbBuilder::new("left");
//! a.add_literal_fact("http://a/alice", "http://a/email", Literal::plain("alice@x.org"));
//! a.add_fact("http://a/alice", "http://a/livesIn", "http://a/paris");
//! a.add_literal_fact("http://a/paris", "http://a/label", Literal::plain("Paris"));
//!
//! let mut b = KbBuilder::new("right");
//! b.add_literal_fact("http://b/a-smith", "http://b/mail", Literal::plain("alice@x.org"));
//! b.add_fact("http://b/a-smith", "http://b/residence", "http://b/ville-paris");
//! b.add_literal_fact("http://b/ville-paris", "http://b/name", Literal::plain("Paris"));
//!
//! let (kb1, kb2) = (a.build(), b.build());
//! let result = Aligner::new(&kb1, &kb2, ParisConfig::default()).run();
//! let alice = result.instance_alignment_by_iri("http://a/alice").unwrap();
//! assert_eq!(alice.as_str(), "http://b/a-smith");
//! ```

#![forbid(unsafe_code)]

pub use paris_baselines as baselines;
pub use paris_client as client;
pub use paris_core as paris;
pub use paris_datagen as datagen;
pub use paris_eval as eval;
pub use paris_kb as kb;
pub use paris_literals as literals;
pub use paris_obs as obs;
pub use paris_rdf as rdf;
pub use paris_replica as replica;
pub use paris_server as server;
